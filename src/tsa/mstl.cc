#include "tsa/mstl.h"

#include <algorithm>
#include <cmath>

namespace capplan::tsa {

namespace {

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + mid, v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    std::nth_element(v.begin(), v.begin() + mid - 1, v.begin() + mid);
    m = 0.5 * (m + v[mid - 1]);
  }
  return m;
}

}  // namespace

Result<MultiDecomposition> MstlDecompose(const std::vector<double>& x,
                                         std::vector<std::size_t> periods,
                                         const MstlOptions& options) {
  if (periods.empty()) {
    return Status::InvalidArgument("MstlDecompose: no periods");
  }
  std::sort(periods.begin(), periods.end());
  periods.erase(std::unique(periods.begin(), periods.end()), periods.end());
  // Keep only periods STL can actually resolve on this window.
  std::vector<std::size_t> usable;
  for (std::size_t p : periods) {
    if (p >= 2 && x.size() >= 2 * p) usable.push_back(p);
  }
  if (usable.empty()) {
    return Status::InvalidArgument(
        "MstlDecompose: no period has two full cycles in the window");
  }

  // Sequential extraction, shortest period first: each pass decomposes the
  // series minus the seasonals already taken out, so the final pass's trend
  // and remainder close the additive identity exactly.
  MultiDecomposition out;
  out.periods = usable;
  std::vector<double> deseasonalized = x;
  Decomposition last;
  for (std::size_t i = 0; i < usable.size(); ++i) {
    CAPPLAN_ASSIGN_OR_RETURN(last,
                             StlDecompose(deseasonalized, usable[i],
                                          options.stl));
    out.seasonal.push_back(last.seasonal);
    for (std::size_t t = 0; t < deseasonalized.size(); ++t) {
      deseasonalized[t] -= last.seasonal[t];
    }
  }
  out.trend = last.trend;
  out.remainder = last.remainder;
  return out;
}

double RobustSigma(const std::vector<double>& residuals) {
  if (residuals.empty()) return 0.0;
  const double med = Median(residuals);
  std::vector<double> dev(residuals.size());
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    dev[i] = std::fabs(residuals[i] - med);
  }
  return 1.4826 * Median(std::move(dev));
}

std::vector<std::size_t> FlagAnomalies(const std::vector<double>& residuals,
                                       double band) {
  std::vector<std::size_t> flags;
  const double sigma = RobustSigma(residuals);
  if (sigma <= 0.0) return flags;
  const double med = Median(residuals);
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    if (std::fabs(residuals[i] - med) > band * sigma) flags.push_back(i);
  }
  return flags;
}

}  // namespace capplan::tsa
