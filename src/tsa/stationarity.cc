#include "tsa/stationarity.h"

#include <algorithm>
#include <cmath>

#include "math/matrix.h"
#include "math/vec.h"
#include "tsa/decompose.h"
#include "tsa/difference.h"

namespace capplan::tsa {

namespace {

// MacKinnon (2010) asymptotic critical values for the ADF t-statistic.
// Rows: {1%, 2.5%, 5%, 10%, 90%(~-0.44 etc. beyond table we extrapolate)}.
struct CriticalRow {
  double p;
  double constant;
  double constant_trend;
};

constexpr CriticalRow kAdfCritical[] = {
    {0.01, -3.43, -3.96}, {0.025, -3.12, -3.66}, {0.05, -2.86, -3.41},
    {0.10, -2.57, -3.13}, {0.25, -2.14, -2.72},  {0.50, -1.57, -2.18},
    {0.75, -0.94, -1.65}, {0.90, -0.44, -1.22},  {0.975, 0.23, -0.66},
};

double InterpolateAdfPValue(double stat, TrendSpec trend) {
  const auto crit = [&](const CriticalRow& row) {
    return trend == TrendSpec::kConstant ? row.constant : row.constant_trend;
  };
  const std::size_t n = std::size(kAdfCritical);
  if (stat <= crit(kAdfCritical[0])) return kAdfCritical[0].p * 0.5;
  if (stat >= crit(kAdfCritical[n - 1])) {
    return std::min(0.999, kAdfCritical[n - 1].p + 0.02);
  }
  for (std::size_t i = 1; i < n; ++i) {
    const double lo = crit(kAdfCritical[i - 1]);
    const double hi = crit(kAdfCritical[i]);
    if (stat <= hi) {
      const double f = (stat - lo) / (hi - lo);
      return kAdfCritical[i - 1].p +
             f * (kAdfCritical[i].p - kAdfCritical[i - 1].p);
    }
  }
  return 0.999;
}

// KPSS critical values (Kwiatkowski et al. 1992, Table 1).
constexpr CriticalRow kKpssCritical[] = {
    // p here is the upper-tail probability (large statistic -> reject).
    {0.10, 0.347, 0.119},
    {0.05, 0.463, 0.146},
    {0.025, 0.574, 0.176},
    {0.01, 0.739, 0.216},
};

double InterpolateKpssPValue(double stat, TrendSpec trend) {
  const auto crit = [&](const CriticalRow& row) {
    return trend == TrendSpec::kConstant ? row.constant : row.constant_trend;
  };
  if (stat <= crit(kKpssCritical[0])) return 0.10 + 0.40;  // deep in "accept"
  const std::size_t n = std::size(kKpssCritical);
  if (stat >= crit(kKpssCritical[n - 1])) return 0.005;
  for (std::size_t i = 1; i < n; ++i) {
    const double lo = crit(kKpssCritical[i - 1]);
    const double hi = crit(kKpssCritical[i]);
    if (stat <= hi) {
      const double f = (stat - lo) / (hi - lo);
      return kKpssCritical[i - 1].p +
             f * (kKpssCritical[i].p - kKpssCritical[i - 1].p);
    }
  }
  return 0.005;
}

}  // namespace

Result<AdfResult> AdfTest(const std::vector<double>& x, TrendSpec trend,
                          int lags) {
  const std::size_t n = x.size();
  if (n < 12) {
    return Status::InvalidArgument("AdfTest: need at least 12 observations");
  }
  std::size_t k;
  if (lags < 0) {
    k = static_cast<std::size_t>(
        std::floor(12.0 * std::pow(static_cast<double>(n) / 100.0, 0.25)));
  } else {
    k = static_cast<std::size_t>(lags);
  }
  k = std::min(k, n / 3);

  // Regression: dy[t] = gamma*y[t-1] + sum_i delta_i*dy[t-i] + const (+ trend).
  std::vector<double> dy(n - 1);
  for (std::size_t t = 1; t < n; ++t) dy[t - 1] = x[t] - x[t - 1];
  const std::size_t start = k;  // first usable index into dy
  const std::size_t rows = dy.size() - start;
  const std::size_t det_cols = trend == TrendSpec::kConstant ? 1 : 2;
  const std::size_t cols = 1 + k + det_cols;
  if (rows <= cols + 2) {
    return Status::InvalidArgument("AdfTest: too few observations for lags");
  }
  math::Matrix a(rows, cols);
  std::vector<double> b(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const std::size_t t = start + r;  // index into dy; level index is t.
    b[r] = dy[t];
    a(r, 0) = x[t];  // y_{t-1} in level terms: dy[t] = y[t+1]-y[t].
    for (std::size_t i = 1; i <= k; ++i) {
      a(r, i) = dy[t - i];
    }
    a(r, k + 1) = 1.0;
    if (det_cols == 2) a(r, k + 2) = static_cast<double>(r + 1);
  }
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> beta,
                           math::SolveLeastSquares(a, b));
  // Residual variance and standard error of gamma (first coefficient).
  std::vector<double> fitted = a.Apply(beta);
  double sse = 0.0;
  for (std::size_t r = 0; r < rows; ++r) {
    const double e = b[r] - fitted[r];
    sse += e * e;
  }
  const double sigma2 = sse / static_cast<double>(rows - cols);
  // (X'X)^{-1}[0][0] via inverse of the normal matrix.
  math::Matrix xtx = a.Transpose() * a;
  CAPPLAN_ASSIGN_OR_RETURN(math::Matrix xtx_inv, math::Inverse(xtx));
  const double se = std::sqrt(sigma2 * xtx_inv(0, 0));
  if (se <= 0.0 || !std::isfinite(se)) {
    return Status::ComputeError("AdfTest: degenerate regression");
  }
  AdfResult out;
  out.statistic = beta[0] / se;
  out.lags_used = k;
  out.p_value = InterpolateAdfPValue(out.statistic, trend);
  return out;
}

Result<KpssResult> KpssTest(const std::vector<double>& x, TrendSpec trend) {
  const std::size_t n = x.size();
  if (n < 12) {
    return Status::InvalidArgument("KpssTest: need at least 12 observations");
  }
  // Residuals from regressing on the deterministic component.
  std::vector<double> e(n);
  if (trend == TrendSpec::kConstant) {
    const double mu = math::Mean(x);
    for (std::size_t t = 0; t < n; ++t) e[t] = x[t] - mu;
  } else {
    // OLS on {1, t}.
    math::Matrix a(n, 2);
    for (std::size_t t = 0; t < n; ++t) {
      a(t, 0) = 1.0;
      a(t, 1) = static_cast<double>(t);
    }
    CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> beta,
                             math::SolveLeastSquares(a, x));
    for (std::size_t t = 0; t < n; ++t) {
      e[t] = x[t] - beta[0] - beta[1] * static_cast<double>(t);
    }
  }
  // Partial sums.
  std::vector<double> s(n);
  double acc = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    acc += e[t];
    s[t] = acc;
  }
  double num = 0.0;
  for (double v : s) num += v * v;
  // Newey-West long-run variance with Bartlett kernel.
  const std::size_t bw = static_cast<std::size_t>(
      std::floor(4.0 * std::pow(static_cast<double>(n) / 100.0, 0.25)));
  double lrv = 0.0;
  for (double v : e) lrv += v * v;
  for (std::size_t l = 1; l <= bw; ++l) {
    double gamma = 0.0;
    for (std::size_t t = l; t < n; ++t) gamma += e[t] * e[t - l];
    const double w =
        1.0 - static_cast<double>(l) / (static_cast<double>(bw) + 1.0);
    lrv += 2.0 * w * gamma;
  }
  lrv /= static_cast<double>(n);
  if (lrv <= 0.0) {
    return Status::ComputeError("KpssTest: non-positive long-run variance");
  }
  KpssResult out;
  out.statistic =
      num / (static_cast<double>(n) * static_cast<double>(n) * lrv);
  out.bandwidth = bw;
  out.p_value = InterpolateKpssPValue(out.statistic, trend);
  return out;
}

Result<int> RecommendDifferencing(const std::vector<double>& x, int max_d,
                                  double alpha) {
  std::vector<double> work = x;
  for (int d = 0; d <= max_d; ++d) {
    auto adf = AdfTest(work);
    if (!adf.ok()) return adf.status();
    if (adf->reject_unit_root(alpha)) return d;
    if (d == max_d) break;
    work = Difference(work, 1);
  }
  return max_d;
}

Result<int> RecommendSeasonalDifferencing(const std::vector<double>& x,
                                          std::size_t period,
                                          double threshold) {
  if (period < 2 || x.size() < 2 * period + 2) {
    return 0;
  }
  CAPPLAN_ASSIGN_OR_RETURN(
      Decomposition dec,
      SeasonalDecompose(x, period, DecomposeKind::kAdditive));
  // Strength of seasonality: 1 - Var(remainder)/Var(seasonal+remainder)
  // (Hyndman & Athanasopoulos, FPP).
  std::vector<double> seas_plus_rem(x.size());
  std::vector<double> rem;
  std::vector<double> spr;
  for (std::size_t t = 0; t < x.size(); ++t) {
    if (std::isnan(dec.remainder[t]) || std::isnan(dec.seasonal[t])) continue;
    rem.push_back(dec.remainder[t]);
    spr.push_back(dec.remainder[t] + dec.seasonal[t]);
  }
  if (spr.size() < 3) return 0;
  const double var_rem = math::Variance(rem);
  const double var_spr = math::Variance(spr);
  if (var_spr <= 0.0) return 0;
  const double strength = std::max(0.0, 1.0 - var_rem / var_spr);
  return strength > threshold ? 1 : 0;
}

}  // namespace capplan::tsa
