#ifndef CAPPLAN_TSA_TIMESERIES_H_
#define CAPPLAN_TSA_TIMESERIES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace capplan::tsa {

// Sampling cadence of a monitored metric. The paper's agent polls every
// 15 minutes and the repository aggregates to hourly; forecasts are made at
// hourly, daily and weekly granularity (Table 1).
enum class Frequency {
  kQuarterHourly,
  kHourly,
  kDaily,
  kWeekly,
  kMonthly,  // treated as 30 days for timestamp arithmetic
};

// Seconds between consecutive observations at `freq`.
std::int64_t FrequencySeconds(Frequency freq);

// Human-readable name ("hourly", ...).
const char* FrequencyName(Frequency freq);

// The dominant seasonal period, in observations, conventionally associated
// with a sampling frequency (hourly -> 24, daily -> 7, weekly -> 52, ...).
// Returns 0 when there is no conventional period (quarter-hourly raw data).
std::size_t DefaultSeasonalPeriod(Frequency freq);

// A regularly sampled univariate metric trace: the time series `m` of the
// paper's problem definition. Values are doubles; missing observations
// (agent faults) are represented as NaN and filled by the interpolation pass.
class TimeSeries {
 public:
  TimeSeries() : start_epoch_(0), freq_(Frequency::kHourly) {}
  TimeSeries(std::string name, std::int64_t start_epoch, Frequency freq,
             std::vector<double> values)
      : name_(std::move(name)),
        start_epoch_(start_epoch),
        freq_(freq),
        values_(std::move(values)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  Frequency frequency() const { return freq_; }
  std::int64_t start_epoch() const { return start_epoch_; }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  double operator[](std::size_t i) const { return values_[i]; }
  double& operator[](std::size_t i) { return values_[i]; }

  const std::vector<double>& values() const { return values_; }
  std::vector<double>& mutable_values() { return values_; }

  // Epoch seconds of observation i.
  std::int64_t TimestampAt(std::size_t i) const {
    return start_epoch_ +
           static_cast<std::int64_t>(i) * FrequencySeconds(freq_);
  }

  // Epoch seconds one step past the last observation (start of a forecast).
  std::int64_t EndEpoch() const { return TimestampAt(values_.size()); }

  void Append(double value) { values_.push_back(value); }

  // Number of NaN (missing) observations.
  std::size_t CountMissing() const;
  bool HasMissing() const { return CountMissing() > 0; }

  // Sub-series of observations [begin, begin+len); fails when out of range.
  Result<TimeSeries> Slice(std::size_t begin, std::size_t len) const;

  // Splits into (head of size n, remainder); fails when n > size().
  Result<std::pair<TimeSeries, TimeSeries>> SplitAt(std::size_t n) const;

  // Index of the observation within its dominant seasonal period: for hourly
  // data this is the hour-of-day 0..23 (assuming start_epoch is aligned).
  std::size_t PhaseAt(std::size_t i, std::size_t period) const {
    if (period == 0) return 0;
    const std::int64_t step = FrequencySeconds(freq_);
    const std::int64_t t = TimestampAt(i) / step;
    return static_cast<std::size_t>(t % static_cast<std::int64_t>(period));
  }

 private:
  std::string name_;
  std::int64_t start_epoch_;
  Frequency freq_;
  std::vector<double> values_;
};

// Aggregates a finer-grained series to a coarser frequency by averaging
// complete buckets (the repository's 15-min -> hourly step). Buckets
// containing any NaN sample average over the non-NaN samples; fully missing
// buckets become NaN. Trailing incomplete buckets are dropped.
Result<TimeSeries> AggregateMean(const TimeSeries& series, Frequency target);

// Same bucketing, but sums (useful for counters such as IOs per interval).
Result<TimeSeries> AggregateSum(const TimeSeries& series, Frequency target);

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_TIMESERIES_H_
