#ifndef CAPPLAN_TSA_INTERPOLATE_H_
#define CAPPLAN_TSA_INTERPOLATE_H_

#include <vector>

#include "common/result.h"
#include "tsa/timeseries.h"

namespace capplan::tsa {

// Gap filling for agent dropouts. The paper's first pipeline stage: "If
// [values are missing] a linear interpolation exercise is carried out to
// fill in the gaps based on known data points" (Section 5.1).

// Linearly interpolates interior NaN runs between their known neighbours.
// Leading/trailing NaNs are filled with the nearest known value. Fails when
// the series contains no known value at all.
Result<std::vector<double>> LinearInterpolate(const std::vector<double>& x);

// TimeSeries convenience wrapper preserving metadata.
Result<TimeSeries> LinearInterpolate(const TimeSeries& series);

// Fraction of observations that are missing, in [0, 1].
double MissingFraction(const std::vector<double>& x);

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_INTERPOLATE_H_
