#include "tsa/fourier.h"

#include <cmath>
#include <cstdio>

namespace capplan::tsa {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::string FourierCacheKey(const std::vector<FourierSpec>& specs) {
  std::string key;
  key.reserve(specs.size() * 12);
  for (const auto& s : specs) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g/%zu;", s.period, s.k);
    key += buf;
  }
  return key;
}

std::size_t FourierColumnCount(const std::vector<FourierSpec>& specs) {
  std::size_t total = 0;
  for (const auto& s : specs) total += 2 * s.k;
  return total;
}

Result<std::vector<std::vector<double>>> FourierTerms(
    const std::vector<FourierSpec>& specs, std::size_t t_begin,
    std::size_t n) {
  std::vector<std::vector<double>> cols;
  cols.reserve(FourierColumnCount(specs));
  for (const auto& spec : specs) {
    if (spec.period <= 1.0) {
      return Status::InvalidArgument("FourierTerms: period must exceed 1");
    }
    if (2.0 * static_cast<double>(spec.k) >= spec.period) {
      return Status::InvalidArgument(
          "FourierTerms: harmonics would alias (2k >= period)");
    }
    for (std::size_t k = 1; k <= spec.k; ++k) {
      std::vector<double> sin_col(n), cos_col(n);
      const double w = 2.0 * kPi * static_cast<double>(k) / spec.period;
      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(t_begin + i);
        sin_col[i] = std::sin(w * t);
        cos_col[i] = std::cos(w * t);
      }
      cols.push_back(std::move(sin_col));
      cols.push_back(std::move(cos_col));
    }
  }
  return cols;
}

Result<std::shared_ptr<const FourierTermCache::Columns>> FourierTermCache::Get(
    const std::vector<FourierSpec>& specs, std::size_t t_begin,
    std::size_t n) {
  std::string key = FourierCacheKey(specs);
  key += '@';
  key += std::to_string(t_begin);
  key += '+';
  key += std::to_string(n);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Computed outside the lock: a cold batch may have several threads racing
  // on the same key, and holding the mutex across the trig loop would
  // serialize them harder than the duplicate work costs. The first insert
  // wins; losers adopt it.
  CAPPLAN_ASSIGN_OR_RETURN(Columns cols, FourierTerms(specs, t_begin, n));
  auto entry = std::make_shared<const Columns>(std::move(cols));
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.emplace(key, std::move(entry));
  if (inserted) {
    misses_.fetch_add(1, std::memory_order_relaxed);
  } else {
    hits_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

std::size_t FourierTermCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace capplan::tsa
