#include "tsa/fourier.h"

#include <cmath>
#include <cstdio>

namespace capplan::tsa {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

std::string FourierCacheKey(const std::vector<FourierSpec>& specs) {
  std::string key;
  key.reserve(specs.size() * 12);
  for (const auto& s : specs) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.17g/%zu;", s.period, s.k);
    key += buf;
  }
  return key;
}

std::size_t FourierColumnCount(const std::vector<FourierSpec>& specs) {
  std::size_t total = 0;
  for (const auto& s : specs) total += 2 * s.k;
  return total;
}

Result<std::vector<std::vector<double>>> FourierTerms(
    const std::vector<FourierSpec>& specs, std::size_t t_begin,
    std::size_t n) {
  std::vector<std::vector<double>> cols;
  cols.reserve(FourierColumnCount(specs));
  for (const auto& spec : specs) {
    if (spec.period <= 1.0) {
      return Status::InvalidArgument("FourierTerms: period must exceed 1");
    }
    if (2.0 * static_cast<double>(spec.k) >= spec.period) {
      return Status::InvalidArgument(
          "FourierTerms: harmonics would alias (2k >= period)");
    }
    for (std::size_t k = 1; k <= spec.k; ++k) {
      std::vector<double> sin_col(n), cos_col(n);
      const double w = 2.0 * kPi * static_cast<double>(k) / spec.period;
      for (std::size_t i = 0; i < n; ++i) {
        const double t = static_cast<double>(t_begin + i);
        sin_col[i] = std::sin(w * t);
        cos_col[i] = std::cos(w * t);
      }
      cols.push_back(std::move(sin_col));
      cols.push_back(std::move(cos_col));
    }
  }
  return cols;
}

}  // namespace capplan::tsa
