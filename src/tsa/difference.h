#ifndef CAPPLAN_TSA_DIFFERENCE_H_
#define CAPPLAN_TSA_DIFFERENCE_H_

#include <cstddef>
#include <vector>

namespace capplan::tsa {

// Differencing and integration (the d / D of ARIMA, paper Eq. 4-5).

// Lag-`lag` difference applied once: out[t] = x[t] - x[t-lag].
// Result is `lag` observations shorter. Returns empty if x.size() <= lag.
std::vector<double> Difference(const std::vector<double>& x,
                               std::size_t lag = 1);

// Applies ordinary differencing d times then seasonal differencing D times
// at the given period. `head` (optional out-param) receives the observations
// consumed, in application order, as needed by Integrate to invert.
std::vector<double> DifferenceMany(const std::vector<double>& x, int d,
                                   int seasonal_d, std::size_t period);

// Inverts one lag-`lag` differencing given the `lag` initial observations
// that preceded the differenced block.
std::vector<double> Undifference(const std::vector<double>& diffed,
                                 const std::vector<double>& initial,
                                 std::size_t lag = 1);

// Integrates a forecast made on the (d, D, period)-differenced scale back to
// the original scale, given the tail of the *original* training series.
// `forecast` holds h future values of the differenced series; returns h
// values on the original scale.
std::vector<double> IntegrateForecast(const std::vector<double>& train,
                                      const std::vector<double>& forecast,
                                      int d, int seasonal_d,
                                      std::size_t period);

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_DIFFERENCE_H_
