#ifndef CAPPLAN_TSA_STATIONARITY_H_
#define CAPPLAN_TSA_STATIONARITY_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace capplan::tsa {

// Unit-root / stationarity testing (the Dickey-Fuller step of the paper's
// Box-Jenkins workflow, Section 4: "techniques such as Box-Jenkins and
// Dicky-Fuller to detect if the data is stationary, trending or requires an
// element of differencing").

// Deterministic component included in the test regression.
enum class TrendSpec {
  kConstant,       // level stationarity
  kConstantTrend,  // trend stationarity
};

struct AdfResult {
  double statistic = 0.0;     // t-statistic on the lagged level
  double p_value = 0.0;       // interpolated from MacKinnon critical values
  std::size_t lags_used = 0;  // augmentation lags
  bool reject_unit_root(double alpha = 0.05) const { return p_value < alpha; }
};

// Augmented Dickey-Fuller test. `lags` < 0 selects the Schwert rule
// 12*(n/100)^(1/4). Null hypothesis: the series has a unit root
// (is non-stationary).
Result<AdfResult> AdfTest(const std::vector<double>& x,
                          TrendSpec trend = TrendSpec::kConstant,
                          int lags = -1);

struct KpssResult {
  double statistic = 0.0;
  double p_value = 0.0;  // interpolated from tabulated critical values
  std::size_t bandwidth = 0;
  bool reject_stationarity(double alpha = 0.05) const {
    return p_value < alpha;
  }
};

// KPSS test; complements ADF (null hypothesis: the series IS stationary).
Result<KpssResult> KpssTest(const std::vector<double>& x,
                            TrendSpec trend = TrendSpec::kConstant);

// Recommended order of ordinary differencing d in {0,1,2}: repeatedly
// differences until ADF rejects the unit root (or the cap is reached).
// This is the automated "does it need to be differenced" decision of the
// paper's Figure 4 workflow.
Result<int> RecommendDifferencing(const std::vector<double>& x, int max_d = 2,
                                  double alpha = 0.05);

// Recommended seasonal differencing D in {0,1} for the given period, using
// the strength-of-seasonality heuristic (variance of the seasonal component
// relative to the deseasonalized remainder).
Result<int> RecommendSeasonalDifferencing(const std::vector<double>& x,
                                          std::size_t period,
                                          double threshold = 0.64);

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_STATIONARITY_H_
