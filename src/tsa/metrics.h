#ifndef CAPPLAN_TSA_METRICS_H_
#define CAPPLAN_TSA_METRICS_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace capplan::tsa {

// Forecast accuracy measures used throughout the paper's evaluation
// (Table 2): RMSE, MAPE and MAPA, plus the standard extras.

// Root mean squared error. Inputs must be the same non-zero length.
Result<double> Rmse(const std::vector<double>& actual,
                    const std::vector<double>& predicted);

// Mean absolute error.
Result<double> Mae(const std::vector<double>& actual,
                   const std::vector<double>& predicted);

// Mean absolute percentage error, in percent. Observations with |actual|
// below `eps` are skipped (the paper's IOPS MAPEs blow up exactly because of
// near-zero troughs; we keep the definition faithful but guard div-by-zero).
Result<double> Mape(const std::vector<double>& actual,
                    const std::vector<double>& predicted, double eps = 1e-12);

// Mean absolute percentage accuracy = 100 - MAPE, floored at 0
// (the paper's third measure).
Result<double> Mapa(const std::vector<double>& actual,
                    const std::vector<double>& predicted, double eps = 1e-12);

// Symmetric MAPE in percent (0..200).
Result<double> Smape(const std::vector<double>& actual,
                     const std::vector<double>& predicted);

// Mean absolute scaled error (Hyndman & Koehler): MAE of the forecast
// divided by `naive_scale`, the in-sample one-step MAE of the (seasonal)
// naive forecaster on the training data (models::NaiveScale). MASE < 1
// means the forecast beats the naive baseline.
Result<double> Mase(const std::vector<double>& actual,
                    const std::vector<double>& predicted,
                    double naive_scale);

// All measures at once.
struct AccuracyReport {
  double rmse = 0.0;
  double mae = 0.0;
  double mape = 0.0;
  double mapa = 0.0;
  double smape = 0.0;
};
Result<AccuracyReport> MeasureAccuracy(const std::vector<double>& actual,
                                       const std::vector<double>& predicted);

// Akaike information criterion from a Gaussian sum-of-squares fit:
// n*log(sse/n) + 2*k. Used for TBATS option selection and model ranking.
double AicFromSse(double sse, std::size_t n, std::size_t n_params);

// Bayesian information criterion: n*log(sse/n) + k*log(n).
double BicFromSse(double sse, std::size_t n, std::size_t n_params);

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_METRICS_H_
