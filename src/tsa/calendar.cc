#include "tsa/calendar.h"

#include <cstdio>

namespace capplan::tsa {

namespace {

// Floor division for possibly negative epochs.
std::int64_t FloorDiv(std::int64_t a, std::int64_t b) {
  std::int64_t q = a / b;
  if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
  return q;
}

std::int64_t FloorMod(std::int64_t a, std::int64_t b) {
  return a - FloorDiv(a, b) * b;
}

}  // namespace

int HourOfDay(std::int64_t epoch) {
  return static_cast<int>(FloorMod(epoch, 86400) / 3600);
}

int MinuteOfHour(std::int64_t epoch) {
  return static_cast<int>(FloorMod(epoch, 3600) / 60);
}

int DayOfWeek(std::int64_t epoch) {
  // 1970-01-01 was a Thursday (ISO index 3).
  return static_cast<int>(FloorMod(FloorDiv(epoch, 86400) + 3, 7));
}

bool IsWeekend(std::int64_t epoch) { return DayOfWeek(epoch) >= 5; }

std::int64_t DaysBetween(std::int64_t a, std::int64_t b) {
  return FloorDiv(b, 86400) - FloorDiv(a, 86400);
}

CivilDate ToCivilDate(std::int64_t epoch) {
  // Howard Hinnant's civil-from-days algorithm.
  std::int64_t z = FloorDiv(epoch, 86400);
  z += 719468;
  const std::int64_t era = FloorDiv(z, 146097);
  const std::int64_t doe = z - era * 146097;  // [0, 146096]
  const std::int64_t yoe =
      (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;  // [0, 399]
  const std::int64_t y = yoe + era * 400;
  const std::int64_t doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const std::int64_t mp = (5 * doy + 2) / 153;  // [0, 11]
  const std::int64_t d = doy - (153 * mp + 2) / 5 + 1;
  const std::int64_t m = mp < 10 ? mp + 3 : mp - 9;
  CivilDate out;
  out.year = static_cast<int>(m <= 2 ? y + 1 : y);
  out.month = static_cast<int>(m);
  out.day = static_cast<int>(d);
  return out;
}

std::string FormatTimestamp(std::int64_t epoch) {
  const CivilDate date = ToCivilDate(epoch);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d %02d:%02d", date.year,
                date.month, date.day, HourOfDay(epoch),
                MinuteOfHour(epoch));
  return buf;
}

std::string FormatDuration(std::int64_t seconds) {
  if (seconds < 0) seconds = 0;
  const std::int64_t days = seconds / 86400;
  const std::int64_t hours = (seconds % 86400) / 3600;
  const std::int64_t minutes = (seconds % 3600) / 60;
  char buf[32];
  if (days > 0) {
    std::snprintf(buf, sizeof(buf), "%lldd %02lld:%02lld",
                  static_cast<long long>(days),
                  static_cast<long long>(hours),
                  static_cast<long long>(minutes));
  } else {
    std::snprintf(buf, sizeof(buf), "%02lld:%02lld",
                  static_cast<long long>(hours),
                  static_cast<long long>(minutes));
  }
  return buf;
}

}  // namespace capplan::tsa
