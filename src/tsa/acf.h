#ifndef CAPPLAN_TSA_ACF_H_
#define CAPPLAN_TSA_ACF_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace capplan::tsa {

// Autocorrelation / partial-autocorrelation analysis (the correlogram of
// paper Figure 1a), used both for visualisation and to pre-populate the
// (p,q) candidate orders of the SARIMA grid (paper Sections 4.1, 6.3).

// Sample autocorrelation for lags 0..max_lag (acf[0] == 1). Requires a
// series of length > max_lag with non-zero variance.
Result<std::vector<double>> Acf(const std::vector<double>& x,
                                std::size_t max_lag);

// Partial autocorrelations for lags 1..max_lag via the Durbin-Levinson
// recursion on the sample ACF.
Result<std::vector<double>> Pacf(const std::vector<double>& x,
                                 std::size_t max_lag);

// The +/- bound of the white-noise 95% confidence band, 1.96/sqrt(n):
// the "shaded area" of the paper's correlogram, used for model pruning.
double WhiteNoiseBand(std::size_t n, double z = 1.96);

// Lags (1-based) whose |acf| exceeds the white-noise band.
std::vector<std::size_t> SignificantLags(const std::vector<double>& correlogram,
                                         std::size_t n_obs, double z = 1.96);

// Ljung-Box portmanteau statistic over lags 1..max_lag and its p-value under
// the chi-squared(max_lag - fitted_params) null; used to check residual
// whiteness of fitted models.
struct LjungBoxResult {
  double statistic = 0.0;
  double p_value = 0.0;
  std::size_t lags = 0;
};
Result<LjungBoxResult> LjungBox(const std::vector<double>& residuals,
                                std::size_t max_lag,
                                std::size_t fitted_params = 0);

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_ACF_H_
