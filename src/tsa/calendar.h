#ifndef CAPPLAN_TSA_CALENDAR_H_
#define CAPPLAN_TSA_CALENDAR_H_

#include <cstdint>
#include <string>

namespace capplan::tsa {

// Small UTC calendar helpers for epoch-second timestamps. Used for
// human-readable reporting and for calendar-aware workload logic
// (weekday/weekend activity, hour-of-day phases). No timezone support by
// design: the paper's traces are stored and modelled in a single clock.

// Hour of day 0..23.
int HourOfDay(std::int64_t epoch);

// Minute of hour 0..59.
int MinuteOfHour(std::int64_t epoch);

// Day of week, 0 = Monday .. 6 = Sunday (ISO).
int DayOfWeek(std::int64_t epoch);

// True for Saturday/Sunday.
bool IsWeekend(std::int64_t epoch);

// Days (UTC midnights) between two epochs: b_day - a_day.
std::int64_t DaysBetween(std::int64_t a, std::int64_t b);

// Calendar date for an epoch (proleptic Gregorian, UTC).
struct CivilDate {
  int year = 1970;
  int month = 1;  // 1..12
  int day = 1;    // 1..31
};
CivilDate ToCivilDate(std::int64_t epoch);

// "YYYY-MM-DD HH:MM" (UTC).
std::string FormatTimestamp(std::int64_t epoch);

// "3d 07:30" — compact duration rendering for "time to breach" reports.
std::string FormatDuration(std::int64_t seconds);

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_CALENDAR_H_
