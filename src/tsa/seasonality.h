#ifndef CAPPLAN_TSA_SEASONALITY_H_
#define CAPPLAN_TSA_SEASONALITY_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace capplan::tsa {

// Frequency-domain seasonality detection (paper Section 4: FFT analysis of
// data that is "complex in a time domain"; Section 4.4: "we apply Fourier
// analysis if we detect time series data with multiple seasonality").

// One detected seasonal period.
struct DetectedSeason {
  std::size_t period = 0;   // in observations
  double power = 0.0;       // periodogram ordinate at the peak
  double acf = 0.0;         // sample autocorrelation at the period
  double strength = 0.0;    // seasonal strength measured at confirmation
};

struct SeasonalityOptions {
  // A period counts as a season when its periodogram peak exceeds
  // `power_threshold` times the median ordinate AND the ACF at that lag
  // exceeds `acf_threshold`.
  double power_threshold = 10.0;
  double acf_threshold = 0.2;
  // Minimum classical-decomposition seasonal strength for a candidate to
  // count as a real season (filters spectral harmonics of another season).
  double min_strength = 0.25;
  std::size_t max_periods = 3;    // report at most this many seasons
  std::size_t min_period = 2;
  // Largest detectable period: need >= 2 full cycles in the data.
  double max_period_fraction = 0.5;
};

// Detects up to `max_periods` seasonal periods, strongest first. Harmonics
// of an already-accepted period (near-integer divisors) are suppressed so
// that daily + weekly seasonality is reported as {24, 168}, not {24, 12, 8}.
Result<std::vector<DetectedSeason>> DetectSeasonality(
    const std::vector<double>& x, const SeasonalityOptions& options = {});

// True when at least two distinct seasonal periods are detected — the
// paper's trigger for adding Fourier terms to SARIMAX.
Result<bool> HasMultipleSeasonality(const std::vector<double>& x,
                                    const SeasonalityOptions& options = {});

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_SEASONALITY_H_
