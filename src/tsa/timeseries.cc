#include "tsa/timeseries.h"

#include <cmath>

namespace capplan::tsa {

std::int64_t FrequencySeconds(Frequency freq) {
  switch (freq) {
    case Frequency::kQuarterHourly:
      return 15 * 60;
    case Frequency::kHourly:
      return 3600;
    case Frequency::kDaily:
      return 24 * 3600;
    case Frequency::kWeekly:
      return 7 * 24 * 3600;
    case Frequency::kMonthly:
      return 30 * 24 * 3600;
  }
  return 3600;
}

const char* FrequencyName(Frequency freq) {
  switch (freq) {
    case Frequency::kQuarterHourly:
      return "quarter-hourly";
    case Frequency::kHourly:
      return "hourly";
    case Frequency::kDaily:
      return "daily";
    case Frequency::kWeekly:
      return "weekly";
    case Frequency::kMonthly:
      return "monthly";
  }
  return "?";
}

std::size_t DefaultSeasonalPeriod(Frequency freq) {
  switch (freq) {
    case Frequency::kQuarterHourly:
      return 96;  // one day of 15-minute samples
    case Frequency::kHourly:
      return 24;
    case Frequency::kDaily:
      return 7;
    case Frequency::kWeekly:
      return 52;
    case Frequency::kMonthly:
      return 12;
  }
  return 0;
}

std::size_t TimeSeries::CountMissing() const {
  std::size_t n = 0;
  for (double v : values_) {
    if (std::isnan(v)) ++n;
  }
  return n;
}

Result<TimeSeries> TimeSeries::Slice(std::size_t begin, std::size_t len) const {
  if (begin + len > values_.size()) {
    return Status::OutOfRange("TimeSeries::Slice: range exceeds series");
  }
  std::vector<double> vals(values_.begin() + static_cast<std::ptrdiff_t>(begin),
                           values_.begin() +
                               static_cast<std::ptrdiff_t>(begin + len));
  return TimeSeries(name_, TimestampAt(begin), freq_, std::move(vals));
}

Result<std::pair<TimeSeries, TimeSeries>> TimeSeries::SplitAt(
    std::size_t n) const {
  if (n > values_.size()) {
    return Status::OutOfRange("TimeSeries::SplitAt: split point beyond end");
  }
  CAPPLAN_ASSIGN_OR_RETURN(TimeSeries head, Slice(0, n));
  CAPPLAN_ASSIGN_OR_RETURN(TimeSeries tail, Slice(n, values_.size() - n));
  return std::make_pair(std::move(head), std::move(tail));
}

namespace {

enum class AggKind { kMean, kSum };

Result<TimeSeries> Aggregate(const TimeSeries& series, Frequency target,
                             AggKind kind) {
  const std::int64_t src_step = FrequencySeconds(series.frequency());
  const std::int64_t dst_step = FrequencySeconds(target);
  if (dst_step < src_step || dst_step % src_step != 0) {
    return Status::InvalidArgument(
        "Aggregate: target frequency must be a coarser multiple of source");
  }
  const std::size_t bucket =
      static_cast<std::size_t>(dst_step / src_step);
  const std::size_t n_buckets = series.size() / bucket;
  std::vector<double> out;
  out.reserve(n_buckets);
  for (std::size_t b = 0; b < n_buckets; ++b) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t j = 0; j < bucket; ++j) {
      const double v = series[b * bucket + j];
      if (std::isnan(v)) continue;
      sum += v;
      ++count;
    }
    if (count == 0) {
      out.push_back(std::nan(""));
    } else if (kind == AggKind::kMean) {
      out.push_back(sum / static_cast<double>(count));
    } else {
      // Scale partial buckets up so that missing samples do not deflate the
      // counter total.
      out.push_back(sum * static_cast<double>(bucket) /
                    static_cast<double>(count));
    }
  }
  return TimeSeries(series.name(), series.start_epoch(), target,
                    std::move(out));
}

}  // namespace

Result<TimeSeries> AggregateMean(const TimeSeries& series, Frequency target) {
  return Aggregate(series, target, AggKind::kMean);
}

Result<TimeSeries> AggregateSum(const TimeSeries& series, Frequency target) {
  return Aggregate(series, target, AggKind::kSum);
}

}  // namespace capplan::tsa
