#include "tsa/boxcox.h"

#include <cmath>

#include "math/optimize.h"
#include "math/vec.h"

namespace capplan::tsa {

double BoxCox(double y, double lambda) {
  if (lambda == 0.0) return std::log(y);
  return (std::pow(y, lambda) - 1.0) / lambda;
}

double InverseBoxCox(double z, double lambda) {
  if (lambda == 0.0) return std::exp(z);
  const double base = lambda * z + 1.0;
  // Clamp into the transform's domain so that wide forecast intervals do not
  // produce NaN; the boundary maps to 0.
  if (base <= 0.0) return 0.0;
  return std::pow(base, 1.0 / lambda);
}

Result<std::vector<double>> BoxCoxTransform(const std::vector<double>& y,
                                            double lambda) {
  std::vector<double> out(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] <= 0.0) {
      return Status::InvalidArgument(
          "BoxCoxTransform: data must be strictly positive");
    }
    out[i] = BoxCox(y[i], lambda);
  }
  return out;
}

std::vector<double> InverseBoxCoxTransform(const std::vector<double>& z,
                                           double lambda) {
  std::vector<double> out(z.size());
  for (std::size_t i = 0; i < z.size(); ++i) {
    out[i] = InverseBoxCox(z[i], lambda);
  }
  return out;
}

Result<double> EstimateBoxCoxLambda(const std::vector<double>& y, double lo,
                                    double hi) {
  if (y.size() < 8) {
    return Status::InvalidArgument(
        "EstimateBoxCoxLambda: need at least 8 observations");
  }
  double log_sum = 0.0;
  for (double v : y) {
    if (v <= 0.0) {
      return Status::InvalidArgument(
          "EstimateBoxCoxLambda: data must be strictly positive");
    }
    log_sum += std::log(v);
  }
  const double n = static_cast<double>(y.size());
  // Negative profile log-likelihood of the normal model for y(lambda).
  auto neg_ll = [&](double lambda) {
    std::vector<double> z(y.size());
    for (std::size_t i = 0; i < y.size(); ++i) z[i] = BoxCox(y[i], lambda);
    const double var = math::Variance(z, /*sample=*/false);
    if (var <= 0.0 || !std::isfinite(var)) return 1e30;
    return 0.5 * n * std::log(var) - (lambda - 1.0) * log_sum;
  };
  return math::GoldenSectionMinimize(neg_ll, lo, hi, 1e-5);
}

}  // namespace capplan::tsa
