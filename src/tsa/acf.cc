#include "tsa/acf.h"

#include <cmath>

#include "math/distributions.h"
#include "math/vec.h"

namespace capplan::tsa {

Result<std::vector<double>> Acf(const std::vector<double>& x,
                                std::size_t max_lag) {
  const std::size_t n = x.size();
  if (n < 2 || max_lag >= n) {
    return Status::InvalidArgument("Acf: series too short for requested lags");
  }
  const double mu = math::Mean(x);
  double c0 = 0.0;
  for (double v : x) c0 += (v - mu) * (v - mu);
  if (c0 <= 0.0) {
    return Status::ComputeError("Acf: series has zero variance");
  }
  std::vector<double> acf(max_lag + 1, 0.0);
  acf[0] = 1.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double ck = 0.0;
    for (std::size_t t = k; t < n; ++t) {
      ck += (x[t] - mu) * (x[t - k] - mu);
    }
    acf[k] = ck / c0;
  }
  return acf;
}

Result<std::vector<double>> Pacf(const std::vector<double>& x,
                                 std::size_t max_lag) {
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> rho, Acf(x, max_lag));
  // Durbin-Levinson: phi_kk are the partial autocorrelations.
  std::vector<double> pacf(max_lag, 0.0);
  std::vector<double> phi_prev(max_lag + 1, 0.0);
  std::vector<double> phi_curr(max_lag + 1, 0.0);
  for (std::size_t k = 1; k <= max_lag; ++k) {
    double num = rho[k];
    double den = 1.0;
    for (std::size_t j = 1; j < k; ++j) {
      num -= phi_prev[j] * rho[k - j];
      den -= phi_prev[j] * rho[j];
    }
    if (std::fabs(den) < 1e-14) {
      return Status::ComputeError("Pacf: Durbin-Levinson denominator ~ 0");
    }
    const double phi_kk = num / den;
    phi_curr[k] = phi_kk;
    for (std::size_t j = 1; j < k; ++j) {
      phi_curr[j] = phi_prev[j] - phi_kk * phi_prev[k - j];
    }
    pacf[k - 1] = phi_kk;
    phi_prev = phi_curr;
  }
  return pacf;
}

double WhiteNoiseBand(std::size_t n, double z) {
  if (n == 0) return 0.0;
  return z / std::sqrt(static_cast<double>(n));
}

std::vector<std::size_t> SignificantLags(const std::vector<double>& correlogram,
                                         std::size_t n_obs, double z) {
  const double band = WhiteNoiseBand(n_obs, z);
  std::vector<std::size_t> lags;
  for (std::size_t k = 0; k < correlogram.size(); ++k) {
    if (std::fabs(correlogram[k]) > band) lags.push_back(k + 1);
  }
  return lags;
}

Result<LjungBoxResult> LjungBox(const std::vector<double>& residuals,
                                std::size_t max_lag,
                                std::size_t fitted_params) {
  const std::size_t n = residuals.size();
  if (max_lag == 0 || max_lag >= n) {
    return Status::InvalidArgument("LjungBox: invalid lag count");
  }
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> rho, Acf(residuals, max_lag));
  double q = 0.0;
  for (std::size_t k = 1; k <= max_lag; ++k) {
    q += rho[k] * rho[k] / static_cast<double>(n - k);
  }
  q *= static_cast<double>(n) * (static_cast<double>(n) + 2.0);
  LjungBoxResult out;
  out.statistic = q;
  out.lags = max_lag;
  const double dof =
      static_cast<double>(max_lag > fitted_params ? max_lag - fitted_params
                                                  : 1);
  out.p_value = 1.0 - math::ChiSquaredCdf(q, dof);
  return out;
}

}  // namespace capplan::tsa
