#include "tsa/seasonality.h"

#include <algorithm>
#include <cmath>

#include "math/fft.h"
#include "math/vec.h"
#include "tsa/acf.h"
#include "tsa/decompose.h"

namespace capplan::tsa {

namespace {

// True when two candidate periods are close enough to be spectral leakage
// of each other (adjacent periodogram bins round to neighbouring integers).
bool IsNearDuplicate(std::size_t a, std::size_t b) {
  if (a == 0 || b == 0) return false;
  const double big = static_cast<double>(std::max(a, b));
  const double small = static_cast<double>(std::min(a, b));
  return (big - small) / big < 0.1;
}

}  // namespace

Result<std::vector<DetectedSeason>> DetectSeasonality(
    const std::vector<double>& x, const SeasonalityOptions& options) {
  const std::size_t n = x.size();
  if (n < 16) {
    return Status::InvalidArgument(
        "DetectSeasonality: need at least 16 observations");
  }
  const std::vector<double> pgram = math::Periodogram(x);
  if (pgram.empty()) {
    return Status::ComputeError("DetectSeasonality: empty periodogram");
  }
  const double med = math::Median(pgram);
  const double power_cut =
      options.power_threshold * std::max(med, 1e-12 * math::Max(pgram));
  const std::size_t max_period = static_cast<std::size_t>(
      options.max_period_fraction * static_cast<double>(n));

  // Candidate periods from periodogram peaks (near-integer bins only).
  struct Cand {
    std::size_t period;
    double power;
  };
  std::vector<Cand> cands;
  for (std::size_t k = 1; k <= pgram.size(); ++k) {
    const double period_f = static_cast<double>(n) / static_cast<double>(k);
    const std::size_t period =
        static_cast<std::size_t>(std::llround(period_f));
    if (period < options.min_period || period > max_period) continue;
    if (std::fabs(period_f - static_cast<double>(period)) >
        0.15 * static_cast<double>(period)) {
      continue;
    }
    if (pgram[k - 1] < power_cut) continue;
    // Merge near-duplicate bins, keeping the stronger.
    bool merged = false;
    for (auto& c : cands) {
      if (IsNearDuplicate(c.period, period)) {
        if (pgram[k - 1] > c.power) c = {period, pgram[k - 1]};
        merged = true;
        break;
      }
    }
    if (!merged) cands.push_back({period, pgram[k - 1]});
  }

  // MSTL-style iterative confirmation, shortest period first: a candidate
  // is a real season only if, on the series with previously accepted
  // seasonal components removed, (i) the autocorrelation at its lag is
  // material and (ii) its classical-decomposition seasonal strength clears
  // the bar. Spectral harmonics of an already-strong season (12, 8, 6 for a
  // daily pattern) fail the strength test because their per-phase means
  // explain almost none of the variance; genuine additional seasons (168 on
  // top of 24) survive removal of the shorter one.
  std::sort(cands.begin(), cands.end(),
            [](const Cand& a, const Cand& b) { return a.period < b.period; });
  std::vector<double> residual = x;
  std::vector<DetectedSeason> out;
  for (const Cand& c : cands) {
    if (residual.size() < 2 * c.period + 2) continue;
    // The ACF must peak *at* the period: the value has to rise above the
    // chord of its neighbours. Smooth series have high ACF at every small
    // lag, but a monotone (convex) decay stays below its chord at any span,
    // while a genuine season puts a bump at its own lag even when
    // superimposed on the decay of a longer season. The span scales with
    // the period: at lag 168 the peak's curvature over one lag is far below
    // the ACF estimator's bias, so a one-lag chord would reject genuine
    // long seasons on noise-level differences.
    const std::size_t span = std::max<std::size_t>(1, c.period / 8);
    auto rho = Acf(residual, c.period + span);
    if (!rho.ok() || (*rho)[c.period] < options.acf_threshold) continue;
    if ((*rho)[c.period] <=
        0.5 * ((*rho)[c.period - span] + (*rho)[c.period + span])) {
      continue;
    }
    auto traits = MeasureTraits(residual, c.period);
    if (!traits.ok() || traits->seasonal_strength < options.min_strength) {
      continue;
    }
    DetectedSeason season;
    season.period = c.period;
    season.power = c.power;
    season.acf = (*rho)[c.period];
    season.strength = traits->seasonal_strength;
    out.push_back(season);
    // Remove this season's component before testing longer periods.
    auto dec = SeasonalDecompose(residual, c.period,
                                 DecomposeKind::kAdditive);
    if (dec.ok()) {
      for (std::size_t t = 0; t < residual.size(); ++t) {
        residual[t] -= dec->seasonal[t];
      }
    }
  }
  // Every candidate gets confirmed before the cap is applied: weak short
  // periods (sub-harmonics of a maintenance cycle, say) must not crowd a
  // strong daily/weekly season out of the report. Keep the `max_periods`
  // strongest by measured seasonal strength, ties to the shorter period.
  if (out.size() > options.max_periods) {
    std::sort(out.begin(), out.end(),
              [](const DetectedSeason& a, const DetectedSeason& b) {
                if (a.strength != b.strength) return a.strength > b.strength;
                return a.period < b.period;
              });
    out.resize(options.max_periods);
  }
  // Report strongest (by periodogram power) first.
  std::sort(out.begin(), out.end(),
            [](const DetectedSeason& a, const DetectedSeason& b) {
              return a.power > b.power;
            });
  return out;
}

Result<bool> HasMultipleSeasonality(const std::vector<double>& x,
                                    const SeasonalityOptions& options) {
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<DetectedSeason> seasons,
                           DetectSeasonality(x, options));
  return seasons.size() >= 2;
}

}  // namespace capplan::tsa
