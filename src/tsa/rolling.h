#ifndef CAPPLAN_TSA_ROLLING_H_
#define CAPPLAN_TSA_ROLLING_H_

#include <cstddef>
#include <functional>
#include <vector>

#include "common/result.h"
#include "tsa/metrics.h"

namespace capplan::tsa {

// Rolling-origin (time-series cross-validation) evaluation: repeatedly fit
// on a growing training window and forecast the next `horizon` points,
// advancing the origin by `stride`. This extends the paper's single
// train/test split to the standard multi-origin protocol and is used by the
// ablation benches to confirm the Table-2 orderings are not artifacts of
// one particular split.

// A forecasting procedure under evaluation: fit on `train`, return point
// forecasts for the next `horizon` steps (or an error, which skips that
// origin).
using ForecastFn = std::function<Result<std::vector<double>>(
    const std::vector<double>& train, std::size_t horizon)>;

struct RollingOptions {
  std::size_t min_train = 100;  // first origin: train on x[0..min_train)
  std::size_t horizon = 24;
  std::size_t stride = 24;      // origin advance between evaluations
  std::size_t max_origins = 0;  // 0 = as many as fit
};

struct RollingOutcome {
  std::size_t origins_attempted = 0;
  std::size_t origins_succeeded = 0;
  AccuracyReport mean_accuracy;       // averaged over successful origins
  std::vector<double> rmse_by_origin; // per successful origin
};

// Fails when the series cannot host even one origin or every origin fails.
Result<RollingOutcome> RollingEvaluate(const std::vector<double>& x,
                                       const ForecastFn& forecast,
                                       const RollingOptions& options = {});

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_ROLLING_H_
