#include "tsa/difference.h"

#include <cassert>

namespace capplan::tsa {

std::vector<double> Difference(const std::vector<double>& x, std::size_t lag) {
  if (lag == 0 || x.size() <= lag) return {};
  std::vector<double> out(x.size() - lag);
  for (std::size_t t = lag; t < x.size(); ++t) {
    out[t - lag] = x[t] - x[t - lag];
  }
  return out;
}

std::vector<double> DifferenceMany(const std::vector<double>& x, int d,
                                   int seasonal_d, std::size_t period) {
  std::vector<double> out = x;
  for (int i = 0; i < d; ++i) out = Difference(out, 1);
  if (period > 0) {
    for (int i = 0; i < seasonal_d; ++i) out = Difference(out, period);
  }
  return out;
}

std::vector<double> Undifference(const std::vector<double>& diffed,
                                 const std::vector<double>& initial,
                                 std::size_t lag) {
  assert(initial.size() >= lag);
  // Reconstruct x[t] = diffed[t] + x[t-lag], seeding with `initial`'s tail.
  std::vector<double> full(initial.end() - static_cast<std::ptrdiff_t>(lag),
                           initial.end());
  full.reserve(lag + diffed.size());
  for (std::size_t t = 0; t < diffed.size(); ++t) {
    full.push_back(diffed[t] + full[t]);
  }
  return std::vector<double>(full.begin() + static_cast<std::ptrdiff_t>(lag),
                             full.end());
}

std::vector<double> IntegrateForecast(const std::vector<double>& train,
                                      const std::vector<double>& forecast,
                                      int d, int seasonal_d,
                                      std::size_t period) {
  // Build the stack of progressively differenced training series so that the
  // inverse can be applied outermost-last. Application order below must
  // mirror DifferenceMany: ordinary d times, then seasonal D times.
  std::vector<std::vector<double>> stack;
  stack.push_back(train);
  for (int i = 0; i < d; ++i) stack.push_back(Difference(stack.back(), 1));
  if (period > 0) {
    for (int i = 0; i < seasonal_d; ++i) {
      stack.push_back(Difference(stack.back(), period));
    }
  }
  // Invert in reverse: seasonal first (innermost applied last).
  std::vector<double> cur = forecast;
  int level = static_cast<int>(stack.size()) - 1;
  if (period > 0) {
    for (int i = 0; i < seasonal_d; ++i) {
      --level;  // the series the seasonal diff was applied to
      cur = Undifference(cur, stack[static_cast<std::size_t>(level)], period);
    }
  }
  for (int i = 0; i < d; ++i) {
    --level;
    cur = Undifference(cur, stack[static_cast<std::size_t>(level)], 1);
  }
  return cur;
}

}  // namespace capplan::tsa
