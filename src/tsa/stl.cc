#include "tsa/stl.h"

#include <algorithm>
#include <cmath>

#include "math/vec.h"

namespace capplan::tsa {

namespace {

double Tricube(double u) {
  const double a = 1.0 - std::fabs(u) * std::fabs(u) * std::fabs(u);
  return a > 0.0 ? a * a * a : 0.0;
}

// Weighted polynomial fit evaluated at x0. Falls back to lower degrees when
// the local design matrix is degenerate.
double LocalFit(const std::vector<double>& xs, const std::vector<double>& ys,
                const std::vector<double>& ws, double x0, int degree) {
  const std::size_t n = xs.size();
  double sw = 0.0;
  for (double w : ws) sw += w;
  if (sw <= 0.0) return 0.0;
  if (degree <= 0 || n < 3) {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) s += ws[i] * ys[i];
    return s / sw;
  }
  // Weighted linear regression on (x - x0).
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = xs[i] - x0;
    sx += ws[i] * d;
    sy += ws[i] * ys[i];
    sxx += ws[i] * d * d;
    sxy += ws[i] * d * ys[i];
  }
  const double det = sw * sxx - sx * sx;
  if (std::fabs(det) < 1e-12) {
    return sy / sw;
  }
  const double intercept = (sxx * sy - sx * sxy) / det;
  // Evaluated at d = 0, the intercept is the fit at x0.
  if (degree == 1) return intercept;
  // Degree 2: augment with quadratic term.
  double sxxx = 0.0, sxxxx = 0.0, sxxy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = xs[i] - x0;
    sxxx += ws[i] * d * d * d;
    sxxxx += ws[i] * d * d * d * d;
    sxxy += ws[i] * d * d * ys[i];
  }
  // Solve the 3x3 normal equations [sw sx sxx; sx sxx sxxx; sxx sxxx sxxxx]
  // * beta = [sy sxy sxxy] via Cramer's rule.
  const double a11 = sw, a12 = sx, a13 = sxx;
  const double a22 = sxx, a23 = sxxx, a33 = sxxxx;
  const double det3 = a11 * (a22 * a33 - a23 * a23) -
                      a12 * (a12 * a33 - a23 * a13) +
                      a13 * (a12 * a23 - a22 * a13);
  if (std::fabs(det3) < 1e-12) return intercept;
  const double d1 = sy * (a22 * a33 - a23 * a23) -
                    a12 * (sxy * a33 - a23 * sxxy) +
                    a13 * (sxy * a23 - a22 * sxxy);
  return d1 / det3;
}

}  // namespace

std::vector<double> Loess(const std::vector<double>& y, std::size_t span,
                          int degree,
                          const std::vector<double>& robustness_weights) {
  const std::size_t n = y.size();
  std::vector<double> out(n, 0.0);
  if (n == 0) return out;
  span = std::clamp<std::size_t>(span, 2, n);
  for (std::size_t i = 0; i < n; ++i) {
    // Window of the `span` nearest neighbours of i.
    std::size_t lo = i >= span / 2 ? i - span / 2 : 0;
    if (lo + span > n) lo = n - span;
    const std::size_t hi = lo + span;  // exclusive
    // Max distance for tricube normalization.
    const double d_max = std::max<double>(
        static_cast<double>(i) - static_cast<double>(lo),
        static_cast<double>(hi - 1) - static_cast<double>(i));
    std::vector<double> xs, ys, ws;
    xs.reserve(span);
    ys.reserve(span);
    ws.reserve(span);
    for (std::size_t j = lo; j < hi; ++j) {
      const double dist =
          std::fabs(static_cast<double>(j) - static_cast<double>(i));
      double w = d_max > 0.0 ? Tricube(dist / (d_max + 1e-9)) : 1.0;
      if (!robustness_weights.empty()) w *= robustness_weights[j];
      if (w <= 0.0) continue;
      xs.push_back(static_cast<double>(j));
      ys.push_back(y[j]);
      ws.push_back(w);
    }
    if (xs.empty()) {
      out[i] = y[i];
      continue;
    }
    out[i] = LocalFit(xs, ys, ws, static_cast<double>(i), degree);
  }
  return out;
}

Result<Decomposition> StlDecompose(const std::vector<double>& x,
                                   std::size_t period,
                                   const StlOptions& options) {
  const std::size_t n = x.size();
  if (period < 2) {
    return Status::InvalidArgument("StlDecompose: period must be >= 2");
  }
  if (n < 2 * period) {
    return Status::InvalidArgument(
        "StlDecompose: need at least two full periods");
  }
  std::size_t trend_span = options.trend_span;
  if (trend_span == 0) {
    const double denom =
        1.0 - 1.5 / static_cast<double>(std::max<std::size_t>(
                        options.seasonal_span, 3));
    trend_span = static_cast<std::size_t>(
        std::ceil(1.5 * static_cast<double>(period) / denom));
  }
  if (trend_span % 2 == 0) ++trend_span;
  trend_span = std::min(trend_span, n);

  std::vector<double> trend(n, 0.0);
  std::vector<double> seasonal(n, 0.0);
  std::vector<double> rho;  // robustness weights (empty = uniform)

  for (int robust_pass = 0; robust_pass <= options.robust_iterations;
       ++robust_pass) {
    for (int inner = 0; inner < options.inner_iterations; ++inner) {
      // 1. Detrend.
      std::vector<double> detrended(n);
      for (std::size_t t = 0; t < n; ++t) detrended[t] = x[t] - trend[t];
      // 2. Cycle-subseries smoothing: smooth each phase's subsequence.
      std::vector<double> cycle(n, 0.0);
      for (std::size_t p = 0; p < period; ++p) {
        std::vector<double> sub, sub_rho;
        for (std::size_t t = p; t < n; t += period) {
          sub.push_back(detrended[t]);
          if (!rho.empty()) sub_rho.push_back(rho[t]);
        }
        const auto smoothed =
            Loess(sub, std::min(options.seasonal_span, sub.size()), 1,
                  sub_rho);
        std::size_t k = 0;
        for (std::size_t t = p; t < n; t += period) {
          cycle[t] = smoothed[k++];
        }
      }
      // 3. Low-pass filter of the cycle: remove any trend the subseries
      // smoothing leaked into the seasonal (moving average over one period
      // then loess).
      const auto ma = CenteredMovingAverage(cycle, period);
      std::vector<double> low(n);
      for (std::size_t t = 0; t < n; ++t) {
        low[t] = std::isnan(ma[t]) ? cycle[t] : ma[t];
      }
      const auto low_smooth = Loess(low, trend_span, 1, rho);
      for (std::size_t t = 0; t < n; ++t) {
        seasonal[t] = cycle[t] - low_smooth[t];
      }
      // 4. Deseasonalize and smooth for the trend.
      std::vector<double> deseasonalized(n);
      for (std::size_t t = 0; t < n; ++t) {
        deseasonalized[t] = x[t] - seasonal[t];
      }
      trend = Loess(deseasonalized, trend_span, 1, rho);
    }
    if (robust_pass == options.robust_iterations) break;
    // Update robustness weights from the remainder (bisquare on |r|/6*MAD).
    std::vector<double> abs_rem(n);
    for (std::size_t t = 0; t < n; ++t) {
      abs_rem[t] = std::fabs(x[t] - trend[t] - seasonal[t]);
    }
    const double h = 6.0 * math::Median(abs_rem);
    rho.assign(n, 1.0);
    if (h > 0.0) {
      for (std::size_t t = 0; t < n; ++t) {
        const double u = abs_rem[t] / h;
        const double b = 1.0 - u * u;
        rho[t] = u >= 1.0 ? 0.0 : b * b;
      }
    }
  }

  Decomposition dec;
  dec.trend = trend;
  dec.seasonal = seasonal;
  dec.remainder.resize(n);
  for (std::size_t t = 0; t < n; ++t) {
    dec.remainder[t] = x[t] - trend[t] - seasonal[t];
  }
  // Mean seasonal value per phase for compatibility with the classical
  // decomposition's index output.
  dec.seasonal_indices.assign(period, 0.0);
  std::vector<std::size_t> counts(period, 0);
  for (std::size_t t = 0; t < n; ++t) {
    dec.seasonal_indices[t % period] += seasonal[t];
    ++counts[t % period];
  }
  for (std::size_t p = 0; p < period; ++p) {
    if (counts[p] > 0) {
      dec.seasonal_indices[p] /= static_cast<double>(counts[p]);
    }
  }
  return dec;
}

}  // namespace capplan::tsa
