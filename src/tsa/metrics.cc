#include "tsa/metrics.h"

#include <algorithm>
#include <cmath>

namespace capplan::tsa {

namespace {

Status CheckInputs(const std::vector<double>& actual,
                   const std::vector<double>& predicted) {
  if (actual.empty()) {
    return Status::InvalidArgument("accuracy: empty input");
  }
  if (actual.size() != predicted.size()) {
    return Status::InvalidArgument("accuracy: length mismatch");
  }
  return Status::OK();
}

}  // namespace

Result<double> Rmse(const std::vector<double>& actual,
                    const std::vector<double>& predicted) {
  CAPPLAN_RETURN_NOT_OK(CheckInputs(actual, predicted));
  double ss = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double e = actual[i] - predicted[i];
    ss += e * e;
  }
  return std::sqrt(ss / static_cast<double>(actual.size()));
}

Result<double> Mae(const std::vector<double>& actual,
                   const std::vector<double>& predicted) {
  CAPPLAN_RETURN_NOT_OK(CheckInputs(actual, predicted));
  double s = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    s += std::fabs(actual[i] - predicted[i]);
  }
  return s / static_cast<double>(actual.size());
}

Result<double> Mape(const std::vector<double>& actual,
                    const std::vector<double>& predicted, double eps) {
  CAPPLAN_RETURN_NOT_OK(CheckInputs(actual, predicted));
  double s = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (std::fabs(actual[i]) < eps) continue;
    s += std::fabs((actual[i] - predicted[i]) / actual[i]);
    ++used;
  }
  if (used == 0) {
    return Status::ComputeError("Mape: all actuals are ~0");
  }
  return 100.0 * s / static_cast<double>(used);
}

Result<double> Mapa(const std::vector<double>& actual,
                    const std::vector<double>& predicted, double eps) {
  CAPPLAN_ASSIGN_OR_RETURN(double mape, Mape(actual, predicted, eps));
  return std::max(0.0, 100.0 - mape);
}

Result<double> Smape(const std::vector<double>& actual,
                     const std::vector<double>& predicted) {
  CAPPLAN_RETURN_NOT_OK(CheckInputs(actual, predicted));
  double s = 0.0;
  std::size_t used = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double denom = std::fabs(actual[i]) + std::fabs(predicted[i]);
    if (denom < 1e-12) continue;
    s += 2.0 * std::fabs(actual[i] - predicted[i]) / denom;
    ++used;
  }
  if (used == 0) {
    return Status::ComputeError("Smape: degenerate inputs");
  }
  return 100.0 * s / static_cast<double>(used);
}

Result<double> Mase(const std::vector<double>& actual,
                    const std::vector<double>& predicted,
                    double naive_scale) {
  if (naive_scale <= 0.0) {
    return Status::InvalidArgument("Mase: naive_scale must be positive");
  }
  CAPPLAN_ASSIGN_OR_RETURN(double mae, Mae(actual, predicted));
  return mae / naive_scale;
}

Result<AccuracyReport> MeasureAccuracy(const std::vector<double>& actual,
                                       const std::vector<double>& predicted) {
  AccuracyReport rep;
  CAPPLAN_ASSIGN_OR_RETURN(rep.rmse, Rmse(actual, predicted));
  CAPPLAN_ASSIGN_OR_RETURN(rep.mae, Mae(actual, predicted));
  // MAPE can legitimately fail on all-zero segments; degrade gracefully.
  auto mape = Mape(actual, predicted);
  rep.mape = mape.ok() ? *mape : std::nan("");
  rep.mapa = mape.ok() ? std::max(0.0, 100.0 - *mape) : std::nan("");
  auto smape = Smape(actual, predicted);
  rep.smape = smape.ok() ? *smape : std::nan("");
  return rep;
}

double AicFromSse(double sse, std::size_t n, std::size_t n_params) {
  const double nn = static_cast<double>(n);
  const double var = std::max(sse / nn, 1e-300);
  return nn * std::log(var) + 2.0 * static_cast<double>(n_params);
}

double BicFromSse(double sse, std::size_t n, std::size_t n_params) {
  const double nn = static_cast<double>(n);
  const double var = std::max(sse / nn, 1e-300);
  return nn * std::log(var) + static_cast<double>(n_params) * std::log(nn);
}

}  // namespace capplan::tsa
