#ifndef CAPPLAN_TSA_FOURIER_H_
#define CAPPLAN_TSA_FOURIER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"

namespace capplan::tsa {

// Fourier terms used as external regressors for multiple seasonality
// (paper Section 4.4, Eq. 15): for each period P_i and harmonic k, the pair
//   sin(2*pi*k*t / P_i), cos(2*pi*k*t / P_i).

// One seasonal period with its harmonic count.
struct FourierSpec {
  double period = 0.0;   // in observations; need not be an integer
  std::size_t k = 1;     // number of harmonics

  friend bool operator==(const FourierSpec& a, const FourierSpec& b) = default;
};

// Stable textual key for a spec list, e.g. "24/2;168/2;". Used to group
// candidates that share the same Fourier design columns (the selector's
// shared-transform cache) without hashing floating-point periods.
std::string FourierCacheKey(const std::vector<FourierSpec>& specs);

// Generates the regressor matrix column-major: for observations t in
// [t_begin, t_begin + n), returns 2*k columns per spec in order
// (sin_1, cos_1, sin_2, cos_2, ...), specs concatenated. Each column has n
// entries. Fails when any period <= 1 or 2k >= period (aliased harmonics).
Result<std::vector<std::vector<double>>> FourierTerms(
    const std::vector<FourierSpec>& specs, std::size_t t_begin, std::size_t n);

// Total number of columns produced for `specs`.
std::size_t FourierColumnCount(const std::vector<FourierSpec>& specs);

// Memoized FourierTerms, shared across every series of a batched refit:
// the design columns depend only on (specs, t_begin, n), never on the data,
// so when many series with the same window length drain through one batch
// the trigonometric evaluation happens once and every later series reuses
// the columns. Thread-safe; entries are immutable once inserted, handed out
// as shared_ptr so a hit costs one map lookup and a refcount bump.
class FourierTermCache {
 public:
  using Columns = std::vector<std::vector<double>>;

  // The columns for (specs, t_begin, n), computed on first use. Failure
  // statuses (aliased harmonics, period <= 1) are not cached — the same bad
  // spec fails identically every time, so there is nothing to save.
  Result<std::shared_ptr<const Columns>> Get(
      const std::vector<FourierSpec>& specs, std::size_t t_begin,
      std::size_t n);

  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::shared_ptr<const Columns>> entries_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace capplan::tsa

#endif  // CAPPLAN_TSA_FOURIER_H_
