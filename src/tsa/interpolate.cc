#include "tsa/interpolate.h"

#include <cmath>

namespace capplan::tsa {

Result<std::vector<double>> LinearInterpolate(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> out = x;
  // Locate first and last known values.
  std::size_t first = n, last = n;
  for (std::size_t i = 0; i < n; ++i) {
    if (!std::isnan(x[i])) {
      if (first == n) first = i;
      last = i;
    }
  }
  if (first == n) {
    return Status::InvalidArgument("LinearInterpolate: all values missing");
  }
  for (std::size_t i = 0; i < first; ++i) out[i] = x[first];
  for (std::size_t i = last + 1; i < n; ++i) out[i] = x[last];
  // Interior gaps.
  std::size_t prev_known = first;
  for (std::size_t i = first + 1; i <= last; ++i) {
    if (std::isnan(out[i])) continue;
    if (i > prev_known + 1) {
      const double lo = out[prev_known];
      const double hi = out[i];
      const double span = static_cast<double>(i - prev_known);
      for (std::size_t j = prev_known + 1; j < i; ++j) {
        const double f = static_cast<double>(j - prev_known) / span;
        out[j] = lo + f * (hi - lo);
      }
    }
    prev_known = i;
  }
  return out;
}

Result<TimeSeries> LinearInterpolate(const TimeSeries& series) {
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> filled,
                           LinearInterpolate(series.values()));
  return TimeSeries(series.name(), series.start_epoch(), series.frequency(),
                    std::move(filled));
}

double MissingFraction(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  std::size_t missing = 0;
  for (double v : x) {
    if (std::isnan(v)) ++missing;
  }
  return static_cast<double>(missing) / static_cast<double>(x.size());
}

}  // namespace capplan::tsa
