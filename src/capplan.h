#ifndef CAPPLAN_CAPPLAN_H_
#define CAPPLAN_CAPPLAN_H_

// Umbrella header: the full public API of the capplan library. Include
// individual module headers instead when compile time matters.

#include "common/json_writer.h"  // IWYU pragma: export
#include "common/logging.h"    // IWYU pragma: export
#include "common/result.h"     // IWYU pragma: export
#include "common/status.h"     // IWYU pragma: export
#include "common/thread_pool.h"  // IWYU pragma: export

#include "obs/export.h"   // IWYU pragma: export
#include "obs/metrics.h"  // IWYU pragma: export
#include "obs/trace.h"    // IWYU pragma: export

#include "math/distributions.h"  // IWYU pragma: export
#include "math/fft.h"            // IWYU pragma: export
#include "math/matrix.h"         // IWYU pragma: export
#include "math/optimize.h"       // IWYU pragma: export
#include "math/polynomial.h"     // IWYU pragma: export
#include "math/vec.h"            // IWYU pragma: export

#include "tsa/acf.h"            // IWYU pragma: export
#include "tsa/boxcox.h"         // IWYU pragma: export
#include "tsa/calendar.h"       // IWYU pragma: export
#include "tsa/decompose.h"      // IWYU pragma: export
#include "tsa/difference.h"     // IWYU pragma: export
#include "tsa/fourier.h"        // IWYU pragma: export
#include "tsa/interpolate.h"    // IWYU pragma: export
#include "tsa/metrics.h"        // IWYU pragma: export
#include "tsa/rolling.h"        // IWYU pragma: export
#include "tsa/seasonality.h"    // IWYU pragma: export
#include "tsa/stationarity.h"   // IWYU pragma: export
#include "tsa/stl.h"            // IWYU pragma: export
#include "tsa/timeseries.h"     // IWYU pragma: export

#include "models/arima.h"       // IWYU pragma: export
#include "models/arima_spec.h"  // IWYU pragma: export
#include "models/auto_arima.h"  // IWYU pragma: export
#include "models/baselines.h"   // IWYU pragma: export
#include "models/dshw.h"        // IWYU pragma: export
#include "models/ets.h"         // IWYU pragma: export
#include "models/kalman.h"      // IWYU pragma: export
#include "models/model.h"       // IWYU pragma: export
#include "models/regression.h"  // IWYU pragma: export
#include "models/tbats.h"       // IWYU pragma: export

#include "workload/cluster.h"       // IWYU pragma: export
#include "workload/events.h"        // IWYU pragma: export
#include "workload/scenario.h"      // IWYU pragma: export
#include "workload/transactions.h"  // IWYU pragma: export

#include "agent/agent.h"  // IWYU pragma: export

#include "store/codec.h"         // IWYU pragma: export
#include "store/segment.h"       // IWYU pragma: export
#include "store/series_store.h"  // IWYU pragma: export
#include "store/tiered_store.h"  // IWYU pragma: export

#include "repo/csv.h"          // IWYU pragma: export
#include "repo/model_store.h"  // IWYU pragma: export
#include "repo/repository.h"   // IWYU pragma: export

#include "core/candidate_gen.h"  // IWYU pragma: export
#include "core/capacity.h"       // IWYU pragma: export
#include "core/drift.h"          // IWYU pragma: export
#include "core/ensemble.h"       // IWYU pragma: export
#include "core/monitor.h"        // IWYU pragma: export
#include "core/pipeline.h"       // IWYU pragma: export
#include "core/report_json.h"    // IWYU pragma: export
#include "core/selector.h"       // IWYU pragma: export
#include "core/shock_detect.h"   // IWYU pragma: export
#include "core/split.h"          // IWYU pragma: export

#include "service/estate_service.h"  // IWYU pragma: export
#include "service/journal.h"         // IWYU pragma: export
#include "service/scheduler.h"       // IWYU pragma: export
#include "service/telemetry.h"       // IWYU pragma: export

#endif  // CAPPLAN_CAPPLAN_H_
