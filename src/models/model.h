#ifndef CAPPLAN_MODELS_MODEL_H_
#define CAPPLAN_MODELS_MODEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace capplan::models {

// A forecast: point predictions plus the error bars required by the paper's
// problem definition ("The prediction z consists of the predicted values and
// associated error bars", Section 3).
struct Forecast {
  std::vector<double> mean;
  std::vector<double> lower;
  std::vector<double> upper;
  double level = 0.95;  // confidence level of [lower, upper]

  std::size_t horizon() const { return mean.size(); }
};

// Summary of a fitted model's in-sample quality, used for ranking.
struct FitSummary {
  double sse = 0.0;        // in-sample sum of squared one-step errors
  double sigma2 = 0.0;     // innovation variance estimate
  double aic = 0.0;
  double bic = 0.0;
  std::size_t n_params = 0;
  std::size_t n_obs = 0;
};

}  // namespace capplan::models

#endif  // CAPPLAN_MODELS_MODEL_H_
