#ifndef CAPPLAN_MODELS_ARIMA_H_
#define CAPPLAN_MODELS_ARIMA_H_

#include <cstddef>
#include <map>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "models/arima_spec.h"
#include "models/model.h"

namespace capplan::models {

// Thread-safe memo of the per-series fit stages that are identical across a
// candidate grid: the (d, D, season)-differenced working series (optionally
// demeaned) and the preliminary innovations of the Hannan-Rissanen long
// autoregression. A selector evaluating hundreds of specs against one
// training window builds one cache and passes it to every
// ArimaModel::Fit via Options::cache; each distinct transform is then
// computed exactly once instead of once per candidate, with bitwise-
// identical results to the uncached path.
class ArimaFitCache {
 public:
  // `y` must be the exact series later passed to every Fit using this cache.
  explicit ArimaFitCache(std::vector<double> y) : y_(std::move(y)) {}

  ArimaFitCache(const ArimaFitCache&) = delete;
  ArimaFitCache& operator=(const ArimaFitCache&) = delete;

  const std::vector<double>& y() const { return y_; }

  // Differenced (and, when `demean`, mean-subtracted) working series.
  struct Working {
    std::vector<double> w;
    double mean = 0.0;  // subtracted mean; 0 when !demean
  };
  const Working& GetWorking(int d, int D, std::size_t season, bool demean);

  // Innovations of the order-`m_long` long autoregression on the working
  // series (zero over the first m_long entries), or the least-squares
  // failure an uncached fit would have reported.
  struct Innovations {
    Status status = Status::OK();
    std::vector<double> e;
  };
  const Innovations& GetInnovations(int d, int D, std::size_t season,
                                    bool demean, std::size_t m_long);

 private:
  using WorkingKey = std::tuple<int, int, std::size_t, bool>;
  using InnovKey = std::tuple<int, int, std::size_t, bool, std::size_t>;
  struct WorkingEntry {
    std::once_flag once;
    Working value;
  };
  struct InnovEntry {
    std::once_flag once;
    Innovations value;
  };

  std::vector<double> y_;
  std::mutex mu_;  // guards map structure only; entries are compute-once
  std::map<WorkingKey, WorkingEntry> working_;
  std::map<InnovKey, InnovEntry> innovations_;
};

// (Seasonal) ARIMA model fitted by conditional least squares.
//
// Estimation pipeline:
//   1. Apply ordinary and seasonal differencing per the spec (paper Eq. 4-5);
//      demean when d + D == 0.
//   2. Hannan-Rissanen two-stage least squares: a long autoregression
//      produces preliminary innovations; the model coefficients are then the
//      OLS fit of the differenced series on its own lags (1..p and the
//      seasonal lags s..Ps) and the lagged innovations (1..q, s..Qs).
//   3. When the coefficient count is small enough, the estimates are refined
//      by Nelder-Mead on the exact conditional sum of squares, constrained
//      to the stationary/invertible region.
//
// The seasonal structure is additive-in-lags (coefficients at the seasonal
// lags) rather than the fully multiplicative polynomial product; for the
// orders the selection grid explores, the two parameterizations span the
// same correlogram features, and the refinement stage minimizes the same CSS
// objective either way. Forecast intervals use the psi-weight expansion of
// the full (differenced) lag polynomial.
class ArimaModel {
 public:
  // Objective used by the simplex refinement stage.
  enum class Method {
    kCss,  // conditional sum of squares (default; fast, R arima "CSS")
    kMle,  // exact Gaussian likelihood via the Kalman filter ("ML")
  };

  struct Options {
    // Run the simplex refinement when the coefficient count is at most this.
    std::size_t max_refine_params = 10;
    bool refine = true;
    Method method = Method::kCss;
    // Estimate a mean term when no differencing is applied.
    bool include_mean = true;
    // Shared-transform cache built over the same series as `y` (see
    // ArimaFitCache). Ignored when null or when its series is not
    // element-wise equal to y. Not owned.
    ArimaFitCache* cache = nullptr;
    // Warm start: dense by-lag coefficient vectors (index i -> lag i+1),
    // typically the converged fit of a neighbouring candidate in
    // (p,q,P,Q) space or a previous fit of the same series. When set (either
    // vector non-empty), the refinement simplex is seeded with this point
    // alongside the Hannan-Rissanen start, which cuts iterations sharply
    // when the neighbour is close. Lags outside the spec's lag set are
    // ignored; missing lags start at zero.
    std::vector<double> init_ar;
    std::vector<double> init_ma;
  };

  // An unfitted placeholder (all-zero white-noise model); use Fit() to
  // obtain a usable model.
  ArimaModel() = default;

  // Fits `spec` to `y`. Fails when the series is too short for the spec, the
  // regression is degenerate, or the spec is invalid.
  static Result<ArimaModel> Fit(const std::vector<double>& y,
                                const ArimaSpec& spec,
                                const Options& options);
  static Result<ArimaModel> Fit(const std::vector<double>& y,
                                const ArimaSpec& spec) {
    return Fit(y, spec, Options());
  }

  // Forecasts `horizon` steps past the end of the training series with
  // central prediction intervals at `level`.
  Result<Forecast> Predict(std::size_t horizon, double level = 0.95) const;

  // Point forecasts only (identical to Predict(...).mean), skipping the
  // psi-weight variance expansion and interval quantiles. The selector's
  // early-abort path scores candidates with this and computes full
  // intervals only for survivors.
  Result<std::vector<double>> PredictMean(std::size_t horizon) const;

  const ArimaSpec& spec() const { return spec_; }
  const FitSummary& summary() const { return summary_; }

  // One-step in-sample residuals on the differenced scale; the first
  // max-lag entries are zero (CSS conditioning).
  const std::vector<double>& residuals() const { return residuals_; }

  // Dense coefficient vectors: ar_coefficients()[i] multiplies lag i+1.
  const std::vector<double>& ar_coefficients() const { return ar_full_; }
  const std::vector<double>& ma_coefficients() const { return ma_full_; }
  double mean() const { return mean_; }

  // In-sample one-step-ahead fitted values on the original scale (first
  // d + D*s + max-lag entries repeat the observed values).
  std::vector<double> FittedValues() const;

 private:
  ArimaSpec spec_;
  Options options_;
  std::vector<double> train_;      // original series
  std::vector<double> w_;          // differenced, demeaned working series
  double mean_ = 0.0;
  std::vector<double> ar_full_;    // dense, index i -> lag i+1
  std::vector<double> ma_full_;
  std::vector<double> residuals_;  // on the differenced scale
  FitSummary summary_;
};

// Computes CSS residuals of a (dense-lag) ARMA on `w`; the first
// max(ar,ma) lag entries are zero. Shared with the regression-with-ARIMA-
// errors fitter.
std::vector<double> ComputeCssResiduals(const std::vector<double>& w,
                                        const std::vector<double>& ar_full,
                                        const std::vector<double>& ma_full);

}  // namespace capplan::models

#endif  // CAPPLAN_MODELS_ARIMA_H_
