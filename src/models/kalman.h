#ifndef CAPPLAN_MODELS_KALMAN_H_
#define CAPPLAN_MODELS_KALMAN_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace capplan::models {

// Exact Gaussian likelihood of an ARMA process via the Kalman filter on
// Harvey's state-space form — the estimation method behind R's
// arima(method="ML") and statsmodels' SARIMAX. Offered as an alternative to
// the conditional-sum-of-squares objective: exact likelihood uses the
// information in the first max(p, q+1) observations instead of conditioning
// on them, which matters for short series and strong seasonality.
//
// State space (r = max(p, q+1)):
//   alpha_t = T alpha_{t-1} + R eps_t,   y_t = Z alpha_t
// with T carrying the AR coefficients in its first column and a shifted
// identity above the diagonal, R = (1, theta_1, ..., theta_{r-1})', and
// Z = (1, 0, ..., 0). The innovation variance is concentrated out of the
// likelihood; the filter runs with unit variance and rescales.

struct KalmanArmaResult {
  double log_likelihood = 0.0;  // at the concentrated sigma2
  double sigma2 = 0.0;          // concentrated innovation variance estimate
  std::vector<double> innovations;        // one-step prediction errors v_t
  std::vector<double> innovation_vars;    // their variances F_t (unit scale)
};

// `w` is the (differenced, mean-adjusted) observation vector; `ar_full` and
// `ma_full` are dense lag-coefficient vectors (index i -> lag i+1, zeros
// allowed). For state dimension r = max(p, q+1) <= 12 of a stationary
// process, the initial state covariance is the exact Lyapunov solution
// (true exact likelihood); otherwise a diffuse prior is used and the first
// r innovations are dropped from the concentrated likelihood — adequate
// for likelihood *evaluation* but too crude for optimizing high-order
// seasonal models (ArimaModel restricts its kMle refinement accordingly).
// Fails on empty input or a numerically degenerate filter.
Result<KalmanArmaResult> ArmaKalmanLikelihood(
    const std::vector<double>& w, const std::vector<double>& ar_full,
    const std::vector<double>& ma_full, double diffuse_kappa = 1e7);

// Theoretical autocovariances gamma(0..max_lag) of a stationary ARMA
// process with unit innovation variance, computed from a long psi-weight
// expansion. Used by tests to cross-check the Kalman likelihood against a
// direct multivariate-normal evaluation.
std::vector<double> ArmaAutocovariances(const std::vector<double>& ar_full,
                                        const std::vector<double>& ma_full,
                                        std::size_t max_lag,
                                        std::size_t psi_terms = 2000);

}  // namespace capplan::models

#endif  // CAPPLAN_MODELS_KALMAN_H_
