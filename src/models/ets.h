#ifndef CAPPLAN_MODELS_ETS_H_
#define CAPPLAN_MODELS_ETS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "models/model.h"

namespace capplan::models {

// Exponential smoothing models (paper Section 4.3): simple exponential
// smoothing, Holt's linear trend (optionally damped) and the Holt-Winters
// seasonal method — the paper's "HES" branch of the Figure 4 workflow.

enum class EtsTrend { kNone, kAdditive, kAdditiveDamped };
enum class EtsSeasonal { kNone, kAdditive, kMultiplicative };

struct EtsSpec {
  EtsTrend trend = EtsTrend::kNone;
  EtsSeasonal seasonal = EtsSeasonal::kNone;
  std::size_t period = 0;  // required when seasonal != kNone

  // "ETS(A,Ad,M) m=24"-style description.
  std::string ToString() const;
  bool IsValid() const;
  std::size_t NumParams() const;
};

// Convenience constructors for the named methods.
EtsSpec SimpleExponentialSmoothing();
EtsSpec HoltLinearTrend(bool damped = false);
EtsSpec HoltWinters(std::size_t period, bool multiplicative = false,
                    bool damped = false);

class EtsModel {
 public:
  struct Options {
    // When true, smoothing parameters are chosen by minimizing the one-step
    // SSE; otherwise the values below are used as-is.
    bool optimize = true;
    double alpha = 0.3;  // level smoothing, (0,1)
    double beta = 0.1;   // trend smoothing, (0,alpha)
    double gamma = 0.1;  // seasonal smoothing, (0,1-alpha)
    double phi = 0.98;   // damping, (0.8,0.995)
  };

  // An unfitted placeholder; use Fit().
  EtsModel() = default;

  static Result<EtsModel> Fit(const std::vector<double>& y,
                              const EtsSpec& spec, const Options& options);
  static Result<EtsModel> Fit(const std::vector<double>& y,
                              const EtsSpec& spec) {
    return Fit(y, spec, Options());
  }

  Result<Forecast> Predict(std::size_t horizon, double level = 0.95) const;

  // Monte-Carlo prediction intervals: simulates `n_paths` future sample
  // paths from the fitted innovations model and reports per-step empirical
  // quantiles. Exact for every ETS variant (the analytic recursion in
  // Predict() is an approximation for seasonal/multiplicative models) at
  // the cost of sampling noise. Deterministic for a fixed seed.
  Result<Forecast> PredictSimulated(std::size_t horizon, double level = 0.95,
                                    std::size_t n_paths = 2000,
                                    std::uint64_t seed = 42) const;

  const EtsSpec& spec() const { return spec_; }
  const FitSummary& summary() const { return summary_; }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double gamma() const { return gamma_; }
  double phi() const { return phi_; }

  // Final smoothed states.
  double level_state() const { return level_; }
  double trend_state() const { return trend_; }
  const std::vector<double>& seasonal_states() const { return seasonal_; }

  // One-step in-sample residuals.
  const std::vector<double>& residuals() const { return residuals_; }
  // One-step in-sample fitted values.
  const std::vector<double>& fitted() const { return fitted_; }

 private:
  // Runs the smoothing recursion with the given parameters over y, starting
  // from heuristic initial states; returns SSE and, if out-params are
  // non-null, the trajectories and final states.
  static double RunRecursion(const std::vector<double>& y, const EtsSpec& spec,
                             double alpha, double beta, double gamma,
                             double phi, double* final_level,
                             double* final_trend,
                             std::vector<double>* final_seasonal,
                             std::vector<double>* fitted,
                             std::vector<double>* residuals);

  EtsSpec spec_;
  double alpha_ = 0.3, beta_ = 0.1, gamma_ = 0.1, phi_ = 0.98;
  double level_ = 0.0, trend_ = 0.0;
  std::vector<double> seasonal_;  // most recent full period, phase-indexed
  std::vector<double> residuals_;
  std::vector<double> fitted_;
  FitSummary summary_;
};

}  // namespace capplan::models

#endif  // CAPPLAN_MODELS_ETS_H_
