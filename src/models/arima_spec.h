#ifndef CAPPLAN_MODELS_ARIMA_SPEC_H_
#define CAPPLAN_MODELS_ARIMA_SPEC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"

namespace capplan::models {

// Order specification of a (seasonal) ARIMA model, the paper's
// (p,d,q)(P,D,Q,F) tuple. season == 0 means a plain ARIMA(p,d,q).
struct ArimaSpec {
  int p = 0;  // autoregressive order
  int d = 0;  // ordinary differencing
  int q = 0;  // moving-average order
  int P = 0;  // seasonal AR order
  int D = 0;  // seasonal differencing
  int Q = 0;  // seasonal MA order
  std::size_t season = 0;  // seasonal period F (observations)

  bool is_seasonal() const { return season > 0 && (P > 0 || D > 0 || Q > 0); }

  // Number of free coefficients (excluding the innovation variance and any
  // mean term).
  std::size_t NumCoefficients() const {
    return static_cast<std::size_t>(p + q + P + Q);
  }

  // "(p,d,q)" or "(p,d,q)(P,D,Q,s)" in the paper's notation.
  std::string ToString() const;

  // Validation: non-negative orders, d+D <= 3, seasonal orders require a
  // season, season > 1 when present.
  bool IsValid() const;

  friend bool operator==(const ArimaSpec& a, const ArimaSpec& b) = default;
};

// Inverse of ArimaSpec::ToString: parses "(p,d,q)" or "(p,d,q)(P,D,Q,s)",
// ignoring any trailing decoration (e.g. "+FFT+exog(2)" appended by the
// pipeline's chosen_spec). Fails on other shapes or an invalid spec — the
// model repository stores free-form spec strings (HES names, ensembles), so
// callers recovering a warm-start hint must tolerate failure.
Result<ArimaSpec> ParseArimaSpec(const std::string& s);

}  // namespace capplan::models

#endif  // CAPPLAN_MODELS_ARIMA_SPEC_H_
