#include "models/tbats.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <sstream>

#include "math/distributions.h"
#include "math/optimize.h"
#include "math/vec.h"
#include "tsa/boxcox.h"
#include "tsa/metrics.h"

namespace capplan::models {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kInf = std::numeric_limits<double>::infinity();
std::atomic<std::uint64_t> g_filter_runs{0};
}  // namespace

std::uint64_t TbatsModel::TotalFilterRuns() {
  return g_filter_runs.load(std::memory_order_relaxed);
}

std::string TbatsConfig::ToString() const {
  std::ostringstream os;
  os << "TBATS(boxcox=" << (use_boxcox ? "y" : "n")
     << ",trend=" << (use_trend ? "y" : "n")
     << ",damped=" << (use_damping ? "y" : "n") << ",arma=(" << arma_p << ","
     << arma_q << "),seasons={";
  for (std::size_t i = 0; i < seasons.size(); ++i) {
    if (i) os << ",";
    os << seasons[i].period << ":" << seasons[i].harmonics;
  }
  os << "})";
  return os.str();
}

std::size_t TbatsConfig::NumParams() const {
  std::size_t k = 1;  // alpha
  if (use_trend) ++k;
  if (use_damping) ++k;
  k += 2 * seasons.size();  // gamma1, gamma2 per season
  k += static_cast<std::size_t>(arma_p + arma_q);
  if (use_boxcox) ++k;  // lambda
  return k;
}

TbatsModel::StateLayout TbatsModel::MakeLayout(const TbatsConfig& config) {
  StateLayout layout;
  layout.has_trend = config.use_trend;
  std::size_t off = 1 + (config.use_trend ? 1 : 0);
  for (const auto& s : config.seasons) {
    layout.season_offsets.push_back(off);
    layout.season_harmonics.push_back(s.harmonics);
    layout.season_periods.push_back(s.period);
    off += 2 * s.harmonics;  // s_j and s*_j interleaved
  }
  layout.p = config.arma_p;
  layout.q = config.arma_q;
  layout.arma_d_offset = off;
  off += static_cast<std::size_t>(config.arma_p);
  layout.arma_e_offset = off;
  off += static_cast<std::size_t>(config.arma_q);
  layout.size = off;
  return layout;
}

double TbatsModel::PredictOneStep(const StateLayout& layout,
                                  const Params& params,
                                  const std::vector<double>& state) {
  double yhat = state[0];  // level
  if (layout.has_trend) yhat += params.phi * state[1];
  for (std::size_t i = 0; i < layout.season_offsets.size(); ++i) {
    const std::size_t off = layout.season_offsets[i];
    const std::size_t k = layout.season_harmonics[i];
    for (std::size_t j = 0; j < k; ++j) {
      yhat += state[off + 2 * j];  // sum of s_j components
    }
  }
  // Expected ARMA residual part: d_hat = sum(phi_i d_{t-i}) + sum(th_j e_{t-j}).
  for (int i = 0; i < layout.p; ++i) {
    yhat += params.arma_phi[static_cast<std::size_t>(i)] *
            state[layout.arma_d_offset + static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < layout.q; ++j) {
    yhat += params.arma_theta[static_cast<std::size_t>(j)] *
            state[layout.arma_e_offset + static_cast<std::size_t>(j)];
  }
  return yhat;
}

void TbatsModel::UpdateState(const StateLayout& layout, const Params& params,
                             std::vector<double>* state, double innovation) {
  std::vector<double>& x = *state;
  const double e = innovation;
  // ARMA residual value realized this step.
  double d_t = e;
  for (int i = 0; i < layout.p; ++i) {
    d_t += params.arma_phi[static_cast<std::size_t>(i)] *
           x[layout.arma_d_offset + static_cast<std::size_t>(i)];
  }
  for (int j = 0; j < layout.q; ++j) {
    d_t += params.arma_theta[static_cast<std::size_t>(j)] *
           x[layout.arma_e_offset + static_cast<std::size_t>(j)];
  }
  // Level and trend (error-correction form, paper Eq. 8-9 with d_t folded
  // into the innovation).
  const double base = x[0] + (layout.has_trend ? params.phi * x[1] : 0.0);
  x[0] = base + params.alpha * e;
  if (layout.has_trend) x[1] = params.phi * x[1] + params.beta * e;
  // Trigonometric seasonal rotation (paper Eq. 12-13).
  for (std::size_t i = 0; i < layout.season_offsets.size(); ++i) {
    const std::size_t off = layout.season_offsets[i];
    const std::size_t k = layout.season_harmonics[i];
    const double m = layout.season_periods[i];
    for (std::size_t j = 0; j < k; ++j) {
      const double lam =
          2.0 * kPi * static_cast<double>(j + 1) / m;
      const double c = std::cos(lam), s = std::sin(lam);
      const double sj = x[off + 2 * j];
      const double sj_star = x[off + 2 * j + 1];
      x[off + 2 * j] = sj * c + sj_star * s + params.gamma1[i] * e;
      x[off + 2 * j + 1] = -sj * s + sj_star * c + params.gamma2[i] * e;
    }
  }
  // Shift ARMA histories (newest first).
  for (int i = layout.p - 1; i > 0; --i) {
    x[layout.arma_d_offset + static_cast<std::size_t>(i)] =
        x[layout.arma_d_offset + static_cast<std::size_t>(i - 1)];
  }
  if (layout.p > 0) x[layout.arma_d_offset] = d_t;
  for (int j = layout.q - 1; j > 0; --j) {
    x[layout.arma_e_offset + static_cast<std::size_t>(j)] =
        x[layout.arma_e_offset + static_cast<std::size_t>(j - 1)];
  }
  if (layout.q > 0) x[layout.arma_e_offset] = e;
}

double TbatsModel::RunFilter(const std::vector<double>& z,
                             const StateLayout& layout, const Params& params,
                             std::size_t warmup,
                             std::vector<double>* final_state,
                             std::vector<double>* residuals) {
  g_filter_runs.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = z.size();
  std::vector<double> state(layout.size, 0.0);
  // Heuristic initial level/trend.
  const std::size_t head = std::min<std::size_t>(n, 24);
  double mu = 0.0;
  for (std::size_t i = 0; i < head; ++i) mu += z[i];
  mu /= static_cast<double>(head);
  state[0] = mu;
  if (layout.has_trend && n > head) {
    state[1] = (z[n - 1] - z[0]) / static_cast<double>(n - 1);
  }
  if (residuals) residuals->assign(n, 0.0);
  double sse = 0.0;
  std::size_t counted = 0;
  for (std::size_t t = 0; t < n; ++t) {
    const double yhat = PredictOneStep(layout, params, state);
    const double e = z[t] - yhat;
    if (!std::isfinite(e) || std::fabs(e) > 1e12) return kInf;
    if (residuals) (*residuals)[t] = e;
    if (t >= warmup) {
      sse += e * e;
      ++counted;
    }
    UpdateState(layout, params, &state, e);
  }
  if (counted == 0) return kInf;
  if (final_state) *final_state = state;
  return sse;
}

Result<TbatsModel> TbatsModel::FitConfig(const std::vector<double>& y,
                                         const TbatsConfig& config,
                                         int max_iterations) {
  if (y.size() < 16) {
    return Status::InvalidArgument("TbatsModel: series too short");
  }
  for (const auto& s : config.seasons) {
    if (s.period <= 1.0 || s.harmonics == 0 ||
        2.0 * static_cast<double>(s.harmonics) >= s.period) {
      return Status::InvalidArgument("TbatsModel: invalid season spec");
    }
  }
  TbatsModel m;
  m.config_ = config;
  m.layout_ = MakeLayout(config);

  // Box-Cox.
  std::vector<double> z = y;
  m.lambda_ = 1.0;
  if (config.use_boxcox) {
    auto lam = tsa::EstimateBoxCoxLambda(y);
    if (!lam.ok()) return lam.status();
    m.lambda_ = *lam;
    CAPPLAN_ASSIGN_OR_RETURN(z, tsa::BoxCoxTransform(y, m.lambda_));
  }

  // Warmup: let the harmonic states settle over the longest period.
  double longest = 8.0;
  for (const auto& s : config.seasons) longest = std::max(longest, s.period);
  m.warmup_ = std::min<std::size_t>(
      static_cast<std::size_t>(longest) + 1, z.size() / 3);

  const std::size_t n_seasons = config.seasons.size();
  const int p = config.arma_p, q = config.arma_q;

  // Parameter packing for the optimizer. Bounded by logistic squashing.
  auto squash = [](double u, double lo, double hi) {
    return lo + (hi - lo) / (1.0 + std::exp(-u));
  };
  auto decode = [&](const std::vector<double>& x) {
    Params prm;
    std::size_t i = 0;
    prm.alpha = squash(x[i++], 0.001, 1.5);
    prm.beta = config.use_trend ? squash(x[i++], 0.0, 0.5) : 0.0;
    prm.phi = config.use_damping ? squash(x[i++], 0.8, 0.999)
                                 : (config.use_trend ? 1.0 : 0.0);
    prm.gamma1.resize(n_seasons);
    prm.gamma2.resize(n_seasons);
    for (std::size_t s = 0; s < n_seasons; ++s) {
      prm.gamma1[s] = squash(x[i++], -0.2, 0.6);
      prm.gamma2[s] = squash(x[i++], -0.2, 0.6);
    }
    prm.arma_phi.resize(static_cast<std::size_t>(p));
    prm.arma_theta.resize(static_cast<std::size_t>(q));
    for (int a = 0; a < p; ++a) {
      prm.arma_phi[static_cast<std::size_t>(a)] = squash(x[i++], -0.98, 0.98);
    }
    for (int a = 0; a < q; ++a) {
      prm.arma_theta[static_cast<std::size_t>(a)] =
          squash(x[i++], -0.98, 0.98);
    }
    return prm;
  };
  std::size_t dim = 1 + (config.use_trend ? 1 : 0) +
                    (config.use_damping ? 1 : 0) + 2 * n_seasons +
                    static_cast<std::size_t>(p + q);
  std::vector<double> x0(dim, 0.0);
  x0[0] = -2.0;  // alpha ~ 0.25

  math::Objective obj = [&](const std::vector<double>& x) {
    return RunFilter(z, m.layout_, decode(x), m.warmup_, nullptr, nullptr);
  };
  math::NelderMeadOptions nm;
  nm.max_iterations = max_iterations;
  nm.initial_step = 0.8;
  nm.restarts = 1;
  auto outcome = math::NelderMead(obj, x0, nm);
  if (!outcome.ok()) return outcome.status();
  if (!std::isfinite(outcome->fx)) {
    return Status::ComputeError("TbatsModel: filter diverged for all trials");
  }
  m.params_ = decode(outcome->x);
  const double sse = RunFilter(z, m.layout_, m.params_, m.warmup_,
                               &m.final_state_, &m.residuals_);
  const std::size_t n_eff = z.size() - m.warmup_;
  const std::size_t k = config.NumParams() + 2;  // + initial level/trend
  m.summary_.sse = sse;
  m.summary_.sigma2 = sse / static_cast<double>(n_eff);
  m.summary_.n_params = k;
  m.summary_.n_obs = n_eff;
  m.summary_.aic = tsa::AicFromSse(sse, n_eff, k);
  m.summary_.bic = tsa::BicFromSse(sse, n_eff, k);
  return m;
}

Result<TbatsModel> TbatsModel::Fit(const std::vector<double>& y,
                                   const std::vector<double>& periods,
                                   const Options& options) {
  // Positive data is required for the Box-Cox arm.
  bool positive = true;
  for (double v : y) {
    if (v <= 0.0) {
      positive = false;
      break;
    }
  }

  // Greedy harmonic selection per season under the base configuration.
  TbatsConfig base;
  base.use_trend = true;
  for (double period : periods) {
    TbatsSeason s;
    s.period = period;
    s.harmonics = 1;
    base.seasons.push_back(s);
  }
  auto fit_or_inf = [&](const TbatsConfig& cfg) -> std::pair<double, Result<TbatsModel>> {
    Result<TbatsModel> r = FitConfig(y, cfg, options.max_fit_iterations);
    const double aic = r.ok() ? r->summary().aic : kInf;
    return {aic, std::move(r)};
  };

  for (std::size_t s = 0; s < base.seasons.size(); ++s) {
    double best_aic = kInf;
    std::size_t best_k = 1;
    for (std::size_t k = 1; k <= options.max_harmonics; ++k) {
      if (2.0 * static_cast<double>(k) >= base.seasons[s].period) break;
      base.seasons[s].harmonics = k;
      const auto [aic, r] = fit_or_inf(base);
      if (aic < best_aic - 1e-9) {
        best_aic = aic;
        best_k = k;
      } else if (k > best_k) {
        break;  // AIC stopped improving; keep the best found
      }
    }
    base.seasons[s].harmonics = best_k;
  }

  // Option lattice.
  std::vector<TbatsConfig> lattice;
  std::vector<bool> boxcox_opts{false};
  if (options.try_boxcox && positive) boxcox_opts.push_back(true);
  std::vector<bool> trend_opts{true};
  if (options.try_trend) trend_opts.push_back(false);
  std::vector<std::pair<int, int>> arma_opts{{0, 0}};
  if (options.try_arma) {
    arma_opts.push_back({1, 0});
    arma_opts.push_back({0, 1});
    arma_opts.push_back({1, 1});
  }
  for (bool bc : boxcox_opts) {
    for (bool tr : trend_opts) {
      std::vector<bool> damp_opts{false};
      if (options.try_damping && tr) damp_opts.push_back(true);
      for (bool dp : damp_opts) {
        for (const auto& [ap, aq] : arma_opts) {
          TbatsConfig cfg = base;
          cfg.use_boxcox = bc;
          cfg.use_trend = tr;
          cfg.use_damping = dp;
          cfg.arma_p = ap;
          cfg.arma_q = aq;
          lattice.push_back(cfg);
        }
      }
    }
  }

  double best_aic = kInf;
  Result<TbatsModel> best = Status::ComputeError("TBATS: no config fitted");
  for (const auto& cfg : lattice) {
    auto [aic, r] = fit_or_inf(cfg);
    if (aic < best_aic) {
      best_aic = aic;
      best = std::move(r);
    }
  }
  return best;
}

Result<Forecast> TbatsModel::Predict(std::size_t horizon,
                                     double level) const {
  if (horizon == 0) {
    return Status::InvalidArgument("TbatsModel::Predict: zero horizon");
  }
  if (final_state_.empty()) {
    return Status::FailedPrecondition("TbatsModel::Predict: model not fitted");
  }
  // Point forecast: propagate the state with zero innovations.
  auto propagate = [&](std::vector<double> state, double first_innovation) {
    std::vector<double> out(horizon);
    for (std::size_t h = 0; h < horizon; ++h) {
      out[h] = PredictOneStep(layout_, params_, state);
      const double e = (h == 0) ? first_innovation : 0.0;
      if (e != 0.0) out[h] += e;  // innovation enters y_t directly
      UpdateState(layout_, params_, &state, e);
    }
    return out;
  };
  const std::vector<double> mean_z = propagate(final_state_, 0.0);
  // Impulse response of a unit innovation at the first forecast step gives
  // the psi-weights of the linear system exactly.
  const std::vector<double> bumped = propagate(final_state_, 1.0);
  std::vector<double> psi(horizon);
  for (std::size_t h = 0; h < horizon; ++h) psi[h] = bumped[h] - mean_z[h];

  const double zq = math::NormalQuantile(0.5 * (1.0 + level));
  Forecast fc;
  fc.level = level;
  fc.mean.resize(horizon);
  fc.lower.resize(horizon);
  fc.upper.resize(horizon);
  double var = 0.0;
  for (std::size_t h = 0; h < horizon; ++h) {
    var += psi[h] * psi[h];
    const double half = zq * std::sqrt(summary_.sigma2 * var);
    const double lo_z = mean_z[h] - half;
    const double hi_z = mean_z[h] + half;
    if (config_.use_boxcox) {
      fc.mean[h] = tsa::InverseBoxCox(mean_z[h], lambda_);
      fc.lower[h] = tsa::InverseBoxCox(lo_z, lambda_);
      fc.upper[h] = tsa::InverseBoxCox(hi_z, lambda_);
    } else {
      fc.mean[h] = mean_z[h];
      fc.lower[h] = lo_z;
      fc.upper[h] = hi_z;
    }
  }
  return fc;
}

}  // namespace capplan::models
