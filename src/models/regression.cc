#include "models/regression.h"

#include <cmath>

#include "math/matrix.h"
#include "tsa/metrics.h"

namespace capplan::models {

Result<OlsFit> OlsRegression(const std::vector<std::vector<double>>& columns,
                             const std::vector<double>& y, bool intercept) {
  const std::size_t n = y.size();
  if (n == 0) {
    return Status::InvalidArgument("OlsRegression: empty response");
  }
  for (const auto& col : columns) {
    if (col.size() != n) {
      return Status::InvalidArgument("OlsRegression: column length mismatch");
    }
  }
  const std::size_t k = columns.size() + (intercept ? 1 : 0);
  if (k == 0) {
    return Status::InvalidArgument("OlsRegression: no regressors");
  }
  if (n <= k) {
    return Status::InvalidArgument("OlsRegression: more columns than rows");
  }
  math::Matrix x(n, k);
  for (std::size_t r = 0; r < n; ++r) {
    std::size_t c = 0;
    if (intercept) x(r, c++) = 1.0;
    for (const auto& col : columns) x(r, c++) = col[r];
  }
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> beta,
                           math::SolveLeastSquares(x, y));
  OlsFit fit;
  fit.intercept = intercept;
  fit.beta = beta;
  fit.fitted = x.Apply(beta);
  fit.residuals.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    fit.residuals[i] = y[i] - fit.fitted[i];
    fit.sse += fit.residuals[i] * fit.residuals[i];
  }
  return fit;
}

Result<OlsFit> SarimaxModel::FitOls(
    const std::vector<double>& y,
    const std::vector<std::vector<double>>& exog,
    const std::vector<tsa::FourierSpec>& fourier,
    tsa::FourierTermCache* fourier_cache) {
  // Assemble the deterministic regressor block.
  std::vector<std::vector<double>> columns = exog;
  if (!fourier.empty()) {
    if (fourier_cache != nullptr) {
      CAPPLAN_ASSIGN_OR_RETURN(auto shared,
                               fourier_cache->Get(fourier, 0, y.size()));
      columns.insert(columns.end(), shared->begin(), shared->end());
    } else {
      CAPPLAN_ASSIGN_OR_RETURN(std::vector<std::vector<double>> fcols,
                               tsa::FourierTerms(fourier, 0, y.size()));
      for (auto& c : fcols) columns.push_back(std::move(c));
    }
  }
  if (columns.empty()) {
    // Pure SARIMA: regression part is just the intercept, which the error
    // model's mean term already handles; regress on intercept only to keep
    // the code path uniform.
    return OlsRegression({}, y, /*intercept=*/true);
  }
  return OlsRegression(columns, y, /*intercept=*/true);
}

Result<SarimaxModel> SarimaxModel::FitWithSharedOls(
    std::size_t n_train, const OlsFit& ols, std::size_t n_exog,
    const std::vector<tsa::FourierSpec>& fourier, const ArimaSpec& spec,
    const ArimaModel::Options& options) {
  SarimaxModel m;
  m.n_train_ = n_train;
  m.n_exog_ = n_exog;
  m.fourier_ = fourier;
  m.ols_ = ols;

  // SARIMA on the regression residuals. The residuals are mean-zero by
  // construction, so no extra mean term.
  ArimaModel::Options err_opts = options;
  err_opts.include_mean = false;
  CAPPLAN_ASSIGN_OR_RETURN(m.error_model_,
                           ArimaModel::Fit(m.ols_.residuals, spec, err_opts));

  const FitSummary& es = m.error_model_.summary();
  m.summary_ = es;
  m.summary_.n_params = es.n_params + m.ols_.beta.size();
  m.summary_.aic = tsa::AicFromSse(es.sse, es.n_obs, m.summary_.n_params);
  m.summary_.bic = tsa::BicFromSse(es.sse, es.n_obs, m.summary_.n_params);
  return m;
}

Result<SarimaxModel> SarimaxModel::Fit(
    const std::vector<double>& y, const ArimaSpec& spec,
    const std::vector<std::vector<double>>& exog,
    const std::vector<tsa::FourierSpec>& fourier,
    const ArimaModel::Options& options, tsa::FourierTermCache* fourier_cache) {
  CAPPLAN_ASSIGN_OR_RETURN(OlsFit ols,
                           FitOls(y, exog, fourier, fourier_cache));
  return FitWithSharedOls(y.size(), ols, exog.size(), fourier, spec, options);
}

namespace {

// Regression part of a SARIMAX forecast over the horizon: intercept + exog
// columns + extended Fourier terms, weighted by the OLS beta.
Result<std::vector<double>> DeterministicPart(
    const std::vector<double>& beta,
    const std::vector<tsa::FourierSpec>& fourier, std::size_t n_train,
    std::size_t horizon, const std::vector<std::vector<double>>& exog_future) {
  std::vector<std::vector<double>> columns = exog_future;
  if (!fourier.empty()) {
    CAPPLAN_ASSIGN_OR_RETURN(std::vector<std::vector<double>> fcols,
                             tsa::FourierTerms(fourier, n_train, horizon));
    for (auto& c : fcols) columns.push_back(std::move(c));
  }
  std::vector<double> deterministic(horizon, beta[0]);  // intercept
  for (std::size_t c = 0; c < columns.size(); ++c) {
    const double b = beta[c + 1];
    for (std::size_t t = 0; t < horizon; ++t) {
      deterministic[t] += b * columns[c][t];
    }
  }
  return deterministic;
}

Status ValidateExogFuture(const std::vector<std::vector<double>>& exog_future,
                          std::size_t n_exog, std::size_t horizon) {
  if (exog_future.size() != n_exog) {
    return Status::InvalidArgument(
        "SarimaxModel::Predict: exogenous column count differs from fit");
  }
  for (const auto& col : exog_future) {
    if (col.size() != horizon) {
      return Status::InvalidArgument(
          "SarimaxModel::Predict: exogenous column length != horizon");
    }
  }
  return Status::OK();
}

}  // namespace

Result<Forecast> SarimaxModel::Predict(
    std::size_t horizon, const std::vector<std::vector<double>>& exog_future,
    double level) const {
  CAPPLAN_RETURN_NOT_OK(ValidateExogFuture(exog_future, n_exog_, horizon));
  CAPPLAN_ASSIGN_OR_RETURN(
      std::vector<double> deterministic,
      DeterministicPart(ols_.beta, fourier_, n_train_, horizon, exog_future));
  // Stochastic part.
  CAPPLAN_ASSIGN_OR_RETURN(Forecast eta,
                           error_model_.Predict(horizon, level));
  Forecast fc;
  fc.level = level;
  fc.mean.resize(horizon);
  fc.lower.resize(horizon);
  fc.upper.resize(horizon);
  for (std::size_t t = 0; t < horizon; ++t) {
    fc.mean[t] = deterministic[t] + eta.mean[t];
    fc.lower[t] = deterministic[t] + eta.lower[t];
    fc.upper[t] = deterministic[t] + eta.upper[t];
  }
  return fc;
}

Result<std::vector<double>> SarimaxModel::PredictMean(
    std::size_t horizon,
    const std::vector<std::vector<double>>& exog_future) const {
  CAPPLAN_RETURN_NOT_OK(ValidateExogFuture(exog_future, n_exog_, horizon));
  CAPPLAN_ASSIGN_OR_RETURN(
      std::vector<double> deterministic,
      DeterministicPart(ols_.beta, fourier_, n_train_, horizon, exog_future));
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> eta,
                           error_model_.PredictMean(horizon));
  for (std::size_t t = 0; t < horizon; ++t) deterministic[t] += eta[t];
  return deterministic;
}

}  // namespace capplan::models
