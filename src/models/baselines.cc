#include "models/baselines.h"

#include <cmath>

#include "math/distributions.h"
#include "math/vec.h"

namespace capplan::models {

namespace {

// Residual standard deviation of the one-step (seasonal) naive forecaster,
// used for interval widths.
Result<double> NaiveSigma(const std::vector<double>& y, std::size_t period) {
  if (y.size() <= period) {
    return Status::InvalidArgument("baseline: series shorter than period");
  }
  double ss = 0.0;
  std::size_t n = 0;
  for (std::size_t t = period; t < y.size(); ++t) {
    const double e = y[t] - y[t - period];
    ss += e * e;
    ++n;
  }
  if (n == 0) return Status::InvalidArgument("baseline: no residuals");
  return std::sqrt(ss / static_cast<double>(n));
}

Forecast WithIntervals(std::vector<double> mean, double sigma, double level,
                       bool grow_with_horizon) {
  Forecast fc;
  fc.level = level;
  const double z = math::NormalQuantile(0.5 * (1.0 + level));
  fc.lower.resize(mean.size());
  fc.upper.resize(mean.size());
  for (std::size_t h = 0; h < mean.size(); ++h) {
    const double scale =
        grow_with_horizon ? std::sqrt(static_cast<double>(h + 1)) : 1.0;
    fc.lower[h] = mean[h] - z * sigma * scale;
    fc.upper[h] = mean[h] + z * sigma * scale;
  }
  fc.mean = std::move(mean);
  return fc;
}

Status CheckArgs(const std::vector<double>& y, std::size_t horizon,
                 double level) {
  if (y.empty()) return Status::InvalidArgument("baseline: empty series");
  if (horizon == 0) return Status::InvalidArgument("baseline: zero horizon");
  if (level <= 0.0 || level >= 1.0) {
    return Status::InvalidArgument("baseline: level in (0,1)");
  }
  return Status::OK();
}

}  // namespace

Result<Forecast> NaiveForecast(const std::vector<double>& y,
                               std::size_t horizon, double level) {
  CAPPLAN_RETURN_NOT_OK(CheckArgs(y, horizon, level));
  CAPPLAN_ASSIGN_OR_RETURN(double sigma, NaiveSigma(y, 1));
  return WithIntervals(std::vector<double>(horizon, y.back()), sigma, level,
                       /*grow_with_horizon=*/true);
}

Result<Forecast> SeasonalNaiveForecast(const std::vector<double>& y,
                                       std::size_t period,
                                       std::size_t horizon, double level) {
  CAPPLAN_RETURN_NOT_OK(CheckArgs(y, horizon, level));
  if (period == 0 || y.size() < period) {
    return Status::InvalidArgument(
        "SeasonalNaiveForecast: need at least one full period");
  }
  CAPPLAN_ASSIGN_OR_RETURN(double sigma, NaiveSigma(y, period));
  std::vector<double> mean(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    // Index of the same phase in the last observed season.
    const std::size_t back = period - (h % period);
    mean[h] = y[y.size() - back];
  }
  return WithIntervals(std::move(mean), sigma, level,
                       /*grow_with_horizon=*/false);
}

Result<Forecast> DriftForecast(const std::vector<double>& y,
                               std::size_t horizon, double level) {
  CAPPLAN_RETURN_NOT_OK(CheckArgs(y, horizon, level));
  if (y.size() < 2) {
    return Status::InvalidArgument("DriftForecast: need >= 2 observations");
  }
  const double drift =
      (y.back() - y.front()) / static_cast<double>(y.size() - 1);
  CAPPLAN_ASSIGN_OR_RETURN(double sigma, NaiveSigma(y, 1));
  std::vector<double> mean(horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    mean[h] = y.back() + drift * static_cast<double>(h + 1);
  }
  return WithIntervals(std::move(mean), sigma, level,
                       /*grow_with_horizon=*/true);
}

Result<Forecast> MeanForecast(const std::vector<double>& y,
                              std::size_t horizon, double level) {
  CAPPLAN_RETURN_NOT_OK(CheckArgs(y, horizon, level));
  const double mu = math::Mean(y);
  const double sigma = math::StdDev(y);
  return WithIntervals(std::vector<double>(horizon, mu), sigma, level,
                       /*grow_with_horizon=*/false);
}

Result<double> NaiveScale(const std::vector<double>& y, std::size_t period) {
  if (period == 0 || y.size() <= period) {
    return Status::InvalidArgument("NaiveScale: series shorter than period");
  }
  double s = 0.0;
  std::size_t n = 0;
  for (std::size_t t = period; t < y.size(); ++t) {
    s += std::fabs(y[t] - y[t - period]);
    ++n;
  }
  if (n == 0 || s == 0.0) {
    return Status::ComputeError("NaiveScale: zero scale");
  }
  return s / static_cast<double>(n);
}

}  // namespace capplan::models
