#include "models/auto_arima.h"

#include <limits>
#include <set>
#include <string>

#include "tsa/stationarity.h"

namespace capplan::models {

namespace {

struct SearchState {
  double best_criterion = std::numeric_limits<double>::infinity();
  ArimaSpec best_spec;
  Result<ArimaModel> best_model = Status::NotFound("no model yet");
  std::set<std::string> visited;
  std::size_t evaluated = 0;
  ArimaFitCache* cache = nullptr;  // shared transforms across the search
};

// Fits `spec` if new; updates the incumbent when the criterion improves.
void Consider(const std::vector<double>& y, const ArimaSpec& spec,
              const AutoArimaOptions& options, SearchState* state) {
  if (!spec.IsValid()) return;
  const std::string key = spec.ToString();
  if (state->visited.count(key) > 0) return;
  state->visited.insert(key);
  ++state->evaluated;
  ArimaModel::Options fit_opts = options.fit;
  fit_opts.cache = state->cache;
  if (options.warm_start && state->best_model.ok()) {
    // Seed from the incumbent: neighbours differ by one order, so the
    // converged point is usually one contraction away.
    fit_opts.init_ar = state->best_model->ar_coefficients();
    fit_opts.init_ma = state->best_model->ma_coefficients();
  }
  auto model = ArimaModel::Fit(y, spec, fit_opts);
  if (!model.ok()) return;
  const double criterion =
      options.use_bic ? model->summary().bic : model->summary().aic;
  if (criterion < state->best_criterion) {
    state->best_criterion = criterion;
    state->best_spec = spec;
    state->best_model = std::move(model);
  }
}

}  // namespace

Result<AutoArimaOutcome> AutoArima(const std::vector<double>& y,
                                   const AutoArimaOptions& options) {
  if (y.size() < 30) {
    return Status::InvalidArgument("AutoArima: need at least 30 observations");
  }
  // Differencing orders from the unit-root machinery.
  int d = 0;
  if (auto rec = tsa::RecommendDifferencing(y, options.max_d); rec.ok()) {
    d = *rec;
  }
  int seasonal_d = 0;
  if (options.season >= 2) {
    if (auto rec = tsa::RecommendSeasonalDifferencing(y, options.season);
        rec.ok()) {
      seasonal_d = *rec;
    }
  }

  SearchState state;
  ArimaFitCache cache(y);
  state.cache = &cache;
  const bool seasonal = options.season >= 2;
  const std::size_t s = seasonal ? options.season : 0;
  const int D = seasonal ? seasonal_d : 0;
  const int P1 = seasonal ? 1 : 0;
  // Hyndman-Khandakar starting set.
  Consider(y, {2, d, 2, P1, D, P1, s}, options, &state);
  Consider(y, {0, d, 0, 0, D, 0, s}, options, &state);
  Consider(y, {1, d, 0, P1, D, 0, s}, options, &state);
  Consider(y, {0, d, 1, 0, D, P1, s}, options, &state);

  if (!state.best_model.ok()) {
    return Status::ComputeError("AutoArima: no starting model fitted");
  }

  // Hill climbing over +/-1 neighbourhoods.
  for (int step = 0; step < options.max_steps; ++step) {
    const ArimaSpec cur = state.best_spec;
    const double before = state.best_criterion;
    const int deltas[] = {-1, 1};
    for (int delta : deltas) {
      ArimaSpec n1 = cur;
      n1.p += delta;
      if (n1.p >= 0 && n1.p <= options.max_p) Consider(y, n1, options, &state);
      ArimaSpec n2 = cur;
      n2.q += delta;
      if (n2.q >= 0 && n2.q <= options.max_q) Consider(y, n2, options, &state);
      if (seasonal) {
        ArimaSpec n3 = cur;
        n3.P += delta;
        if (n3.P >= 0 && n3.P <= options.max_seasonal_p) {
          Consider(y, n3, options, &state);
        }
        ArimaSpec n4 = cur;
        n4.Q += delta;
        if (n4.Q >= 0 && n4.Q <= options.max_seasonal_q) {
          Consider(y, n4, options, &state);
        }
      }
    }
    // Joint p/q move, as in the reference algorithm.
    for (int dp : deltas) {
      for (int dq : deltas) {
        ArimaSpec n = cur;
        n.p += dp;
        n.q += dq;
        if (n.p >= 0 && n.p <= options.max_p && n.q >= 0 &&
            n.q <= options.max_q) {
          Consider(y, n, options, &state);
        }
      }
    }
    if (state.best_criterion >= before - 1e-9) break;  // local optimum
  }

  AutoArimaOutcome out;
  out.model = std::move(state.best_model).value();
  out.spec = state.best_spec;
  out.criterion = state.best_criterion;
  out.models_evaluated = state.evaluated;
  return out;
}

}  // namespace capplan::models
