#ifndef CAPPLAN_MODELS_TBATS_H_
#define CAPPLAN_MODELS_TBATS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "models/model.h"

namespace capplan::models {

// TBATS (Trigonometric seasonality, Box-Cox, ARMA errors, Trend, Seasonal
// components) — paper Section 4.3, Eq. 7-14, after De Livera, Hyndman &
// Snyder (2011).
//
// Linear innovations state space with states: level l_t, damped trend b_t,
// k_i trigonometric harmonic pairs per seasonal period m_i, and an ARMA(p,q)
// residual process d_t. All recursions run on the Box-Cox transformed
// series. The final configuration (Box-Cox on/off, trend on/off, damping
// on/off, ARMA errors on/off, harmonic counts) is chosen by AIC over the
// option lattice, exactly as the paper describes.

// One seasonal period with its harmonic count.
struct TbatsSeason {
  double period = 0.0;    // m_i, in observations (need not be integer)
  std::size_t harmonics = 1;  // k_i
};

// A fully specified TBATS configuration.
struct TbatsConfig {
  bool use_boxcox = false;
  bool use_trend = true;
  bool use_damping = false;
  int arma_p = 0;
  int arma_q = 0;
  std::vector<TbatsSeason> seasons;

  std::string ToString() const;
  std::size_t NumParams() const;
};

class TbatsModel {
 public:
  struct Options {
    // Option-lattice switches: each "try" flag allows both settings.
    bool try_boxcox = true;
    bool try_trend = true;
    bool try_damping = true;
    bool try_arma = true;      // considers ARMA in {(0,0),(1,0),(0,1),(1,1)}
    std::size_t max_harmonics = 5;
    int max_fit_iterations = 600;
  };

  // Fits a single fully-specified configuration.
  static Result<TbatsModel> FitConfig(const std::vector<double>& y,
                                      const TbatsConfig& config,
                                      int max_iterations = 600);

  // Explores the option lattice over the given seasonal periods (harmonic
  // counts chosen greedily per season) and returns the AIC-best model.
  static Result<TbatsModel> Fit(const std::vector<double>& y,
                                const std::vector<double>& periods,
                                const Options& options);
  static Result<TbatsModel> Fit(const std::vector<double>& y,
                                const std::vector<double>& periods) {
    return Fit(y, periods, Options());
  }

  Result<Forecast> Predict(std::size_t horizon, double level = 0.95) const;

  // Monotone process-wide count of innovations-filter passes (one per
  // objective evaluation inside a fit). The TBATS lattice bench gates its
  // pruning claim on this: read before/after and difference. Relaxed atomic;
  // never reset.
  static std::uint64_t TotalFilterRuns();

  const TbatsConfig& config() const { return config_; }
  const FitSummary& summary() const { return summary_; }
  double box_cox_lambda() const { return lambda_; }
  const std::vector<double>& residuals() const { return residuals_; }

 private:
  TbatsModel() = default;

  // Flat state vector layout: [level, trend?, {s_j, s*_j}xK per season,
  // d_{t-1..p}, e_{t-1..q}].
  struct StateLayout {
    bool has_trend = false;
    std::vector<std::size_t> season_offsets;  // offset of each season block
    std::vector<std::size_t> season_harmonics;
    std::vector<double> season_periods;
    std::size_t arma_d_offset = 0;  // start of d history block
    std::size_t arma_e_offset = 0;
    int p = 0, q = 0;
    std::size_t size = 0;
  };

  static StateLayout MakeLayout(const TbatsConfig& config);

  // One recursion step: given state and parameters, produce the one-step
  // prediction, then update the state with innovation e.
  struct Params {
    double alpha = 0.1;
    double beta = 0.01;
    double phi = 1.0;  // damping
    std::vector<double> gamma1, gamma2;  // per season
    std::vector<double> arma_phi, arma_theta;
  };

  static double PredictOneStep(const StateLayout& layout, const Params& params,
                               const std::vector<double>& state);
  static void UpdateState(const StateLayout& layout, const Params& params,
                          std::vector<double>* state, double innovation);

  // Runs the filter over z; returns SSE (skipping warmup) or +inf on
  // divergence. Optionally captures the final state and residuals.
  static double RunFilter(const std::vector<double>& z,
                          const StateLayout& layout, const Params& params,
                          std::size_t warmup, std::vector<double>* final_state,
                          std::vector<double>* residuals);

  TbatsConfig config_;
  StateLayout layout_;
  Params params_;
  double lambda_ = 1.0;  // Box-Cox lambda (1 = identity when disabled)
  std::vector<double> final_state_;
  std::vector<double> residuals_;
  std::size_t warmup_ = 0;
  FitSummary summary_;
};

}  // namespace capplan::models

#endif  // CAPPLAN_MODELS_TBATS_H_
