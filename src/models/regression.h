#ifndef CAPPLAN_MODELS_REGRESSION_H_
#define CAPPLAN_MODELS_REGRESSION_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "models/arima.h"
#include "models/arima_spec.h"
#include "models/model.h"
#include "tsa/fourier.h"

namespace capplan::models {

// Ordinary least squares fit of y on the given regressor columns.
struct OlsFit {
  std::vector<double> beta;      // [intercept?, columns...]
  std::vector<double> fitted;
  std::vector<double> residuals;
  double sse = 0.0;
  bool intercept = true;
};

// Columns must all have y.size() entries. Fails on rank deficiency.
Result<OlsFit> OlsRegression(const std::vector<std::vector<double>>& columns,
                             const std::vector<double>& y,
                             bool intercept = true);

// SARIMAX: regression with SARIMA errors (paper Section 4.2, Eq. 6, plus the
// Fourier terms of Section 4.4). The deterministic part is
//   y_t = beta0 + X_t * beta + fourier_t * gamma + eta_t
// with eta_t a SARIMA process. Fitted two-stage: OLS for the regression
// part, then ArimaModel on the OLS residuals. Forecast = regression part
// evaluated over the horizon + SARIMA forecast of eta; interval widths come
// from the SARIMA error process.
//
// Exogenous regressors model the paper's "shocks" (backups, batch jobs,
// surges): typically 0/1 pulse columns. The caller provides their future
// values over the forecast horizon (shocks are scheduled/recurring, so the
// schedule is projectable; see core::ShockDetector).
class SarimaxModel {
 public:
  // `exog` holds zero or more training-window columns (each y.size() long).
  // `fourier` adds trigonometric regressors for each seasonal period.
  // `fourier_cache`, when set, memoizes the Fourier design columns across
  // fits (tsa::FourierTermCache) — the columns depend only on the spec list
  // and window length, so batched refits over same-length windows share
  // them. Results are bitwise-identical with or without the cache.
  static Result<SarimaxModel> Fit(const std::vector<double>& y,
                                  const ArimaSpec& spec,
                                  const std::vector<std::vector<double>>& exog,
                                  const std::vector<tsa::FourierSpec>& fourier,
                                  const ArimaModel::Options& options = {},
                                  tsa::FourierTermCache* fourier_cache =
                                      nullptr);

  // The deterministic first stage of Fit on its own: assembles the regressor
  // block (exog columns, then Fourier terms, with an intercept) and runs the
  // OLS. Every candidate sharing (exog, fourier) has an identical OLS stage,
  // so a grid search computes this once per group and feeds it to
  // FitWithSharedOls.
  static Result<OlsFit> FitOls(const std::vector<double>& y,
                               const std::vector<std::vector<double>>& exog,
                               const std::vector<tsa::FourierSpec>& fourier,
                               tsa::FourierTermCache* fourier_cache = nullptr);

  // Second stage of Fit given a precomputed first stage: fits the SARIMA
  // error model on ols.residuals. `ols` must be FitOls's result for the same
  // (y, exog, fourier); `n_train` is y.size() and `n_exog` is exog.size().
  // Fit(y, spec, exog, fourier, o) is bitwise-equivalent to
  // FitWithSharedOls(y.size(), *FitOls(y, exog, fourier), exog.size(),
  // fourier, spec, o).
  static Result<SarimaxModel> FitWithSharedOls(
      std::size_t n_train, const OlsFit& ols, std::size_t n_exog,
      const std::vector<tsa::FourierSpec>& fourier, const ArimaSpec& spec,
      const ArimaModel::Options& options = {});

  // `exog_future` must contain the same number of columns as at fit time,
  // each `horizon` long. Fourier terms are extended automatically.
  Result<Forecast> Predict(std::size_t horizon,
                           const std::vector<std::vector<double>>& exog_future,
                           double level = 0.95) const;

  // Point forecasts only (identical to Predict(...).mean); see
  // ArimaModel::PredictMean.
  Result<std::vector<double>> PredictMean(
      std::size_t horizon,
      const std::vector<std::vector<double>>& exog_future) const;

  const ArimaModel& error_model() const { return error_model_; }
  const std::vector<double>& beta() const { return ols_.beta; }
  const FitSummary& summary() const { return summary_; }
  std::size_t n_exog() const { return n_exog_; }
  const std::vector<tsa::FourierSpec>& fourier_specs() const {
    return fourier_;
  }

 private:
  SarimaxModel() = default;

  std::size_t n_train_ = 0;
  std::size_t n_exog_ = 0;
  std::vector<tsa::FourierSpec> fourier_;
  OlsFit ols_;
  ArimaModel error_model_;
  FitSummary summary_;
};

}  // namespace capplan::models

#endif  // CAPPLAN_MODELS_REGRESSION_H_
