#include "models/kalman.h"

#include <algorithm>
#include <cmath>

#include "math/matrix.h"
#include "math/polynomial.h"

namespace capplan::models {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Solves the discrete Lyapunov equation P = T P T' + R R' for the
// stationary state covariance via vec(P) = (I - T (x) T)^{-1} vec(RR').
// Only used for small state dimensions (r <= 12 -> a 144x144 solve).
Result<std::vector<double>> StationaryStateCovariance(
    const std::vector<double>& phi, const std::vector<double>& rvec,
    std::size_t r) {
  const std::size_t r2 = r * r;
  // Dense T.
  math::Matrix t(r, r);
  for (std::size_t i = 0; i < r; ++i) {
    t(i, 0) = phi[i];
    if (i + 1 < r) t(i, i + 1) = 1.0;
  }
  // A = I - T (x) T  (Kronecker), b = vec(R R').
  math::Matrix a(r2, r2);
  std::vector<double> b(r2, 0.0);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      const std::size_t row = i * r + j;
      b[row] = rvec[i] * rvec[j];
      for (std::size_t k = 0; k < r; ++k) {
        for (std::size_t l = 0; l < r; ++l) {
          const std::size_t col = k * r + l;
          const double kron = t(i, k) * t(j, l);
          a(row, col) = (row == col ? 1.0 : 0.0) - kron;
        }
      }
    }
  }
  CAPPLAN_ASSIGN_OR_RETURN(math::Matrix a_inv, math::Inverse(a));
  return a_inv.Apply(b);
}

}  // namespace

Result<KalmanArmaResult> ArmaKalmanLikelihood(
    const std::vector<double>& w, const std::vector<double>& ar_full,
    const std::vector<double>& ma_full, double diffuse_kappa) {
  const std::size_t n = w.size();
  if (n == 0) {
    return Status::InvalidArgument("ArmaKalmanLikelihood: empty series");
  }
  const std::size_t p = ar_full.size();
  const std::size_t q = ma_full.size();
  const std::size_t r = std::max(p, q + 1);

  // phi_i (zero beyond p), R = (1, theta_1, ..., theta_{r-1}).
  std::vector<double> phi(r, 0.0);
  for (std::size_t i = 0; i < p; ++i) phi[i] = ar_full[i];
  std::vector<double> rvec(r, 0.0);
  rvec[0] = 1.0;
  for (std::size_t j = 0; j < q && j + 1 < r; ++j) rvec[j + 1] = ma_full[j];

  // State mean a (r) and covariance P (r x r, row-major). For small state
  // dimensions of a stationary process, initialize exactly from the
  // Lyapunov equation (true exact likelihood); otherwise use a diffuse
  // prior and drop the first r innovations from the concentrated
  // likelihood (the standard approximation).
  std::vector<double> a(r, 0.0);
  std::vector<double> pmat(r * r, 0.0);
  std::size_t diffuse_burn = 0;
  bool exact_init = false;
  if (r <= 12 && math::IsStationary(ar_full)) {
    auto p0 = StationaryStateCovariance(phi, rvec, r);
    if (p0.ok()) {
      pmat = *p0;
      exact_init = true;
    }
  }
  if (!exact_init) {
    for (std::size_t i = 0; i < r; ++i) pmat[i * r + i] = diffuse_kappa;
    diffuse_burn = std::min(n > r ? r : n - 1, r);
  }

  auto P = [&](std::size_t i, std::size_t j) -> double& {
    return pmat[i * r + j];
  };

  KalmanArmaResult out;
  out.innovations.resize(n);
  out.innovation_vars.resize(n);
  double sum_log_f = 0.0;
  double sum_v2_over_f = 0.0;

  std::vector<double> a_pred(r), p_col(r);
  std::vector<double> p_pred(r * r);
  for (std::size_t t = 0; t < n; ++t) {
    // Prediction step: a_pred = T a; P_pred = T P T' + R R'.
    for (std::size_t i = 0; i < r; ++i) {
      double v = phi[i] * a[0];
      if (i + 1 < r) v += a[i + 1];
      a_pred[i] = v;
    }
    // TP = T * P  (row i of TP = phi_i * row0(P) + row_{i+1}(P)).
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) {
        double v = phi[i] * P(0, j);
        if (i + 1 < r) v += P(i + 1, j);
        p_pred[i * r + j] = v;
      }
    }
    // P_pred = TP * T' + RR'.
    // (TP * T')_{ij} = phi_j * TP_{i0} + TP_{i,j+1}.
    std::vector<double> tmp(r * r);
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) {
        double v = phi[j] * p_pred[i * r + 0];
        if (j + 1 < r) v += p_pred[i * r + (j + 1)];
        tmp[i * r + j] = v + rvec[i] * rvec[j];
      }
    }
    p_pred.swap(tmp);

    // Innovation: v_t = y_t - Z a_pred = y_t - a_pred[0]; F = P_pred(0,0).
    const double v_t = w[t] - a_pred[0];
    const double f_t = p_pred[0];
    if (!(f_t > 0.0) || !std::isfinite(f_t)) {
      return Status::ComputeError(
          "ArmaKalmanLikelihood: non-positive innovation variance");
    }
    out.innovations[t] = v_t;
    out.innovation_vars[t] = f_t;
    if (t >= diffuse_burn) {
      sum_log_f += std::log(f_t);
      sum_v2_over_f += v_t * v_t / f_t;
    }

    // Update: K = P_pred Z' / F (first column of P_pred / F).
    for (std::size_t i = 0; i < r; ++i) p_col[i] = p_pred[i * r + 0];
    for (std::size_t i = 0; i < r; ++i) {
      a[i] = a_pred[i] + p_col[i] * v_t / f_t;
    }
    for (std::size_t i = 0; i < r; ++i) {
      for (std::size_t j = 0; j < r; ++j) {
        P(i, j) = p_pred[i * r + j] - p_col[i] * p_col[j] / f_t;
      }
    }
  }

  const std::size_t n_eff = n - diffuse_burn;
  if (n_eff == 0 || sum_v2_over_f <= 0.0) {
    return Status::ComputeError("ArmaKalmanLikelihood: degenerate likelihood");
  }
  out.sigma2 = sum_v2_over_f / static_cast<double>(n_eff);
  out.log_likelihood =
      -0.5 * static_cast<double>(n_eff) *
          (std::log(2.0 * kPi) + 1.0 + std::log(out.sigma2)) -
      0.5 * sum_log_f;
  return out;
}

std::vector<double> ArmaAutocovariances(const std::vector<double>& ar_full,
                                        const std::vector<double>& ma_full,
                                        std::size_t max_lag,
                                        std::size_t psi_terms) {
  const std::vector<double> psi =
      math::PsiWeights(ar_full, ma_full, psi_terms + max_lag);
  std::vector<double> gamma(max_lag + 1, 0.0);
  for (std::size_t k = 0; k <= max_lag; ++k) {
    double s = 0.0;
    for (std::size_t j = 0; j + k < psi.size(); ++j) {
      s += psi[j] * psi[j + k];
    }
    gamma[k] = s;
  }
  return gamma;
}

}  // namespace capplan::models
