#ifndef CAPPLAN_MODELS_AUTO_ARIMA_H_
#define CAPPLAN_MODELS_AUTO_ARIMA_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "models/arima.h"

namespace capplan::models {

// Stepwise automatic (S)ARIMA order selection in the spirit of
// Hyndman-Khandakar (the `auto.arima` algorithm): differencing orders from
// the unit-root tests, then a hill-climbing search over (p,q,P,Q)
// neighbourhoods ranked by AIC. This is the "tuned" alternative to the
// paper's exhaustive Section-6.3 grid — the ablation benches compare the
// two on accuracy and models evaluated.
struct AutoArimaOptions {
  std::size_t season = 0;  // seasonal period F; 0 = non-seasonal
  int max_p = 5;
  int max_q = 5;
  int max_seasonal_p = 2;
  int max_seasonal_q = 2;
  int max_d = 2;
  bool use_bic = false;  // rank by BIC instead of AIC
  int max_steps = 60;    // hill-climbing iterations cap
  // Seed each neighbour fit from the incumbent's converged coefficients
  // (the Sibyl-style warm start); differencing/innovation transforms are
  // always shared across the search via an ArimaFitCache.
  bool warm_start = true;
  ArimaModel::Options fit;
};

struct AutoArimaOutcome {
  ArimaModel model;
  ArimaSpec spec;
  double criterion = 0.0;            // AIC (or BIC) of the winner
  std::size_t models_evaluated = 0;  // fits attempted during the search
};

// Fails when no candidate can be fitted at all.
Result<AutoArimaOutcome> AutoArima(const std::vector<double>& y,
                                   const AutoArimaOptions& options);
inline Result<AutoArimaOutcome> AutoArima(const std::vector<double>& y) {
  return AutoArima(y, AutoArimaOptions());
}

}  // namespace capplan::models

#endif  // CAPPLAN_MODELS_AUTO_ARIMA_H_
