#ifndef CAPPLAN_MODELS_BASELINES_H_
#define CAPPLAN_MODELS_BASELINES_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "models/model.h"

namespace capplan::models {

// Naive reference forecasters (M-competition style). Any model family worth
// deploying must beat these; the benches report them as accuracy floors and
// the MASE metric scales errors by the seasonal-naive in-sample MAE.

// y_{n+h} = y_n.
Result<Forecast> NaiveForecast(const std::vector<double>& y,
                               std::size_t horizon, double level = 0.95);

// y_{n+h} = y_{n+h-m} (last observed value one season back).
Result<Forecast> SeasonalNaiveForecast(const std::vector<double>& y,
                                       std::size_t period,
                                       std::size_t horizon,
                                       double level = 0.95);

// Random walk with drift: y_{n+h} = y_n + h * (y_n - y_1) / (n - 1).
Result<Forecast> DriftForecast(const std::vector<double>& y,
                               std::size_t horizon, double level = 0.95);

// y_{n+h} = mean(y).
Result<Forecast> MeanForecast(const std::vector<double>& y,
                              std::size_t horizon, double level = 0.95);

// In-sample one-step MAE of the (seasonal) naive forecaster — the MASE
// denominator. period == 1 gives the plain naive scaling.
Result<double> NaiveScale(const std::vector<double>& y, std::size_t period);

}  // namespace capplan::models

#endif  // CAPPLAN_MODELS_BASELINES_H_
