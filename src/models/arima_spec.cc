#include "models/arima_spec.h"

#include <sstream>

namespace capplan::models {

std::string ArimaSpec::ToString() const {
  std::ostringstream os;
  os << "(" << p << "," << d << "," << q << ")";
  if (season > 0) {
    os << "(" << P << "," << D << "," << Q << "," << season << ")";
  }
  return os.str();
}

bool ArimaSpec::IsValid() const {
  if (p < 0 || d < 0 || q < 0 || P < 0 || D < 0 || Q < 0) return false;
  if (d + D > 3) return false;
  if (season == 0 && (P > 0 || D > 0 || Q > 0)) return false;
  if (season == 1) return false;
  return true;
}

}  // namespace capplan::models
