#include "models/arima_spec.h"

#include <cstdio>
#include <sstream>

namespace capplan::models {

std::string ArimaSpec::ToString() const {
  std::ostringstream os;
  os << "(" << p << "," << d << "," << q << ")";
  if (season > 0) {
    os << "(" << P << "," << D << "," << Q << "," << season << ")";
  }
  return os.str();
}

Result<ArimaSpec> ParseArimaSpec(const std::string& s) {
  ArimaSpec spec;
  unsigned long season = 0;
  const int got =
      std::sscanf(s.c_str(), "(%d,%d,%d)(%d,%d,%d,%lu)", &spec.p, &spec.d,
                  &spec.q, &spec.P, &spec.D, &spec.Q, &season);
  if (got == 7) {
    spec.season = static_cast<std::size_t>(season);
  } else if (got == 3) {
    spec.P = spec.D = spec.Q = 0;
    spec.season = 0;
  } else {
    return Status::InvalidArgument("ParseArimaSpec: not a spec string: " + s);
  }
  if (!spec.IsValid()) {
    return Status::InvalidArgument("ParseArimaSpec: invalid spec: " + s);
  }
  return spec;
}

bool ArimaSpec::IsValid() const {
  if (p < 0 || d < 0 || q < 0 || P < 0 || D < 0 || Q < 0) return false;
  if (d + D > 3) return false;
  if (season == 0 && (P > 0 || D > 0 || Q > 0)) return false;
  if (season == 1) return false;
  return true;
}

}  // namespace capplan::models
