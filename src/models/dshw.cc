#include "models/dshw.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/distributions.h"
#include "math/optimize.h"
#include "math/vec.h"
#include "tsa/metrics.h"

namespace capplan::models {

namespace {

double Squash(double u, double lo, double hi) {
  return lo + (hi - lo) / (1.0 + std::exp(-u));
}
double Unsquash(double v, double lo, double hi) {
  const double f = std::clamp((v - lo) / (hi - lo), 1e-6, 1.0 - 1e-6);
  return std::log(f / (1.0 - f));
}

}  // namespace

double DshwModel::RunRecursion(const std::vector<double>& y,
                               std::size_t period1, std::size_t period2,
                               double alpha, double beta, double gamma1,
                               double gamma2, double phi,
                               FinalState* final_state) {
  const std::size_t n = y.size();
  // Initial states from the first two long periods: level/trend from cycle
  // means, short seasonal from per-phase means of the detrended head,
  // long seasonal from what remains.
  double mean1 = 0.0, mean2 = 0.0;
  for (std::size_t i = 0; i < period2; ++i) mean1 += y[i];
  for (std::size_t i = period2; i < 2 * period2; ++i) mean2 += y[i];
  mean1 /= static_cast<double>(period2);
  mean2 /= static_cast<double>(period2);
  double level = mean1;
  double trend = (mean2 - mean1) / static_cast<double>(period2);

  std::vector<double> s1(period1, 0.0);
  std::vector<std::size_t> c1(period1, 0);
  for (std::size_t t = 0; t < 2 * period2; ++t) {
    const double base = mean1 + trend * (static_cast<double>(t) -
                                         0.5 * static_cast<double>(period2));
    s1[t % period1] += y[t] - base;
    ++c1[t % period1];
  }
  for (std::size_t p = 0; p < period1; ++p) {
    if (c1[p] > 0) s1[p] /= static_cast<double>(c1[p]);
  }
  std::vector<double> s2(period2, 0.0);
  std::vector<std::size_t> c2(period2, 0);
  for (std::size_t t = 0; t < 2 * period2; ++t) {
    const double base = mean1 + trend * (static_cast<double>(t) -
                                         0.5 * static_cast<double>(period2));
    s2[t % period2] += y[t] - base - s1[t % period1];
    ++c2[t % period2];
  }
  for (std::size_t p = 0; p < period2; ++p) {
    if (c2[p] > 0) s2[p] /= static_cast<double>(c2[p]);
  }

  double sse = 0.0;
  double prev_e = 0.0;
  // Warmup: skip the first long period in the SSE (initialization bias).
  const std::size_t warmup = period2;
  for (std::size_t t = 0; t < n; ++t) {
    const double yhat = level + trend + s1[t % period1] + s2[t % period2] +
                        phi * prev_e;
    const double e = y[t] - yhat;
    if (!std::isfinite(e) || std::fabs(e) > 1e12) {
      return std::numeric_limits<double>::infinity();
    }
    if (t >= warmup) sse += e * e;
    const double new_level = level + trend + alpha * e;
    trend = trend + beta * e;
    s1[t % period1] += gamma1 * e;
    s2[t % period2] += gamma2 * e;
    level = new_level;
    prev_e = e;
  }
  if (final_state != nullptr) {
    final_state->level = level;
    final_state->trend = trend;
    final_state->s1 = s1;
    final_state->s2 = s2;
    final_state->last_error = prev_e;
  }
  return sse;
}

Result<DshwModel> DshwModel::Fit(const std::vector<double>& y,
                                 std::size_t period1, std::size_t period2,
                                 const Options& options) {
  if (period1 < 2 || period2 <= period1 || period2 % period1 != 0) {
    return Status::InvalidArgument(
        "DshwModel: period2 must be a multiple of period1 (> period1)");
  }
  if (y.size() < 2 * period2 + period1) {
    return Status::InvalidArgument(
        "DshwModel: need at least two full long periods");
  }
  DshwModel m;
  m.period1_ = period1;
  m.period2_ = period2;
  double alpha = options.alpha, beta = options.beta, gamma1 = options.gamma1,
         gamma2 = options.gamma2, phi = options.ar1_adjustment ? options.phi
                                                               : 0.0;
  if (options.optimize) {
    std::vector<double> x0 = {
        Unsquash(std::clamp(alpha, 0.011, 0.98), 0.01, 0.99),
        Unsquash(std::clamp(beta, 0.0011, 0.48), 0.001, 0.5),
        Unsquash(std::clamp(gamma1, 0.0011, 0.98), 0.001, 0.99),
        Unsquash(std::clamp(gamma2, 0.0011, 0.98), 0.001, 0.99)};
    if (options.ar1_adjustment) {
      x0.push_back(Unsquash(std::clamp(phi, -0.94, 0.94), -0.95, 0.95));
    }
    auto decode = [&](const std::vector<double>& x, double* a, double* b,
                      double* g1, double* g2, double* p) {
      *a = Squash(x[0], 0.01, 0.99);
      *b = Squash(x[1], 0.001, 0.5);
      *g1 = Squash(x[2], 0.001, 0.99);
      *g2 = Squash(x[3], 0.001, 0.99);
      *p = options.ar1_adjustment ? Squash(x[4], -0.95, 0.95) : 0.0;
    };
    math::Objective obj = [&](const std::vector<double>& x) {
      double a, b, g1, g2, p;
      decode(x, &a, &b, &g1, &g2, &p);
      return RunRecursion(y, period1, period2, a, b, g1, g2, p, nullptr);
    };
    math::NelderMeadOptions nm;
    nm.max_iterations = 700;
    nm.initial_step = 0.7;
    auto outcome = math::NelderMead(obj, x0, nm);
    if (!outcome.ok()) return outcome.status();
    decode(outcome->x, &alpha, &beta, &gamma1, &gamma2, &phi);
  }
  m.alpha_ = alpha;
  m.beta_ = beta;
  m.gamma1_ = gamma1;
  m.gamma2_ = gamma2;
  m.phi_ = phi;
  const double sse = RunRecursion(y, period1, period2, alpha, beta, gamma1,
                                  gamma2, phi, &m.state_);
  if (!std::isfinite(sse)) {
    return Status::ComputeError("DshwModel: recursion diverged");
  }
  m.n_obs_ = y.size();
  const std::size_t n_eff = y.size() - period2;
  const std::size_t k = options.ar1_adjustment ? 5 : 4;
  m.summary_.sse = sse;
  m.summary_.sigma2 = sse / static_cast<double>(n_eff);
  m.summary_.n_params = k + 2;
  m.summary_.n_obs = n_eff;
  m.summary_.aic = tsa::AicFromSse(sse, n_eff, k + 2);
  m.summary_.bic = tsa::BicFromSse(sse, n_eff, k + 2);
  return m;
}

Result<Forecast> DshwModel::Predict(std::size_t horizon, double level) const {
  if (horizon == 0) {
    return Status::InvalidArgument("DshwModel::Predict: zero horizon");
  }
  if (level <= 0.0 || level >= 1.0) {
    return Status::InvalidArgument("DshwModel::Predict: level in (0,1)");
  }
  if (state_.s1.empty()) {
    return Status::FailedPrecondition("DshwModel::Predict: not fitted");
  }
  Forecast fc;
  fc.level = level;
  fc.mean.resize(horizon);
  fc.lower.resize(horizon);
  fc.upper.resize(horizon);
  const double z = math::NormalQuantile(0.5 * (1.0 + level));
  double var_accum = 1.0;
  double phi_pow = phi_;
  for (std::size_t h = 1; h <= horizon; ++h) {
    const std::size_t t = n_obs_ + h - 1;
    const double yhat = state_.level +
                        static_cast<double>(h) * state_.trend +
                        state_.s1[t % period1_] + state_.s2[t % period2_] +
                        phi_pow * state_.last_error;
    fc.mean[h - 1] = yhat;
    const double sd = std::sqrt(summary_.sigma2 * var_accum);
    fc.lower[h - 1] = yhat - z * sd;
    fc.upper[h - 1] = yhat + z * sd;
    // Class-1 variance recursion analogue: c_j = alpha + j*beta + seasonal
    // bumps when the same phase repeats.
    double c = alpha_ + static_cast<double>(h) * beta_;
    if (h % period1_ == 0) c += gamma1_;
    if (h % period2_ == 0) c += gamma2_;
    var_accum += c * c;
    phi_pow *= phi_;
  }
  return fc;
}

}  // namespace capplan::models
