#include "models/ets.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>
#include <sstream>

#include "math/distributions.h"
#include "math/optimize.h"
#include "math/vec.h"
#include "tsa/metrics.h"

namespace capplan::models {

std::string EtsSpec::ToString() const {
  auto trend_c = [&] {
    switch (trend) {
      case EtsTrend::kNone:
        return "N";
      case EtsTrend::kAdditive:
        return "A";
      case EtsTrend::kAdditiveDamped:
        return "Ad";
    }
    return "?";
  };
  auto seas_c = [&] {
    switch (seasonal) {
      case EtsSeasonal::kNone:
        return "N";
      case EtsSeasonal::kAdditive:
        return "A";
      case EtsSeasonal::kMultiplicative:
        return "M";
    }
    return "?";
  };
  std::ostringstream os;
  os << "ETS(A," << trend_c() << "," << seas_c() << ")";
  if (seasonal != EtsSeasonal::kNone) os << " m=" << period;
  return os.str();
}

bool EtsSpec::IsValid() const {
  if (seasonal != EtsSeasonal::kNone && period < 2) return false;
  return true;
}

std::size_t EtsSpec::NumParams() const {
  std::size_t k = 1;  // alpha
  if (trend != EtsTrend::kNone) ++k;
  if (trend == EtsTrend::kAdditiveDamped) ++k;
  if (seasonal != EtsSeasonal::kNone) ++k;
  return k;
}

EtsSpec SimpleExponentialSmoothing() { return EtsSpec{}; }

EtsSpec HoltLinearTrend(bool damped) {
  EtsSpec s;
  s.trend = damped ? EtsTrend::kAdditiveDamped : EtsTrend::kAdditive;
  return s;
}

EtsSpec HoltWinters(std::size_t period, bool multiplicative, bool damped) {
  EtsSpec s;
  s.trend = damped ? EtsTrend::kAdditiveDamped : EtsTrend::kAdditive;
  s.seasonal = multiplicative ? EtsSeasonal::kMultiplicative
                              : EtsSeasonal::kAdditive;
  s.period = period;
  return s;
}

namespace {

// Heuristic initial states (Hyndman & Athanasopoulos): level/trend from the
// first periods, seasonal indices from per-phase averages of the first two
// periods.
void InitialStates(const std::vector<double>& y, const EtsSpec& spec,
                   double* level, double* trend,
                   std::vector<double>* seasonal) {
  const std::size_t n = y.size();
  const std::size_t m = spec.seasonal != EtsSeasonal::kNone ? spec.period : 0;
  if (m >= 2 && n >= 2 * m) {
    double mean1 = 0.0, mean2 = 0.0;
    for (std::size_t i = 0; i < m; ++i) mean1 += y[i];
    for (std::size_t i = m; i < 2 * m; ++i) mean2 += y[i];
    mean1 /= static_cast<double>(m);
    mean2 /= static_cast<double>(m);
    *level = mean1;
    *trend = (mean2 - mean1) / static_cast<double>(m);
    seasonal->assign(m, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      const double base1 = mean1;
      const double base2 = mean2;
      if (spec.seasonal == EtsSeasonal::kAdditive) {
        (*seasonal)[i] = 0.5 * ((y[i] - base1) + (y[i + m] - base2));
      } else {
        const double r1 = base1 > 0.0 ? y[i] / base1 : 1.0;
        const double r2 = base2 > 0.0 ? y[i + m] / base2 : 1.0;
        (*seasonal)[i] = 0.5 * (r1 + r2);
      }
    }
    // Normalize indices.
    if (spec.seasonal == EtsSeasonal::kAdditive) {
      const double mu = math::Mean(*seasonal);
      for (double& s : *seasonal) s -= mu;
    } else {
      const double mu = math::Mean(*seasonal);
      if (mu > 0.0) {
        for (double& s : *seasonal) s /= mu;
      }
    }
  } else {
    *level = y[0];
    const std::size_t k = std::min<std::size_t>(n - 1, 8);
    *trend = k > 0 ? (y[k] - y[0]) / static_cast<double>(k) : 0.0;
    seasonal->clear();
  }
  if (spec.trend == EtsTrend::kNone) *trend = 0.0;
}

// Logistic map onto (lo, hi).
double Squash(double u, double lo, double hi) {
  return lo + (hi - lo) / (1.0 + std::exp(-u));
}
double Unsquash(double v, double lo, double hi) {
  const double f = std::clamp((v - lo) / (hi - lo), 1e-6, 1.0 - 1e-6);
  return std::log(f / (1.0 - f));
}

}  // namespace

double EtsModel::RunRecursion(const std::vector<double>& y,
                              const EtsSpec& spec, double alpha, double beta,
                              double gamma, double phi, double* final_level,
                              double* final_trend,
                              std::vector<double>* final_seasonal,
                              std::vector<double>* fitted,
                              std::vector<double>* residuals) {
  const std::size_t n = y.size();
  const bool has_trend = spec.trend != EtsTrend::kNone;
  const bool damped = spec.trend == EtsTrend::kAdditiveDamped;
  const bool has_seasonal = spec.seasonal != EtsSeasonal::kNone;
  const bool mult = spec.seasonal == EtsSeasonal::kMultiplicative;
  const std::size_t m = has_seasonal ? spec.period : 0;
  const double damp = damped ? phi : 1.0;

  double level, trend;
  std::vector<double> seas;
  InitialStates(y, spec, &level, &trend, &seas);
  if (has_seasonal && seas.empty()) {
    return std::numeric_limits<double>::infinity();
  }

  if (fitted) fitted->assign(n, 0.0);
  if (residuals) residuals->assign(n, 0.0);
  double sse = 0.0;
  for (std::size_t t = 0; t < n; ++t) {
    const double base = level + (has_trend ? damp * trend : 0.0);
    double s_t = 1.0;
    if (has_seasonal) s_t = seas[t % m];
    const double yhat = has_seasonal ? (mult ? base * s_t : base + s_t) : base;
    const double e = y[t] - yhat;
    if (fitted) (*fitted)[t] = yhat;
    if (residuals) (*residuals)[t] = e;
    sse += e * e;

    // State update (error-correction form).
    double adj = e;
    if (has_seasonal && mult) {
      if (std::fabs(s_t) < 1e-9) return std::numeric_limits<double>::infinity();
      adj = e / s_t;
    }
    const double new_level = base + alpha * adj;
    if (has_trend) trend = damp * trend + beta * adj;
    if (has_seasonal) {
      double s_adj;
      if (mult) {
        if (std::fabs(base) < 1e-9) {
          return std::numeric_limits<double>::infinity();
        }
        s_adj = gamma * e / base;
      } else {
        s_adj = gamma * e;
      }
      seas[t % m] = s_t + s_adj;
    }
    level = new_level;
    if (!std::isfinite(level) || !std::isfinite(trend)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  if (final_level) *final_level = level;
  if (final_trend) *final_trend = trend;
  if (final_seasonal) *final_seasonal = seas;
  return sse;
}

Result<EtsModel> EtsModel::Fit(const std::vector<double>& y,
                               const EtsSpec& spec, const Options& options) {
  if (!spec.IsValid()) {
    return Status::InvalidArgument("EtsModel: invalid spec");
  }
  const std::size_t min_n =
      spec.seasonal != EtsSeasonal::kNone ? 2 * spec.period + 2 : 5;
  if (y.size() < min_n) {
    return Status::InvalidArgument("EtsModel: series too short for spec " +
                                   spec.ToString());
  }
  EtsModel m;
  m.spec_ = spec;
  double alpha = options.alpha, beta = options.beta, gamma = options.gamma,
         phi = options.phi;

  const bool has_trend = spec.trend != EtsTrend::kNone;
  const bool damped = spec.trend == EtsTrend::kAdditiveDamped;
  const bool has_seasonal = spec.seasonal != EtsSeasonal::kNone;

  if (options.optimize) {
    // Unconstrained parameterization via logistic squashing.
    std::vector<double> x0;
    x0.push_back(Unsquash(alpha, 0.01, 0.99));
    if (has_trend) x0.push_back(Unsquash(beta, 0.001, 0.99));
    if (has_seasonal) x0.push_back(Unsquash(gamma, 0.001, 0.99));
    if (damped) x0.push_back(Unsquash(phi, 0.8, 0.995));
    auto decode = [&](const std::vector<double>& x, double* a, double* b,
                      double* g, double* p) {
      std::size_t i = 0;
      *a = Squash(x[i++], 0.01, 0.99);
      *b = has_trend ? Squash(x[i++], 0.001, 0.99) * (*a) : 0.0;
      *g = has_seasonal ? Squash(x[i++], 0.001, 0.99) * (1.0 - *a) : 0.0;
      *p = damped ? Squash(x[i++], 0.8, 0.995) : 1.0;
    };
    math::Objective obj = [&](const std::vector<double>& x) {
      double a, b, g, p;
      decode(x, &a, &b, &g, &p);
      return RunRecursion(y, spec, a, b, g, p, nullptr, nullptr, nullptr,
                          nullptr, nullptr);
    };
    math::NelderMeadOptions nm;
    nm.max_iterations = 800;
    nm.initial_step = 0.6;
    nm.restarts = 1;
    auto outcome = math::NelderMead(obj, x0, nm);
    if (!outcome.ok()) return outcome.status();
    decode(outcome->x, &alpha, &beta, &gamma, &phi);
  } else {
    if (!has_trend) beta = 0.0;
    if (!has_seasonal) gamma = 0.0;
    if (!damped) phi = 1.0;
  }

  m.alpha_ = alpha;
  m.beta_ = beta;
  m.gamma_ = gamma;
  m.phi_ = phi;
  const double sse =
      RunRecursion(y, spec, alpha, beta, gamma, phi, &m.level_, &m.trend_,
                   &m.seasonal_, &m.fitted_, &m.residuals_);
  if (!std::isfinite(sse)) {
    return Status::ComputeError("EtsModel: smoothing recursion diverged");
  }
  const std::size_t n = y.size();
  const std::size_t k = spec.NumParams() + 2;  // + initial level/trend
  m.summary_.sse = sse;
  m.summary_.sigma2 = sse / static_cast<double>(n);
  m.summary_.n_params = k;
  m.summary_.n_obs = n;
  m.summary_.aic = tsa::AicFromSse(sse, n, k);
  m.summary_.bic = tsa::BicFromSse(sse, n, k);
  return m;
}

Result<Forecast> EtsModel::PredictSimulated(std::size_t horizon, double level,
                                            std::size_t n_paths,
                                            std::uint64_t seed) const {
  if (horizon == 0 || n_paths < 100) {
    return Status::InvalidArgument(
        "EtsModel::PredictSimulated: need horizon >= 1 and >= 100 paths");
  }
  if (level <= 0.0 || level >= 1.0) {
    return Status::InvalidArgument(
        "EtsModel::PredictSimulated: level in (0,1)");
  }
  const bool has_trend = spec_.trend != EtsTrend::kNone;
  const bool damped = spec_.trend == EtsTrend::kAdditiveDamped;
  const bool has_seasonal = spec_.seasonal != EtsSeasonal::kNone;
  const bool mult = spec_.seasonal == EtsSeasonal::kMultiplicative;
  const std::size_t m = has_seasonal ? spec_.period : 0;
  const std::size_t n = summary_.n_obs;
  const double damp = damped ? phi_ : 1.0;
  const double sigma = std::sqrt(summary_.sigma2);

  std::mt19937_64 rng(seed);
  std::normal_distribution<double> innovation(0.0, sigma);
  // paths[h] collects the simulated values at step h across paths.
  std::vector<std::vector<double>> paths(
      horizon, std::vector<double>(n_paths, 0.0));
  for (std::size_t path = 0; path < n_paths; ++path) {
    double level_s = level_;
    double trend_s = trend_;
    std::vector<double> seas = seasonal_;
    for (std::size_t h = 0; h < horizon; ++h) {
      const double base = level_s + (has_trend ? damp * trend_s : 0.0);
      double s_t = 1.0;
      if (has_seasonal) s_t = seas[(n + h) % m];
      const double mean_h =
          has_seasonal ? (mult ? base * s_t : base + s_t) : base;
      const double e = innovation(rng);
      paths[h][path] = mean_h + e;
      // State update mirrors the filtering recursion.
      double adj = e;
      if (has_seasonal && mult) {
        if (std::fabs(s_t) < 1e-9) {
          adj = e;
        } else {
          adj = e / s_t;
        }
      }
      level_s = base + alpha_ * adj;
      if (has_trend) trend_s = damp * trend_s + beta_ * adj;
      if (has_seasonal) {
        const double s_adj =
            mult ? (std::fabs(base) < 1e-9 ? 0.0 : gamma_ * e / base)
                 : gamma_ * e;
        seas[(n + h) % m] = s_t + s_adj;
      }
    }
  }
  Forecast fc;
  fc.level = level;
  fc.mean.resize(horizon);
  fc.lower.resize(horizon);
  fc.upper.resize(horizon);
  const double lo_q = 0.5 * (1.0 - level);
  const double hi_q = 1.0 - lo_q;
  for (std::size_t h = 0; h < horizon; ++h) {
    fc.mean[h] = math::Mean(paths[h]);
    fc.lower[h] = math::Quantile(paths[h], lo_q);
    fc.upper[h] = math::Quantile(paths[h], hi_q);
  }
  return fc;
}

Result<Forecast> EtsModel::Predict(std::size_t horizon, double level) const {
  if (horizon == 0) {
    return Status::InvalidArgument("EtsModel::Predict: zero horizon");
  }
  if (level <= 0.0 || level >= 1.0) {
    return Status::InvalidArgument("EtsModel::Predict: level in (0,1)");
  }
  const bool has_trend = spec_.trend != EtsTrend::kNone;
  const bool damped = spec_.trend == EtsTrend::kAdditiveDamped;
  const bool has_seasonal = spec_.seasonal != EtsSeasonal::kNone;
  const bool mult = spec_.seasonal == EtsSeasonal::kMultiplicative;
  const std::size_t m = has_seasonal ? spec_.period : 0;
  const std::size_t n = summary_.n_obs;
  const double damp = damped ? phi_ : 1.0;

  Forecast fc;
  fc.level = level;
  fc.mean.resize(horizon);
  fc.lower.resize(horizon);
  fc.upper.resize(horizon);
  const double z = math::NormalQuantile(0.5 * (1.0 + level));

  double damp_sum = 0.0;
  double damp_pow = 1.0;
  double var_accum = 1.0;  // c_0^2 = 1
  for (std::size_t h = 1; h <= horizon; ++h) {
    damp_sum += damp_pow * damp;  // phi + phi^2 + ... + phi^h (phi=1 -> h)
    damp_pow *= damp;
    double base = level_ + (has_trend ? damp_sum * trend_ : 0.0);
    double yhat = base;
    if (has_seasonal) {
      // Phase of forecast step h: the recursion left seasonal_[p] holding
      // the most recent index for phase p = (t mod m).
      const std::size_t phase = (n + h - 1) % m;
      yhat = mult ? base * seasonal_[phase] : base + seasonal_[phase];
    }
    fc.mean[h - 1] = yhat;
    const double sd = std::sqrt(summary_.sigma2 * var_accum);
    fc.lower[h - 1] = yhat - z * sd;
    fc.upper[h - 1] = yhat + z * sd;
    // Forecast-variance recursion (Hyndman et al. class-1 approximation):
    // c_j = alpha + beta*(phi+..+phi^j) + gamma*I(j mod m == 0).
    double c = alpha_;
    if (has_trend) c += beta_ * damp_sum;
    if (has_seasonal && h % m == 0) c += gamma_;
    var_accum += c * c;
  }
  return fc;
}

}  // namespace capplan::models
