#ifndef CAPPLAN_MODELS_DSHW_H_
#define CAPPLAN_MODELS_DSHW_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "models/model.h"

namespace capplan::models {

// Double-seasonal Holt-Winters (Taylor 2003): additive exponential
// smoothing with two interacting seasonal cycles (e.g. the daily 24-hour
// and weekly 168-hour patterns of paper challenge C3) plus an optional
// AR(1) residual adjustment. This extends the paper's HES branch to the
// multiple-seasonality workloads that otherwise require SARIMAX+Fourier.
//
//   y_hat_t = l_{t-1} + b_{t-1} + s1_{t-m1} + s2_{t-m2} (+ phi * e_{t-1})
//   l_t  = l_{t-1} + b_{t-1} + alpha * e_t
//   b_t  = b_{t-1} + beta * e_t
//   s1_t = s1_{t-m1} + gamma1 * e_t
//   s2_t = s2_{t-m2} + gamma2 * e_t
class DshwModel {
 public:
  struct Options {
    bool optimize = true;      // tune smoothing parameters by one-step SSE
    bool ar1_adjustment = true;  // Taylor's residual autocorrelation term
    double alpha = 0.1;
    double beta = 0.01;
    double gamma1 = 0.1;
    double gamma2 = 0.1;
    double phi = 0.0;          // AR(1) residual coefficient
  };

  DshwModel() = default;

  // period2 must be an integer multiple of period1 (24 and 168 in the
  // canonical hourly case); needs at least two full long periods of data.
  static Result<DshwModel> Fit(const std::vector<double>& y,
                               std::size_t period1, std::size_t period2,
                               const Options& options);
  static Result<DshwModel> Fit(const std::vector<double>& y,
                               std::size_t period1, std::size_t period2) {
    return Fit(y, period1, period2, Options());
  }

  Result<Forecast> Predict(std::size_t horizon, double level = 0.95) const;

  const FitSummary& summary() const { return summary_; }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }
  double gamma1() const { return gamma1_; }
  double gamma2() const { return gamma2_; }
  double phi() const { return phi_; }
  std::size_t period1() const { return period1_; }
  std::size_t period2() const { return period2_; }

 private:
  // Runs the recursion; returns SSE (inf on divergence) and optionally the
  // final states.
  struct FinalState {
    double level = 0.0;
    double trend = 0.0;
    std::vector<double> s1, s2;
    double last_error = 0.0;
  };
  static double RunRecursion(const std::vector<double>& y,
                             std::size_t period1, std::size_t period2,
                             double alpha, double beta, double gamma1,
                             double gamma2, double phi, FinalState* final);

  std::size_t period1_ = 24, period2_ = 168;
  double alpha_ = 0.1, beta_ = 0.01, gamma1_ = 0.1, gamma2_ = 0.1,
         phi_ = 0.0;
  FinalState state_;
  std::size_t n_obs_ = 0;
  FitSummary summary_;
};

}  // namespace capplan::models

#endif  // CAPPLAN_MODELS_DSHW_H_
