#include "models/arima.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "math/distributions.h"
#include "math/matrix.h"
#include "math/optimize.h"
#include "math/polynomial.h"
#include "math/vec.h"
#include "models/kalman.h"
#include "tsa/difference.h"
#include "tsa/metrics.h"

namespace capplan::models {

namespace {

// Union of ordinary lags 1..order and seasonal lags s, 2s, .., S*order.
std::vector<std::size_t> BuildLagSet(int order, int seasonal_order,
                                     std::size_t season) {
  std::set<std::size_t> lags;
  for (int i = 1; i <= order; ++i) lags.insert(static_cast<std::size_t>(i));
  for (int j = 1; j <= seasonal_order; ++j) {
    lags.insert(static_cast<std::size_t>(j) * season);
  }
  return {lags.begin(), lags.end()};
}

std::size_t MaxLag(const std::vector<std::size_t>& lags) {
  return lags.empty() ? 0 : lags.back();
}

// Scatters sparse per-lag coefficients into a dense lag vector.
std::vector<double> Densify(const std::vector<std::size_t>& lags,
                            const std::vector<double>& coef) {
  std::vector<double> full(MaxLag(lags), 0.0);
  for (std::size_t i = 0; i < lags.size(); ++i) {
    full[lags[i] - 1] = coef[i];
  }
  return full;
}

// MA invertibility check: theta(B) = 1 + t1 B + ... is invertible iff the
// "AR" process with phi_i = -theta_i is stationary.
bool IsInvertible(const std::vector<double>& ma_full) {
  std::vector<double> as_ar(ma_full.size());
  for (std::size_t i = 0; i < ma_full.size(); ++i) as_ar[i] = -ma_full[i];
  return math::IsStationary(as_ar);
}

// Scales coefficients toward zero until the region test passes. Keeps grid
// evaluation robust when Hannan-Rissanen lands slightly outside the region.
template <typename RegionTest>
bool ShrinkIntoRegion(std::vector<double>& coef, const RegionTest& ok) {
  for (int iter = 0; iter < 200 && !ok(coef); ++iter) {
    for (double& c : coef) c *= 0.97;
  }
  return ok(coef);
}

double SumSquares(const std::vector<double>& v, std::size_t skip) {
  double s = 0.0;
  for (std::size_t i = skip; i < v.size(); ++i) s += v[i] * v[i];
  return s;
}

// Preliminary innovations of the Hannan-Rissanen first stage: residuals of a
// long autoregression of order `m_long` on `w` (zero over the conditioning
// prefix). Shared between the uncached fit path and ArimaFitCache.
Result<std::vector<double>> LongArInnovations(const std::vector<double>& w,
                                              std::size_t m_long) {
  const std::size_t n = w.size();
  if (m_long == 0 || n <= m_long) {
    return Status::InvalidArgument(
        "ArimaModel: series too short for the long autoregression");
  }
  math::Matrix a_long(n - m_long, m_long);
  std::vector<double> b_long(n - m_long);
  for (std::size_t t = m_long; t < n; ++t) {
    b_long[t - m_long] = w[t];
    for (std::size_t l = 1; l <= m_long; ++l) {
      a_long(t - m_long, l - 1) = w[t - l];
    }
  }
  auto phi_long = math::SolveLeastSquares(a_long, b_long);
  if (!phi_long.ok()) return phi_long.status();
  std::vector<double> innov(n, 0.0);
  for (std::size_t t = m_long; t < n; ++t) {
    double pred = 0.0;
    for (std::size_t l = 1; l <= m_long; ++l) {
      pred += (*phi_long)[l - 1] * w[t - l];
    }
    innov[t] = w[t] - pred;
  }
  return innov;
}

}  // namespace

const ArimaFitCache::Working& ArimaFitCache::GetWorking(int d, int D,
                                                        std::size_t season,
                                                        bool demean) {
  WorkingEntry* entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry = &working_[WorkingKey{d, D, season, demean}];
  }
  std::call_once(entry->once, [&] {
    Working wk;
    wk.w = tsa::DifferenceMany(y_, d, D, season);
    if (demean && !wk.w.empty()) {
      wk.mean = math::Mean(wk.w);
      for (double& v : wk.w) v -= wk.mean;
    }
    entry->value = std::move(wk);
  });
  return entry->value;
}

const ArimaFitCache::Innovations& ArimaFitCache::GetInnovations(
    int d, int D, std::size_t season, bool demean, std::size_t m_long) {
  InnovEntry* entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    entry = &innovations_[InnovKey{d, D, season, demean, m_long}];
  }
  std::call_once(entry->once, [&] {
    const Working& wk = GetWorking(d, D, season, demean);
    auto innov = LongArInnovations(wk.w, m_long);
    if (innov.ok()) {
      entry->value.e = std::move(*innov);
    } else {
      entry->value.status = innov.status();
    }
  });
  return entry->value;
}

std::vector<double> ComputeCssResiduals(const std::vector<double>& w,
                                        const std::vector<double>& ar_full,
                                        const std::vector<double>& ma_full) {
  const std::size_t n = w.size();
  const std::size_t start = std::max(ar_full.size(), ma_full.size());
  // Seasonal specs are dense-by-lag with mostly zero entries (e.g. AR lags
  // {1, 24} in a 24-long vector); iterating only the nonzero lags keeps the
  // accumulation order — and hence the result, bitwise — while cutting the
  // inner loop from max-lag to p+q+P+Q terms. This loop dominates the
  // Nelder-Mead refinement objective, so the candidate grid feels it.
  std::vector<std::size_t> ar_lags;
  std::vector<std::size_t> ma_lags;
  for (std::size_t l = 1; l <= ar_full.size(); ++l) {
    if (ar_full[l - 1] != 0.0) ar_lags.push_back(l);
  }
  for (std::size_t l = 1; l <= ma_full.size(); ++l) {
    if (ma_full[l - 1] != 0.0) ma_lags.push_back(l);
  }
  std::vector<double> a(n, 0.0);
  for (std::size_t t = start; t < n; ++t) {
    double pred = 0.0;
    for (std::size_t l : ar_lags) pred += ar_full[l - 1] * w[t - l];
    for (std::size_t l : ma_lags) pred += ma_full[l - 1] * a[t - l];
    a[t] = w[t] - pred;
  }
  return a;
}

Result<ArimaModel> ArimaModel::Fit(const std::vector<double>& y,
                                   const ArimaSpec& spec,
                                   const Options& options) {
  if (!spec.IsValid()) {
    return Status::InvalidArgument("ArimaModel: invalid spec " +
                                   spec.ToString());
  }
  ArimaModel m;
  m.spec_ = spec;
  m.options_ = options;
  m.train_ = y;

  // 1. Difference (through the shared cache when one is attached).
  const bool demean = spec.d + spec.D == 0 && options.include_mean;
  ArimaFitCache* cache = options.cache;
  // The O(n) identity check is noise next to the fit and protects against a
  // cache built over a different series (e.g. raw y vs OLS residuals).
  if (cache != nullptr && cache->y() != y) cache = nullptr;
  std::vector<double> w;
  if (cache != nullptr) {
    const ArimaFitCache::Working& wk =
        cache->GetWorking(spec.d, spec.D, spec.season, demean);
    w = wk.w;
    m.mean_ = wk.mean;
  } else {
    w = tsa::DifferenceMany(y, spec.d, spec.D, spec.season);
  }
  const std::vector<std::size_t> ar_lags =
      BuildLagSet(spec.p, spec.P, spec.season);
  const std::vector<std::size_t> ma_lags =
      BuildLagSet(spec.q, spec.Q, spec.season);
  const std::size_t max_ar = MaxLag(ar_lags);
  const std::size_t max_ma = MaxLag(ma_lags);
  const std::size_t need =
      std::max<std::size_t>(20, max_ar + max_ma + ar_lags.size() +
                                    ma_lags.size() + 5);
  if (w.size() < need) {
    return Status::InvalidArgument("ArimaModel: series too short for spec " +
                                   spec.ToString());
  }
  if (cache == nullptr && demean) {
    m.mean_ = math::Mean(w);
    for (double& v : w) v -= m.mean_;
  }
  m.w_ = w;
  const std::size_t n = w.size();

  // 2. Hannan-Rissanen estimation.
  std::vector<double> ar_coef(ar_lags.size(), 0.0);
  std::vector<double> ma_coef(ma_lags.size(), 0.0);
  if (!ar_lags.empty() || !ma_lags.empty()) {
    std::vector<double> innov_local;
    const std::vector<double>* innov = nullptr;
    if (!ma_lags.empty()) {
      // Long autoregression for preliminary innovations; across a grid the
      // distinct (d, D, m_long) combinations are few, so the cache turns the
      // most expensive least-squares solve of the fit into a lookup.
      const std::size_t m_long = std::min<std::size_t>(
          std::max<std::size_t>(20, max_ar + max_ma), n / 4);
      if (cache != nullptr) {
        const ArimaFitCache::Innovations& entry = cache->GetInnovations(
            spec.d, spec.D, spec.season, demean, m_long);
        if (!entry.status.ok()) return entry.status;
        innov = &entry.e;
      } else {
        auto computed = LongArInnovations(w, m_long);
        if (!computed.ok()) return computed.status();
        innov_local = std::move(*computed);
        innov = &innov_local;
      }
    }
    // Main regression: w_t on AR lags of w and MA lags of innovations.
    const std::size_t start = std::max(max_ar, max_ma);
    const std::size_t rows = n - start;
    const std::size_t cols = ar_lags.size() + ma_lags.size();
    if (rows <= cols + 2) {
      return Status::InvalidArgument(
          "ArimaModel: too few observations for regression");
    }
    math::Matrix a(rows, cols);
    std::vector<double> b(rows);
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t t = start + r;
      b[r] = w[t];
      std::size_t c = 0;
      for (std::size_t lag : ar_lags) a(r, c++) = w[t - lag];
      for (std::size_t lag : ma_lags) a(r, c++) = (*innov)[t - lag];
    }
    auto beta = math::SolveLeastSquares(a, b);
    if (!beta.ok()) return beta.status();
    for (std::size_t i = 0; i < ar_lags.size(); ++i) ar_coef[i] = (*beta)[i];
    for (std::size_t i = 0; i < ma_lags.size(); ++i) {
      ma_coef[i] = (*beta)[ar_lags.size() + i];
    }
  }

  m.ar_full_ = Densify(ar_lags, ar_coef);
  m.ma_full_ = Densify(ma_lags, ma_coef);

  // Project into the stationary/invertible region if needed.
  if (!ShrinkIntoRegion(m.ar_full_, [](const std::vector<double>& c) {
        return math::IsStationary(c);
      })) {
    return Status::ComputeError("ArimaModel: could not stabilize AR part");
  }
  if (!ShrinkIntoRegion(m.ma_full_, IsInvertible)) {
    return Status::ComputeError("ArimaModel: could not stabilize MA part");
  }

  // 3. Optional CSS refinement by Nelder-Mead over the sparse coefficients.
  const std::size_t n_coef = ar_lags.size() + ma_lags.size();
  if (options.refine && n_coef > 0 && n_coef <= options.max_refine_params) {
    auto pack = [&](const std::vector<double>& af,
                    const std::vector<double>& mf) {
      std::vector<double> x;
      x.reserve(n_coef);
      for (std::size_t lag : ar_lags) x.push_back(af[lag - 1]);
      for (std::size_t lag : ma_lags) x.push_back(mf[lag - 1]);
      return x;
    };
    auto unpack = [&](const std::vector<double>& x, std::vector<double>& af,
                      std::vector<double>& mf) {
      af.assign(MaxLag(ar_lags), 0.0);
      mf.assign(MaxLag(ma_lags), 0.0);
      std::size_t i = 0;
      for (std::size_t lag : ar_lags) af[lag - 1] = x[i++];
      for (std::size_t lag : ma_lags) mf[lag - 1] = x[i++];
    };
    const std::size_t skip = std::max(max_ar, max_ma);
    // Refinement objective: CSS (sum of squared conditional residuals) or
    // exact negative log-likelihood from the Kalman filter. Exact MLE is
    // only reliable with the exact stationary state initialization, which
    // is limited to small state dimensions (r = max(p, q+1) <= 12); larger
    // seasonal models fall back to CSS.
    const bool use_mle =
        options.method == Method::kMle &&
        std::max(m.ar_full_.size(), m.ma_full_.size() + 1) <= 12;
    math::Objective objective = [&](const std::vector<double>& x) {
      std::vector<double> af, mf;
      unpack(x, af, mf);
      if (!math::IsStationary(af) || !IsInvertible(mf)) {
        return std::numeric_limits<double>::infinity();
      }
      if (use_mle) {
        auto kl = ArmaKalmanLikelihood(w, af, mf);
        if (!kl.ok()) return std::numeric_limits<double>::infinity();
        return -kl->log_likelihood;
      }
      const std::vector<double> res = ComputeCssResiduals(w, af, mf);
      return SumSquares(res, skip);
    };
    math::NelderMeadOptions nm;
    nm.max_iterations = 600;
    nm.initial_step = 0.05;
    if (!options.init_ar.empty() || !options.init_ma.empty()) {
      // Warm start: inject the neighbour's converged point as a simplex
      // vertex (lags the neighbour lacks start at zero).
      std::vector<double> seed;
      seed.reserve(n_coef);
      for (std::size_t lag : ar_lags) {
        seed.push_back(lag <= options.init_ar.size() ? options.init_ar[lag - 1]
                                                     : 0.0);
      }
      for (std::size_t lag : ma_lags) {
        seed.push_back(lag <= options.init_ma.size() ? options.init_ma[lag - 1]
                                                     : 0.0);
      }
      std::vector<double> af, mf;
      unpack(seed, af, mf);
      if (math::IsStationary(af) && IsInvertible(mf)) {
        nm.seed_points.push_back(std::move(seed));
        // With a near-converged vertex in the simplex, chasing the absolute
        // tolerances only burns iterations collapsing the simplex; stop once
        // the spread is negligible relative to the CSS value.
        nm.f_tolerance_relative = 1e-8;
      }
    }
    const std::vector<double> start = pack(m.ar_full_, m.ma_full_);
    auto outcome = math::NelderMead(objective, start, nm);
    if (outcome.ok()) {
      std::vector<double> af, mf;
      unpack(outcome->x, af, mf);
      const double current = objective(start);
      if (outcome->fx < current && math::IsStationary(af) &&
          IsInvertible(mf)) {
        m.ar_full_ = af;
        m.ma_full_ = mf;
      }
    }
  }

  // 4. Residuals and summary.
  m.residuals_ = ComputeCssResiduals(w, m.ar_full_, m.ma_full_);
  const std::size_t skip = std::max(max_ar, max_ma);
  const std::size_t n_eff = n - skip;
  const double sse = SumSquares(m.residuals_, skip);
  const std::size_t k =
      n_coef + ((spec.d + spec.D == 0 && options.include_mean) ? 1 : 0) + 1;
  m.summary_.sse = sse;
  m.summary_.sigma2 = sse / static_cast<double>(n_eff);
  m.summary_.n_params = k;
  m.summary_.n_obs = n_eff;
  m.summary_.aic = tsa::AicFromSse(sse, n_eff, k);
  m.summary_.bic = tsa::BicFromSse(sse, n_eff, k);
  return m;
}

Result<std::vector<double>> ArimaModel::PredictMean(
    std::size_t horizon) const {
  if (horizon == 0) {
    return Status::InvalidArgument("ArimaModel::Predict: zero horizon");
  }
  const std::size_t n = w_.size();
  // Point forecasts on the differenced (demeaned) scale.
  std::vector<double> extended = w_;  // values, then appended forecasts
  extended.reserve(n + horizon);
  for (std::size_t h = 0; h < horizon; ++h) {
    const std::size_t t = n + h;
    double pred = 0.0;
    for (std::size_t l = 1; l <= ar_full_.size(); ++l) {
      if (ar_full_[l - 1] == 0.0 || t < l) continue;
      pred += ar_full_[l - 1] * extended[t - l];
    }
    for (std::size_t l = 1; l <= ma_full_.size(); ++l) {
      if (ma_full_[l - 1] == 0.0 || t < l) continue;
      const std::size_t idx = t - l;
      if (idx < n) pred += ma_full_[l - 1] * residuals_[idx];
      // Future innovations have expectation zero.
    }
    extended.push_back(pred);
  }
  std::vector<double> w_forecast(extended.begin() +
                                     static_cast<std::ptrdiff_t>(n),
                                 extended.end());
  for (double& v : w_forecast) v += mean_;

  // Integrate back to the original scale.
  return tsa::IntegrateForecast(train_, w_forecast, spec_.d, spec_.D,
                                spec_.season);
}

Result<Forecast> ArimaModel::Predict(std::size_t horizon,
                                     double level) const {
  if (level <= 0.0 || level >= 1.0) {
    return Status::InvalidArgument("ArimaModel::Predict: level in (0,1)");
  }
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<double> mean_forecast,
                           PredictMean(horizon));

  // Forecast error variance via psi-weights of the integrated process:
  // phi*(B) = phi(B) * (1-B)^d * (1-B^s)^D.
  const std::vector<double> phi_poly =
      math::PolyMultiply(math::ArPolynomial(ar_full_),
                         math::DifferencePolynomial(
                             spec_.d, spec_.D, spec_.season));
  const std::vector<double> phi_star =
      math::ArCoefficientsFromPolynomial(phi_poly);
  const std::vector<double> psi =
      math::PsiWeights(phi_star, ma_full_, horizon);
  const double z = math::NormalQuantile(0.5 * (1.0 + level));

  Forecast fc;
  fc.level = level;
  fc.mean = mean_forecast;
  fc.lower.resize(horizon);
  fc.upper.resize(horizon);
  double var = 0.0;
  for (std::size_t h = 0; h < horizon; ++h) {
    var += psi[h] * psi[h];
    const double half = z * std::sqrt(summary_.sigma2 * var);
    fc.lower[h] = mean_forecast[h] - half;
    fc.upper[h] = mean_forecast[h] + half;
  }
  return fc;
}

std::vector<double> ArimaModel::FittedValues() const {
  // Reconstruct one-step fitted values on the original scale:
  // fitted = observed - residual, aligned to the tail covered by the
  // differencing + CSS conditioning.
  const std::size_t offset = train_.size() - w_.size();
  std::vector<double> fitted = train_;
  const std::size_t skip = std::max(ar_full_.size(), ma_full_.size());
  for (std::size_t t = skip; t < w_.size(); ++t) {
    fitted[offset + t] = train_[offset + t] - residuals_[t];
  }
  return fitted;
}

}  // namespace capplan::models
