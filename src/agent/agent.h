#ifndef CAPPLAN_AGENT_AGENT_H_
#define CAPPLAN_AGENT_AGENT_H_

#include <cstdint>

#include "common/result.h"
#include "tsa/timeseries.h"
#include "workload/cluster.h"

namespace capplan::agent {

// Models agent unreliability: "It is possible that the agent may have been
// at fault and may not have executed or polled the value ... due to
// maintenance cycles or faults" (paper Section 5.1). Dropped polls become
// NaN samples in the raw trace.
struct FaultModel {
  // Independent probability that any single poll is lost.
  double drop_probability = 0.0;
  // Optional recurring maintenance window during which every poll is lost.
  std::int64_t maintenance_start_epoch = 0;
  std::int64_t maintenance_period_seconds = 0;  // 0 = no maintenance window
  std::int64_t maintenance_duration_seconds = 0;
  std::uint64_t seed = 1;

  bool IsDropped(int instance, std::int64_t epoch) const;
};

// The polling agent: executes against the (simulated) database host every
// `poll_seconds` and reports metric values. This is the paper's OEM-style
// agent feeding the central repository.
class MonitoringAgent {
 public:
  MonitoringAgent(const workload::ClusterSimulator* cluster,
                  FaultModel faults = {}, std::int64_t poll_seconds = 15 * 60)
      : cluster_(cluster), faults_(faults), poll_seconds_(poll_seconds) {}

  // Collects `n_polls` samples of `metric` from `instance` starting at
  // `start_epoch`. Missing polls are NaN.
  Result<tsa::TimeSeries> Collect(int instance, workload::Metric metric,
                                  std::int64_t start_epoch,
                                  std::size_t n_polls) const;

  // Convenience: collects `days` days of quarter-hourly samples starting at
  // the cluster's start epoch.
  Result<tsa::TimeSeries> CollectDays(int instance, workload::Metric metric,
                                      int days) const;

  std::int64_t poll_seconds() const { return poll_seconds_; }

 private:
  const workload::ClusterSimulator* cluster_;  // not owned
  FaultModel faults_;
  std::int64_t poll_seconds_;
};

}  // namespace capplan::agent

#endif  // CAPPLAN_AGENT_AGENT_H_
