#include "agent/agent.h"

#include <cmath>
#include <string>
#include <vector>

#include "common/fault.h"

namespace capplan::agent {

namespace {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

bool FaultModel::IsDropped(int instance, std::int64_t epoch) const {
  if (maintenance_period_seconds > 0 && epoch >= maintenance_start_epoch) {
    const std::int64_t off =
        (epoch - maintenance_start_epoch) % maintenance_period_seconds;
    if (off < maintenance_duration_seconds) return true;
  }
  if (drop_probability <= 0.0) return false;
  const std::uint64_t h =
      Mix64(seed ^ Mix64(static_cast<std::uint64_t>(epoch)) ^
            (static_cast<std::uint64_t>(instance) * 0x100000001b3ULL));
  const double u =
      (static_cast<double>(h >> 11) + 0.5) / 9007199254740992.0;
  return u < drop_probability;
}

Result<tsa::TimeSeries> MonitoringAgent::Collect(int instance,
                                                 workload::Metric metric,
                                                 std::int64_t start_epoch,
                                                 std::size_t n_polls) const {
  if (cluster_ == nullptr) {
    return Status::FailedPrecondition("MonitoringAgent: no cluster attached");
  }
  if (instance < 0 || instance >= cluster_->n_instances()) {
    return Status::InvalidArgument("MonitoringAgent: bad instance index");
  }
  if (poll_seconds_ != 15 * 60 && poll_seconds_ != 3600) {
    return Status::InvalidArgument(
        "MonitoringAgent: poll interval must be 15min or 1h");
  }
  CAPPLAN_RETURN_NOT_OK(FaultHit("agent.collect"));
  std::vector<double> values;
  values.reserve(n_polls);
  for (std::size_t i = 0; i < n_polls; ++i) {
    const std::int64_t t =
        start_epoch + static_cast<std::int64_t>(i) * poll_seconds_;
    if (faults_.IsDropped(instance, t)) {
      values.push_back(std::nan(""));
      continue;
    }
    if (FaultFires("agent.poison")) {
      // A corrupted reading: absurdly large but finite, the kind of garbage
      // a broken counter or unit mix-up produces. The data-quality sentinel
      // is expected to catch it downstream.
      values.push_back(1e12);
      continue;
    }
    values.push_back(cluster_->SampleAt(instance, t).Get(metric));
  }
  const tsa::Frequency freq = poll_seconds_ == 15 * 60
                                  ? tsa::Frequency::kQuarterHourly
                                  : tsa::Frequency::kHourly;
  const std::string name = cluster_->InstanceName(instance) + "/" +
                           workload::MetricName(metric);
  return tsa::TimeSeries(name, start_epoch, freq, std::move(values));
}

Result<tsa::TimeSeries> MonitoringAgent::CollectDays(int instance,
                                                     workload::Metric metric,
                                                     int days) const {
  const std::size_t polls_per_day =
      static_cast<std::size_t>(86400 / poll_seconds_);
  return Collect(instance, metric, cluster_->start_epoch(),
                 polls_per_day * static_cast<std::size_t>(days));
}

}  // namespace capplan::agent
