#ifndef CAPPLAN_SERVICE_ESTATE_SERVICE_H_
#define CAPPLAN_SERVICE_ESTATE_SERVICE_H_

#include <cstdint>
#include <future>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "agent/agent.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/capacity.h"
#include "core/pipeline.h"
#include "quality/sentinel.h"
#include "repo/model_store.h"
#include "repo/repository.h"
#include "serve/estate_view.h"
#include "service/journal.h"
#include "service/scheduler.h"
#include "service/telemetry.h"
#include "workload/cluster.h"

namespace capplan::service {

// The paper's production operating mode (Sections 5.1, 8) as a continuously
// running, simulated-clock daemon: agents poll every 15 minutes, samples are
// aggregated hourly into the central repository, each stored model lives for
// one week or until its RMSE degrades, refits are dispatched concurrently
// onto a shared thread pool with retry/backoff and failure quarantine, and
// cached forecasts feed a breach-alert stream between refits. An append-only
// journal plus periodic snapshots make the schedule, registry, forecasts and
// alert state recoverable after a crash.

// One (instance, metric) pair under estate watch.
struct WatchConfig {
  int instance = 0;
  workload::Metric metric = workload::Metric::kCpu;
  double threshold = 0.0;  // breach level for the alert feed
  // Per-watch agent fault override (e.g. a flaky host); the service-wide
  // fault model applies when unset.
  std::optional<agent::FaultModel> faults;

  WatchConfig() = default;
  WatchConfig(int instance, workload::Metric metric, double threshold,
              std::optional<agent::FaultModel> faults = std::nullopt)
      : instance(instance),
        metric(metric),
        threshold(threshold),
        faults(std::move(faults)) {}
};

struct EstateServiceConfig {
  // Simulated seconds per Tick(); must be a positive multiple of one hour so
  // every tick completes whole aggregation buckets.
  std::int64_t tick_seconds = 3600;
  // Agent poll cadence (15 min or 1 h, as MonitoringAgent supports).
  std::int64_t poll_seconds = 15 * 60;
  // Workers on the shared refit pool.
  std::size_t fit_threads = 4;
  // History backfilled before the first tick so the Table-1 hourly window
  // (42 days) is available immediately.
  int warmup_days = 42;
  // Cap on fit input: at most this many recent hourly points per refit.
  std::size_t fit_window_hours = 56 * 24;
  // Model selection options for refits. The service forces
  // model_repository = nullptr (the driver thread owns registry updates),
  // n_threads = 1 (parallelism is across series, on the shared pool), and a
  // horizon override spanning the staleness period unless one is set.
  core::PipelineOptions pipeline;
  repo::StalenessPolicy staleness;
  RetryPolicy retry;
  // Live-RMSE window (hours of forecast-vs-actual overlap) for the
  // degradation half of the staleness policy; fewer overlapping points than
  // `degradation_min_points` skips the check.
  std::size_t degradation_window_hours = 24;
  std::size_t degradation_min_points = 6;
  // Snapshot cadence in ticks; 0 disables snapshots (journal-only recovery).
  int snapshot_every_ticks = 24;
  // Durability directory (journal + snapshots). Empty = ephemeral service.
  std::string state_dir;
  // Data-quality sentinel applied to every fit window before the pipeline.
  quality::SentinelOptions quality;
  // When set, windows the sentinel marks untrainable skip the configured
  // selection grid and start directly on the HES rung of the degradation
  // ladder (the grid would only overfit the noise the sentinel flagged).
  bool quality_gate = true;
  // When set, refits walk the degradation ladder instead of failing: every
  // watched instance keeps *some* forecast (tagged with its rung) unless the
  // window holds no usable data at all.
  bool always_forecast = true;
  // Trailing observed hours copied into each published EstateView row so the
  // serving layer can answer headroom queries without repository access.
  std::size_t view_recent_hours = 48;
};

// An active breach warning.
struct ServiceAlert {
  std::string key;
  bool upper_only = false;  // only the upper prediction bound crosses
  std::int64_t predicted_breach_epoch = 0;
  std::int64_t raised_at_epoch = 0;
};

// What one Tick() did.
struct TickReport {
  std::int64_t now_epoch = 0;
  std::size_t samples_ingested = 0;
  std::size_t refits_dispatched = 0;
  std::size_t refits_completed = 0;
  std::size_t refits_failed = 0;
  std::size_t refits_degraded = 0;  // completed via a ladder rung
  std::size_t alerts_raised = 0;
  std::size_t alerts_cleared = 0;
};

class EstateService {
 public:
  // `cluster` is not owned and must outlive the service.
  EstateService(const workload::ClusterSimulator* cluster,
                std::vector<WatchConfig> watches,
                EstateServiceConfig config = {},
                agent::FaultModel default_faults = {});
  ~EstateService();

  EstateService(const EstateService&) = delete;
  EstateService& operator=(const EstateService&) = delete;

  // Fresh start: backfills the warmup window into the metrics repository and
  // schedules an initial fit for every watch.
  Status Start();

  // Crash recovery: reloads the last snapshot from state_dir, replays the
  // journal suffix to rebuild clock, registry, schedule, cached forecasts
  // and alert state, then rebuilds the metric history by re-polling the
  // deterministic agents up to the recovered cursor. (A real deployment
  // would reload the repository's own persisted series instead; see
  // MetricsRepository::SaveAll.)
  Status Recover();

  // One scheduler cycle: ingest the elapsed window, check staleness and
  // degradation, dispatch due refits onto the pool, collect finished ones,
  // update the alert feed, journal, and snapshot when due. Never blocks on
  // in-flight refits.
  Result<TickReport> Tick();

  // Convenience: `n` consecutive ticks, stopping on the first error.
  Status RunTicks(int n);

  // Blocks until every in-flight refit has completed and been applied.
  Status DrainRefits();

  // Forces a snapshot now (also drains, so the snapshot is complete).
  Status Checkpoint();

  // Puts a quarantined key back into the rotation, due immediately.
  Status ReleaseQuarantine(const std::string& key);

  // Writes the Prometheus text exposition of the telemetry registry to
  // `path` atomically (tmp + rename), so an external scraper never reads a
  // half-written file. Callable at any point in the service lifecycle.
  Status WritePrometheus(const std::string& path) const;

  // Drains every buffered trace span (obs::Tracer — enable tracing with
  // obs::Tracer::Instance().Enable() before Start/Tick) into a Chrome
  // trace-event JSON file at `path`, viewable in chrome://tracing or
  // Perfetto. Draining clears the buffers; each dump covers the spans since
  // the previous one.
  Status DumpTrace(const std::string& path) const;

  // Introspection.
  bool started() const { return started_; }
  std::int64_t now() const { return now_; }
  std::uint64_t tick_count() const { return ticks_; }
  const ServiceTelemetry& telemetry() const { return telemetry_; }
  const repo::MetricsRepository& metrics() const { return metrics_; }
  const repo::ModelRepository& registry() const { return registry_; }
  const RetrainScheduler& scheduler() const { return scheduler_; }
  std::size_t in_flight_refits() const { return in_flight_.size(); }
  std::vector<ServiceAlert> ActiveAlerts() const;
  const std::vector<std::string>& keys() const { return keys_; }
  // Latest sentinel report per key (from the most recent collected refit).
  const std::map<std::string, quality::QualityReport>& quality_reports()
      const {
    return quality_;
  }
  // Ladder rung of the key's cached forecast; kFull when no forecast yet.
  core::DegradationLevel ForecastDegradation(const std::string& key) const;

  // Read side of the serving layer: an immutable estate snapshot is
  // republished (one atomic shared_ptr swap) at the end of Start, every
  // Tick, DrainRefits, and Recover. Request threads answer from the frozen
  // view without touching service state or locks.
  std::shared_ptr<const serve::EstateView> View() const {
    return view_channel_.Get();
  }
  serve::ViewChannel* view_channel() { return &view_channel_; }

  // Repository key for a watch on this cluster ("cdbm011/cpu").
  static std::string KeyFor(const workload::ClusterSimulator& cluster,
                            const WatchConfig& watch);

 private:
  struct CachedForecast {
    models::Forecast forecast;
    std::int64_t start_epoch = 0;   // timestamp of forecast step 1
    std::int64_t step_seconds = 3600;
    std::string spec;
    // Ladder rung that produced this forecast; consumers treat anything
    // above kFull as provisional capacity guidance.
    core::DegradationLevel degradation = core::DegradationLevel::kFull;
  };

  // Everything a worker returns; applied on the driver thread.
  struct FitOutcome {
    std::string key;
    std::int64_t fitted_at_epoch = 0;  // dispatch-time sim clock
    Status status;
    std::string technique;
    std::string spec;
    double test_rmse = 0.0;
    double test_mape = 0.0;
    std::vector<double> ar_coef;  // winner's coefficients, for warm starts
    std::vector<double> ma_coef;
    models::Forecast forecast;
    std::int64_t forecast_start_epoch = 0;
    std::int64_t forecast_step_seconds = 3600;
    double wall_ms = 0.0;
    core::DegradationLevel degradation = core::DegradationLevel::kFull;
    bool quality_gated = false;  // sentinel kept this fit off the grid
    quality::QualityReport quality;
    // The worker's refit trace span, stamped onto this outcome's journal
    // events so a logged failure can be found in the trace timeline.
    std::uint64_t span_id = 0;
  };

  Status Ingest(std::int64_t from_epoch, std::int64_t to_epoch);
  void CheckStaleness();
  std::size_t DispatchDue(TickReport* report);
  void CollectFinished(bool block, TickReport* report);
  void ApplyOutcome(const FitOutcome& outcome, TickReport* report);
  void EvaluateAlerts(TickReport* report);
  void PublishView();
  Status WriteSnapshot();
  Status ReplayEvent(const JournalEvent& event);
  // Appends by value: events with span_id 0 are stamped with the calling
  // thread's active trace span before serialization.
  Status JournalAppend(JournalEvent event);
  std::string JournalPath() const;

  const workload::ClusterSimulator* cluster_;  // not owned
  std::vector<WatchConfig> watches_;
  EstateServiceConfig config_;
  std::vector<agent::MonitoringAgent> agents_;  // one per watch
  std::vector<std::string> keys_;               // parallel to watches_
  std::map<std::string, std::size_t> watch_index_;

  repo::MetricsRepository metrics_;
  repo::ModelRepository registry_;
  RetrainScheduler scheduler_;
  EventJournal journal_;
  ServiceTelemetry telemetry_;

  std::map<std::string, CachedForecast> forecasts_;
  std::map<std::string, ServiceAlert> alerts_;
  std::map<std::string, quality::QualityReport> quality_;
  std::vector<std::future<FitOutcome>> in_flight_;

  serve::ViewChannel view_channel_;
  obs::Counter view_swaps_;

  bool started_ = false;
  std::int64_t now_ = 0;     // simulated clock
  std::int64_t cursor_ = 0;  // next poll epoch (ingested up to here)
  std::uint64_t ticks_ = 0;

  // Declared last: destroyed first, draining queued fit jobs (which capture
  // only copies) before the rest of the service goes away.
  ThreadPool pool_;
};

}  // namespace capplan::service

#endif  // CAPPLAN_SERVICE_ESTATE_SERVICE_H_
