#ifndef CAPPLAN_SERVICE_ESTATE_SERVICE_H_
#define CAPPLAN_SERVICE_ESTATE_SERVICE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "agent/agent.h"
#include "common/result.h"
#include "common/thread_pool.h"
#include "core/capacity.h"
#include "core/pipeline.h"
#include "obs/slo.h"
#include "quality/guardrail.h"
#include "quality/sentinel.h"
#include "repo/model_store.h"
#include "repo/repository.h"
#include "serve/estate_view.h"
#include "service/health.h"
#include "service/journal.h"
#include "service/scheduler.h"
#include "service/shard.h"
#include "service/telemetry.h"
#include "workload/cluster.h"

namespace capplan::service {

// The paper's production operating mode (Sections 5.1, 8) as a continuously
// running, simulated-clock daemon: agents poll every 15 minutes, samples are
// aggregated hourly into the central repository, each stored model lives for
// one week or until its RMSE degrades, refits are dispatched concurrently
// onto a shared thread pool with retry/backoff and failure quarantine, and
// cached forecasts feed a breach-alert stream between refits. An append-only
// journal plus periodic snapshots make the schedule, registry, forecasts and
// alert state recoverable after a crash.
//
// The estate is partitioned into n_shards independent shards (consistent
// hash of the repository key — service/shard.h): each shard owns its slice
// of metric storage, its own due-time retrain scheduler and a batched refit
// queue, and runs its tick work (ingest, staleness, due-taking, batch
// preparation) as one parallel job per shard. Due refits drain through the
// queue in batches of refit_batch_size series per pool job, so transforms
// that do not depend on the series values (the Fourier design columns
// behind every shared-OLS group — core::RefitBatchSession) are computed
// once per batch instead of once per series. The estate-level coordinator —
// this class — keeps the public API, the journal/snapshot formats, the
// model registry, forecast/alert state and EstateView publication exactly
// as before, so the serving layer and recovery semantics are unchanged;
// docs/scaling.md covers the sharding model and its metrics.

// One (instance, metric) pair under estate watch.
struct WatchConfig {
  int instance = 0;
  workload::Metric metric = workload::Metric::kCpu;
  double threshold = 0.0;  // breach level for the alert feed
  // Per-watch agent fault override (e.g. a flaky host); the service-wide
  // fault model applies when unset.
  std::optional<agent::FaultModel> faults;

  WatchConfig() = default;
  WatchConfig(int instance, workload::Metric metric, double threshold,
              std::optional<agent::FaultModel> faults = std::nullopt)
      : instance(instance),
        metric(metric),
        threshold(threshold),
        faults(std::move(faults)) {}
};

// Forecast guardrails (docs/robustness.md): live accuracy scoring of every
// arriving hourly actual against the active cached forecast, the
// champion/challenger promotion gate, automatic rollback on live
// regression, drift-triggered early refits, and the per-shard health
// watchdog. All thresholds compare MAPE in percent (the pipeline's held-out
// unit); the tracker itself reports a fraction and the service converts.
struct GuardrailConfig {
  bool enabled = true;
  // Per-key live scoring (rolling window + Page-Hinkley drift detection).
  quality::LiveAccuracyTracker::Options tracker;
  // Challenger promotion gate: a freshly refit challenger is installed only
  // if its held-out MAPE does not exceed tolerance_ratio x the champion's
  // live rolling MAPE. The gate needs at least promotion_min_scored live
  // points — before that (fresh key, just-promoted champion) the challenger
  // is promoted unconditionally, which keeps short estates deterministic.
  double promotion_tolerance_ratio = 1.5;
  std::size_t promotion_min_scored = 6;
  // Live-regression rollback: the champion is rolled back to the previous
  // generation when its live MAPE exceeds regression_ratio x the reference
  // (the previous champion's own live MAPE, its held-out MAPE as fallback),
  // with at least rollback_min_scored points of evidence.
  double rollback_regression_ratio = 2.0;
  std::size_t rollback_min_scored = 6;
  // Floor (percent) under both references so a near-perfect champion cannot
  // hair-trigger gates on sub-percent noise.
  double reference_mape_floor_pct = 1.0;
  // A Page-Hinkley drift alarm pulls the key's refit forward to "now"
  // (respecting backoff and quarantine — a failing key is never thundered).
  bool early_refit_on_drift = true;
  // Shard tick jobs slower than this trip the watchdog (a health signal);
  // <= 0 disables the deadline.
  double tick_deadline_ms = 5000.0;
  // Per-shard health-state machine thresholds.
  HealthPolicy health;
};

// Service-level objectives (obs/slo.h): multi-window burn-rate tracking
// over a forecast-accuracy SLO (fed by the live guardrail scoring pass) and
// a serve-latency SLO (fed by the query handler when wired with the
// service's SloSet). Burn rates export as capplan_slo_* metrics, render on
// /v1/slo, and — for the accuracy SLO — feed each shard's health state
// machine (sustained burn argues kDegraded, never kCritical).
struct SloConfig {
  bool enabled = true;
  // Forecast accuracy: a live-scored point is "good" when its absolute
  // percentage error stays at or under the tolerance (fraction, matching
  // LiveAccuracyTracker::Scored::abs_pct_error). Windows are sized for the
  // hourly scoring cadence: 6 h reacts within a workday, 24 h must agree
  // before health degrades.
  double accuracy_objective = 0.90;
  double accuracy_ape_tolerance = 0.25;
  double accuracy_fast_window_seconds = 6.0 * 3600.0;
  double accuracy_slow_window_seconds = 24.0 * 3600.0;
  // Serve latency: a request is "good" when rendered under the threshold.
  // Recorded by serve::EstateQueryHandler against the shared SloSet; the
  // windows follow the SRE-workbook 5 min / 1 h pairing.
  double latency_objective = 0.99;
  double latency_threshold_ms = 250.0;
  double latency_fast_window_seconds = 300.0;
  double latency_slow_window_seconds = 3600.0;
};

struct EstateServiceConfig {
  // Simulated seconds per Tick(); must be a positive multiple of one hour so
  // every tick completes whole aggregation buckets.
  std::int64_t tick_seconds = 3600;
  // Agent poll cadence (15 min or 1 h, as MonitoringAgent supports).
  std::int64_t poll_seconds = 15 * 60;
  // Workers on the shared refit pool.
  std::size_t fit_threads = 4;
  // History backfilled before the first tick so the Table-1 hourly window
  // (42 days) is available immediately.
  int warmup_days = 42;
  // Cap on fit input: at most this many recent hourly points per refit.
  std::size_t fit_window_hours = 56 * 24;
  // Model selection options for refits. The service forces
  // model_repository = nullptr (the driver thread owns registry updates),
  // n_threads = 1 (parallelism is across series, on the shared pool), and a
  // horizon override spanning the staleness period unless one is set.
  core::PipelineOptions pipeline;
  repo::StalenessPolicy staleness;
  RetryPolicy retry;
  // Live-RMSE window (hours of forecast-vs-actual overlap) for the
  // degradation half of the staleness policy; fewer overlapping points than
  // `degradation_min_points` skips the check.
  std::size_t degradation_window_hours = 24;
  std::size_t degradation_min_points = 6;
  // Snapshot cadence in ticks; 0 disables snapshots (journal-only recovery).
  int snapshot_every_ticks = 24;
  // Durability directory (journal + snapshots). Empty = ephemeral service.
  std::string state_dir;
  // Data-quality sentinel applied to every fit window before the pipeline.
  quality::SentinelOptions quality;
  // When set, windows the sentinel marks untrainable skip the configured
  // selection grid and start directly on the HES rung of the degradation
  // ladder (the grid would only overfit the noise the sentinel flagged).
  bool quality_gate = true;
  // When set, refits walk the degradation ladder instead of failing: every
  // watched instance keeps *some* forecast (tagged with its rung) unless the
  // window holds no usable data at all.
  bool always_forecast = true;
  // Trailing observed hours copied into each published EstateView row so the
  // serving layer can answer headroom queries without repository access.
  std::size_t view_recent_hours = 48;
  // Longer observed tail published for /v1/decompose: STL needs at least two
  // full cycles of the longest detected period (two weeks of hourly data
  // covers the weekly season). 0 disables the decompose history.
  std::size_t view_history_hours = 14 * 24;
  // Estate partitioning: number of independent shards (consistent key hash;
  // 0 and 1 both mean unsharded). Shard tick jobs run in parallel on a
  // small second pool, so several shards only pay off when the host has
  // cores for them; the shard count itself is a layout choice and must stay
  // stable across restarts for per-shard segment recovery (resizing is
  // safe but falls back to a full re-poll — docs/scaling.md).
  std::size_t n_shards = 1;
  // Series per batched refit job drained from a shard's queue (min 1).
  // Larger batches amortize shared transforms and per-job overhead across
  // more series but serialize those series onto one pool worker.
  std::size_t refit_batch_size = 8;
  // Cap on refit batches dispatched per shard per tick; 0 = unlimited.
  // Overflow stays on the shard's queue (in flight, visible as the
  // enqueued-minus-drained gap) and drains on later ticks — bounded-refit
  // overload shedding.
  std::size_t max_batches_per_shard_tick = 0;
  // Forecast guardrails: live scoring, promotion gate, rollback, health.
  GuardrailConfig guardrail;
  // Burn-rate SLOs: forecast accuracy (service-fed) + serve latency
  // (handler-fed through the shared SloSet).
  SloConfig slo;
};

// An active breach warning.
struct ServiceAlert {
  std::string key;
  bool upper_only = false;  // only the upper prediction bound crosses
  std::int64_t predicted_breach_epoch = 0;
  std::int64_t raised_at_epoch = 0;
};

// What one Tick() did.
struct TickReport {
  std::int64_t now_epoch = 0;
  std::size_t samples_ingested = 0;
  std::size_t refits_dispatched = 0;
  std::size_t refit_batches = 0;  // pool jobs carrying those refits
  std::size_t refits_completed = 0;
  std::size_t refits_failed = 0;
  std::size_t refits_degraded = 0;  // completed via a ladder rung
  std::size_t alerts_raised = 0;
  std::size_t alerts_cleared = 0;
  std::size_t promotions_rejected = 0;  // challengers the gate kept out
  std::size_t rollbacks = 0;            // champions rolled back this tick
};

class EstateService {
 public:
  // `cluster` is not owned and must outlive the service.
  EstateService(const workload::ClusterSimulator* cluster,
                std::vector<WatchConfig> watches,
                EstateServiceConfig config = {},
                agent::FaultModel default_faults = {});
  ~EstateService();

  EstateService(const EstateService&) = delete;
  EstateService& operator=(const EstateService&) = delete;

  // Fresh start: backfills the warmup window into the metrics repository and
  // schedules an initial fit for every watch.
  Status Start();

  // Crash recovery: reloads the last snapshot from state_dir, replays the
  // journal suffix to rebuild clock, registry, schedule, cached forecasts
  // and alert state, then rebuilds the metric history by re-polling the
  // deterministic agents up to the recovered cursor. (A real deployment
  // would reload the repository's own persisted series instead; see
  // MetricsRepository::SaveAll.)
  Status Recover();

  // One scheduler cycle: ingest the elapsed window, check staleness and
  // degradation, dispatch due refits onto the pool, collect finished ones,
  // update the alert feed, journal, and snapshot when due. Never blocks on
  // in-flight refits.
  Result<TickReport> Tick();

  // Convenience: `n` consecutive ticks, stopping on the first error.
  Status RunTicks(int n);

  // Blocks until every in-flight refit has completed and been applied.
  Status DrainRefits();

  // Forces a snapshot now (also drains, so the snapshot is complete).
  Status Checkpoint();

  // Puts a quarantined key back into the rotation, due immediately.
  Status ReleaseQuarantine(const std::string& key);

  // Writes the Prometheus text exposition of the telemetry registry to
  // `path` atomically (tmp + rename), so an external scraper never reads a
  // half-written file. Callable at any point in the service lifecycle.
  Status WritePrometheus(const std::string& path) const;

  // Drains every buffered trace span (obs::Tracer — enable tracing with
  // obs::Tracer::Instance().Enable() before Start/Tick) into a Chrome
  // trace-event JSON file at `path`, viewable in chrome://tracing or
  // Perfetto. Draining clears the buffers; each dump covers the spans since
  // the previous one.
  Status DumpTrace(const std::string& path) const;

  // Introspection.
  bool started() const { return started_; }
  std::int64_t now() const { return now_; }
  std::uint64_t tick_count() const { return ticks_; }
  const ServiceTelemetry& telemetry() const { return telemetry_; }
  const repo::ModelRepository& registry() const { return registry_; }

  // Shard topology. Keys route by consistent hash: the shard owning a key
  // is a pure function of (key, n_shards), identical across restarts.
  std::size_t n_shards() const { return shards_.size(); }
  std::size_t ShardOfKey(const std::string& key) const {
    return ShardOf(key, shards_.size());
  }
  // Keys owned by one shard, in watch-config order.
  std::vector<std::string> ShardKeys(std::size_t shard) const;

  // Metric storage, routed by key (each shard owns its slice). FindHourly's
  // borrow semantics are the repository's: valid until the same key is
  // mutated (the next Tick).
  const repo::MetricsRepository& metrics_for(const std::string& key) const {
    return ShardForKey(key).metrics;
  }
  const repo::MetricsRepository& shard_metrics(std::size_t shard) const {
    return shards_[shard]->metrics;
  }
  const tsa::TimeSeries* FindHourly(const std::string& key) const {
    return ShardForKey(key).metrics.FindHourly(key);
  }
  // Series across all shards.
  std::size_t series_count() const;

  // Retrain schedule, routed by key.
  Result<ScheduleEntry> ScheduleFor(const std::string& key) const {
    return ShardForKey(key).scheduler.Get(key);
  }
  bool IsQuarantined(const std::string& key) const {
    return ShardForKey(key).scheduler.IsQuarantined(key);
  }
  std::vector<std::string> QuarantinedKeys() const;  // all shards, key order
  std::vector<ScheduleEntry> ScheduleEntries() const;  // all shards, key order
  std::size_t schedule_size() const;
  const RetrainScheduler& shard_scheduler(std::size_t shard) const {
    return shards_[shard]->scheduler;
  }

  // Keys queued for a batched refit but not yet handed to a pool job
  // (queued keys are in flight in their scheduler, so they are never taken
  // twice; a crash mid-queue re-dispatches them on recovery).
  std::size_t RefitQueueDepth() const;

  // Outstanding batched refit jobs on the pool (each carries up to
  // refit_batch_size series).
  std::size_t in_flight_refits() const { return in_flight_.size(); }
  std::vector<ServiceAlert> ActiveAlerts() const;
  const std::vector<std::string>& keys() const { return keys_; }
  // Latest sentinel report per key (from the most recent collected refit).
  const std::map<std::string, quality::QualityReport>& quality_reports()
      const {
    return quality_;
  }
  // Ladder rung of the key's cached forecast; kFull when no forecast yet.
  core::DegradationLevel ForecastDegradation(const std::string& key) const;

  // Deep health (service/health.h): per-shard state machine fed by tick
  // overruns, refit-queue depth, quarantine/rollback storms and I/O errors.
  HealthState ShardHealthState(std::size_t shard) const {
    return shards_[shard]->health.state();
  }
  HealthState OverallHealth() const;
  // Rolling live MAPE (percent, as the pipeline reports it) of the key's
  // champion; negative while the key has no scored points yet.
  double LiveMapeFor(const std::string& key) const;

  // The service's SLO trackers ("forecast_accuracy" is fed by the guardrail
  // scoring pass; "serve_latency" is empty until a query handler is wired
  // with this set via EstateQueryHandler::Options::slos). Null when
  // config.slo.enabled is false.
  std::shared_ptr<obs::SloSet> slos() const { return slo_set_; }
  // Monotone sequence number of the last journal event appended (0 before
  // the first append, or for an ephemeral service). Wide events emitted at
  // journalled transitions carry the seq of their event, linking the
  // flight recorder to the durability log.
  std::uint64_t journal_seq() const { return journal_seq_; }

  // Read side of the serving layer: an immutable estate snapshot is
  // republished (one atomic shared_ptr swap) at the end of Start, every
  // Tick, DrainRefits, and Recover. Request threads answer from the frozen
  // view without touching service state or locks.
  std::shared_ptr<const serve::EstateView> View() const {
    return view_channel_.Get();
  }
  serve::ViewChannel* view_channel() { return &view_channel_; }

  // Repository key for a watch on this cluster ("cdbm011/cpu").
  static std::string KeyFor(const workload::ClusterSimulator& cluster,
                            const WatchConfig& watch);

 private:
  struct CachedForecast {
    models::Forecast forecast;
    std::int64_t start_epoch = 0;   // timestamp of forecast step 1
    std::int64_t step_seconds = 3600;
    std::string spec;
    // Ladder rung that produced this forecast; consumers treat anything
    // above kFull as provisional capacity guidance.
    core::DegradationLevel degradation = core::DegradationLevel::kFull;
  };

  // Everything a worker returns; applied on the driver thread.
  struct FitOutcome {
    std::string key;
    std::int64_t fitted_at_epoch = 0;  // dispatch-time sim clock
    Status status;
    std::string technique;
    std::string spec;
    double test_rmse = 0.0;
    double test_mape = 0.0;
    std::vector<double> ar_coef;  // winner's coefficients, for warm starts
    std::vector<double> ma_coef;
    std::vector<double> periods;  // detected seasonal periods at fit time
    models::Forecast forecast;
    std::int64_t forecast_start_epoch = 0;
    std::int64_t forecast_step_seconds = 3600;
    double wall_ms = 0.0;
    core::DegradationLevel degradation = core::DegradationLevel::kFull;
    bool quality_gated = false;  // sentinel kept this fit off the grid
    quality::QualityReport quality;
    // The worker's refit trace span, stamped onto this outcome's journal
    // events so a logged failure can be found in the trace timeline.
    std::uint64_t span_id = 0;
  };

  // One series of a prepared refit batch: everything the pool job needs,
  // copied so the job never touches live service state.
  struct RefitJobInput {
    std::string key;
    tsa::TimeSeries window;
    core::PipelineOptions opts;
    std::int64_t fitted_at_epoch = 0;
  };
  // A shard's drained batch, ready for one pool job.
  struct PreparedBatch {
    std::size_t shard = 0;
    std::vector<RefitJobInput> items;
  };
  // What one batch job returns: per-series outcomes plus the batch-level
  // shared-transform stats, applied on the driver thread.
  struct BatchOutcome {
    std::size_t shard = 0;
    std::vector<FitOutcome> outcomes;
    std::uint64_t fourier_hits = 0;
    std::uint64_t fourier_misses = 0;
    double wall_ms = 0.0;
  };
  // What one shard's parallel tick job produced.
  struct ShardTickOutput {
    Status status;
    std::vector<PreparedBatch> batches;
    std::size_t samples_ingested = 0;
    std::size_t refits_dispatched = 0;
  };

  EstateShard& ShardForKey(const std::string& key) {
    return *shards_[ShardOf(key, shards_.size())];
  }
  const EstateShard& ShardForKey(const std::string& key) const {
    return *shards_[ShardOf(key, shards_.size())];
  }

  // Runs `fn(shard)` for every shard — inline when unsharded, as one job
  // per shard on the tick pool otherwise — and returns the first error.
  // The driver blocks until every shard job has finished, so shard state is
  // never touched from two threads at once.
  Status ForEachShard(const std::function<Status(EstateShard*)>& fn);

  Status IngestShard(EstateShard* shard, std::int64_t from_epoch,
                     std::int64_t to_epoch,
                     std::size_t* samples_out = nullptr);
  void CheckStalenessShard(EstateShard* shard);
  // Takes due keys into the shard's refit queue, then drains the queue into
  // prepared batches (short-history keys defer instead).
  void PrepareBatches(EstateShard* shard, ShardTickOutput* out);
  // The whole per-shard phase of one Tick: ingest + staleness + batching.
  ShardTickOutput TickShard(EstateShard* shard);
  void SubmitBatch(PreparedBatch batch, TickReport* report);
  void CollectFinished(bool block, TickReport* report);
  void ApplyOutcome(const FitOutcome& outcome, TickReport* report);
  void EvaluateAlerts(TickReport* report);
  // Shard-phase live scoring: every hourly actual the tick ingested is
  // scored against the key's active cached forecast (one guardrail tracker
  // per key), feeding the Page-Hinkley detector; an alarm pulls the key's
  // refit forward when backoff allows. Runs inside TickShard, so it only
  // reads coordinator forecasts_ (the CheckStalenessShard precedent) and
  // writes shard-owned guardrail state.
  void ScoreShard(EstateShard* shard);
  // Driver-phase guardrail pass: exports per-shard worst-key gauges and
  // rolls back champions whose live MAPE regressed past the configured
  // ratio of their predecessor's accuracy.
  void EvaluateGuardrails(TickReport* report);
  // Driver-phase health pass: folds the tick's signals into each shard's
  // state machine and exports the state gauges.
  void EvaluateHealth();
  void PublishView();
  Status WriteSnapshot();
  Status ReplayEvent(const JournalEvent& event);
  // Rebuilds one shard's metric history on recovery: reopen its segment
  // directory and re-poll only the missing suffix, or fall back to a full
  // re-poll when the segments are missing/damaged/inconsistent.
  Status RecoverShardHistory(EstateShard* shard);
  std::string ShardSegmentDir(std::size_t shard) const;
  // Appends by value: events with span_id 0 are stamped with the calling
  // thread's active trace span before serialization.
  Status JournalAppend(JournalEvent event);
  std::string JournalPath() const;

  const workload::ClusterSimulator* cluster_;  // not owned
  std::vector<WatchConfig> watches_;
  EstateServiceConfig config_;
  std::vector<agent::MonitoringAgent> agents_;  // one per watch
  std::vector<std::string> keys_;               // parallel to watches_
  std::map<std::string, std::size_t> watch_index_;

  // The shards: each owns its slice of metric storage, its scheduler and
  // its refit queue. Estate-level state (registry, forecasts, alerts,
  // quality, journal) stays below, owned by the coordinator.
  std::vector<std::unique_ptr<EstateShard>> shards_;

  repo::ModelRepository registry_;
  EventJournal journal_;
  ServiceTelemetry telemetry_;

  // SLO trackers (null when disabled). accuracy_slo_ caches the estate-wide
  // "forecast_accuracy" tracker; per-shard trackers live on the shards.
  std::shared_ptr<obs::SloSet> slo_set_;
  obs::SloTracker* accuracy_slo_ = nullptr;
  // Count of successfully appended journal events (== the journal_events
  // counter, but plain so the hot path stays off the registry).
  std::uint64_t journal_seq_ = 0;

  std::map<std::string, CachedForecast> forecasts_;
  // Rollback targets: the forecast each key's previous champion was serving
  // when the current champion displaced it. Entries exist only for keys
  // whose registry lineage also holds a previous generation, so a rollback
  // restores model and forecast together, byte-equal to pre-promotion.
  std::map<std::string, CachedForecast> previous_forecasts_;
  std::map<std::string, ServiceAlert> alerts_;
  std::map<std::string, quality::QualityReport> quality_;
  std::vector<std::future<BatchOutcome>> in_flight_;

  serve::ViewChannel view_channel_;
  obs::Counter view_swaps_;

  bool started_ = false;
  std::int64_t now_ = 0;     // simulated clock
  std::int64_t cursor_ = 0;  // next poll epoch (ingested up to here)
  std::uint64_t ticks_ = 0;

  // Small pool for the parallel per-shard tick jobs (null when unsharded:
  // one shard runs inline on the driver thread). Separate from pool_ so a
  // shard tick never queues behind a long batched grid fit — Tick() must
  // stay non-blocking with respect to in-flight refits.
  std::unique_ptr<ThreadPool> tick_pool_;

  // Declared last: destroyed first, draining queued fit jobs (which capture
  // only copies) before the rest of the service goes away.
  ThreadPool pool_;
};

}  // namespace capplan::service

#endif  // CAPPLAN_SERVICE_ESTATE_SERVICE_H_
