#ifndef CAPPLAN_SERVICE_SHARD_H_
#define CAPPLAN_SERVICE_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "obs/slo.h"
#include "quality/guardrail.h"
#include "repo/repository.h"
#include "service/health.h"
#include "service/scheduler.h"
#include "service/telemetry.h"

namespace capplan::service {

// Consistent key -> shard routing for the sharded estate service. FNV-1a
// over the repository key, reduced modulo the shard count: purely a
// function of (key, n_shards), so the same estate config maps every series
// to the same shard across restarts, recoveries and processes — which is
// what lets per-shard segment directories and schedules be reloaded
// verbatim. Resizing n_shards remaps keys (docs/scaling.md covers the
// rebalance rules: schedules re-route through the journal replay, segment
// directories stop matching and recovery falls back to a full re-poll).
std::uint64_t ShardHash(const std::string& key);
std::size_t ShardOf(const std::string& key, std::size_t n_shards);

// One shard of the estate: its slice of the watch set plus everything that
// slice owns — metric storage, the due-time retrain scheduler and the
// batched refit queue. Owned by EstateService. Mutation happens either on
// the driver thread or inside this shard's tick job, never both at once;
// shards never touch each other's state, which is what makes the per-shard
// tick phase embarrassingly parallel.
struct EstateShard {
  std::size_t id = 0;
  // Indices into the service's watches_/agents_/keys_ vectors.
  std::vector<std::size_t> watch_ids;

  repo::MetricsRepository metrics;
  RetrainScheduler scheduler;

  // Keys taken due by the scheduler, waiting to be drained into batch fit
  // jobs. Entries stay in_flight in the scheduler while queued, so they are
  // never re-taken; the queue is deliberately not persisted — a crash
  // mid-queue re-dispatches on recovery exactly like a crash mid-fit.
  std::deque<std::string> refit_queue;

  // Live forecast-accuracy guardrail for one watched series: the tracker
  // plus the high-water timestamp of hourly actuals already scored (so each
  // point is scored exactly once, and recovery never floods old history in).
  struct GuardrailEntry {
    quality::LiveAccuracyTracker tracker;
    std::int64_t last_scored_epoch = 0;
  };
  // Keyed by repository key; created lazily by the shard's scoring pass.
  // Same ownership rule as the rest of the shard: the shard's tick job
  // scores, the driver reads/resets between ticks.
  std::map<std::string, GuardrailEntry> guardrail;

  // Deep health of this shard. The counters are plain (single-writer: the
  // tick job bumps tick_overruns, the driver bumps rollbacks — never inside
  // the same tick phase); the driver evaluates the state machine once per
  // tick after joining the shard jobs.
  ShardHealth health;
  std::uint64_t tick_overruns = 0;
  std::uint64_t rollbacks = 0;

  // Per-shard forecast-accuracy SLO: the tick job records each live-scored
  // point (good when |APE| stays under the configured tolerance); the
  // driver evaluates burn rates into the health signals. Internally
  // synchronized, so the same writer/reader split as the counters is safe.
  std::unique_ptr<obs::SloTracker> accuracy_slo;

  // Handle into ServiceTelemetry::shards[id]; not owned.
  ShardTelemetry* telemetry = nullptr;

  explicit EstateShard(RetryPolicy retry) : scheduler(retry) {}
};

}  // namespace capplan::service

#endif  // CAPPLAN_SERVICE_SHARD_H_
