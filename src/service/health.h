#ifndef CAPPLAN_SERVICE_HEALTH_H_
#define CAPPLAN_SERVICE_HEALTH_H_

#include <cstddef>
#include <cstdint>
#include <deque>

namespace capplan::service {

// Deep health of one estate shard, beyond the shallow "is a view published"
// liveness probe. The paper's production deployment (Section 8) is an
// always-on planning daemon; an operator needs to know not just that it is
// up, but whether its models and schedules are keeping pace. Three states:
//
//   kHealthy   all signals nominal
//   kDegraded  the shard is falling behind (queue growth, an occasional
//              watchdog overrun, a rollback) but still serving
//   kCritical  sustained overload, quarantine/rollback storms or repeated
//              I/O failures — readiness probes (/healthz?deep=1) go 503
//
// Escalation is immediate; de-escalation is hysteretic (one level per
// `recover_ticks` consecutive calm evaluations), so a shard flapping around
// a threshold cannot strobe the readiness endpoint.
enum class HealthState { kHealthy = 0, kDegraded = 1, kCritical = 2 };

const char* HealthStateName(HealthState state);

// One evaluation's worth of raw signals. Counter-like fields
// (tick_overruns, rollbacks, io_errors) are cumulative; the state machine
// differences them over a sliding window of evaluations so an old incident
// ages out. Depth-like fields are instantaneous.
struct HealthSignals {
  std::uint64_t tick_overruns = 0;   // cumulative tick-deadline watchdog hits
  std::size_t refit_queue_depth = 0; // keys waiting in the refit queue
  std::size_t quarantined_keys = 0;  // keys out of the dispatch rotation
  std::uint64_t rollbacks = 0;       // cumulative champion rollbacks
  std::uint64_t io_errors = 0;       // cumulative journal/store write failures
  // Forecast-accuracy SLO burn rates for this shard (instantaneous, already
  // windowed by the SloTracker). Both must exceed the policy threshold to
  // argue — the multi-window condition that keeps a single bad scoring pass
  // from flapping health.
  double slo_fast_burn = 0.0;
  double slo_slow_burn = 0.0;
};

// Thresholds. A signal at or above its degraded_* value argues for
// kDegraded, at or above critical_* for kCritical; the machine adopts the
// worst argument. Windowed thresholds apply to the delta of a cumulative
// counter across the last `window_ticks` evaluations.
struct HealthPolicy {
  std::size_t window_ticks = 8;

  std::size_t degraded_queue_depth = 32;
  std::size_t critical_queue_depth = 128;
  std::size_t degraded_quarantined = 1;
  std::size_t critical_quarantined = 8;
  std::uint64_t degraded_overruns = 1;   // within the window
  std::uint64_t critical_overruns = 4;
  std::uint64_t degraded_rollbacks = 1;  // within the window
  std::uint64_t critical_rollbacks = 3;
  std::uint64_t degraded_io_errors = 1;  // within the window
  std::uint64_t critical_io_errors = 8;
  // Sustained SLO burn (both windows at or above this rate) argues for
  // kDegraded only — an accuracy regression should page via the burn-rate
  // alert and soften readiness, not hard-fail the shard. 0 disables.
  double degraded_slo_burn = 2.0;

  // Consecutive evaluations whose signals argue for a lower state before
  // the machine steps down one level.
  std::size_t recover_ticks = 3;
};

class ShardHealth {
 public:
  ShardHealth() : ShardHealth(HealthPolicy()) {}
  explicit ShardHealth(HealthPolicy policy);

  // Feeds one tick's signals; returns the (possibly unchanged) state.
  HealthState Evaluate(const HealthSignals& signals);

  HealthState state() const { return state_; }
  // Short static description of what drove the last escalation (or the
  // worst current signal); "nominal" when healthy.
  const char* reason() const { return reason_; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  HealthPolicy policy_;
  HealthState state_ = HealthState::kHealthy;
  const char* reason_ = "nominal";
  std::uint64_t transitions_ = 0;
  std::size_t calm_evals_ = 0;

  // Ring of recent cumulative counters, newest last, capped at
  // window_ticks + 1 entries: delta = newest - oldest.
  struct CumulativeSample {
    std::uint64_t tick_overruns = 0;
    std::uint64_t rollbacks = 0;
    std::uint64_t io_errors = 0;
  };
  std::deque<CumulativeSample> history_;
};

}  // namespace capplan::service

#endif  // CAPPLAN_SERVICE_HEALTH_H_
