#include "service/scheduler.h"

#include <algorithm>
#include <cmath>

#include "repo/csv.h"

namespace capplan::service {

namespace {

std::uint64_t Mix64(std::uint64_t x) {  // splitmix64 finalizer
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashKey(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (char c : key) {
    h = (h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c))) *
        0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::int64_t RetryPolicy::BackoffFor(int failures) const {
  if (failures <= 0) return initial_backoff_seconds;
  double delay = static_cast<double>(initial_backoff_seconds) *
                 std::pow(backoff_multiplier, failures - 1);
  delay = std::min(delay, static_cast<double>(max_backoff_seconds));
  return static_cast<std::int64_t>(delay);
}

std::int64_t RetryPolicy::JitteredBackoffFor(const std::string& key,
                                             int failures) const {
  const std::int64_t base = BackoffFor(failures);
  if (backoff_jitter <= 0.0) return base;
  const std::uint64_t h =
      Mix64(jitter_seed ^ HashKey(key) ^
            Mix64(static_cast<std::uint64_t>(std::max(failures, 0))));
  // Uniform in [0, 1), then mapped to a multiplier in [1-j, 1+j].
  const double u = (static_cast<double>(h >> 11) + 0.5) / 9007199254740992.0;
  const double j = std::min(backoff_jitter, 0.999);
  const double factor = 1.0 - j + 2.0 * j * u;
  double delay = static_cast<double>(base) * factor;
  delay = std::min(delay, static_cast<double>(max_backoff_seconds));
  return std::max<std::int64_t>(1, static_cast<std::int64_t>(delay));
}

void RetrainScheduler::Push(const std::string& key, std::int64_t due_epoch) {
  heap_.emplace(due_epoch, key);
}

void RetrainScheduler::ScheduleAt(const std::string& key,
                                  std::int64_t due_epoch) {
  ScheduleEntry& entry = entries_[key];
  entry.key = key;
  entry.due_epoch = due_epoch;
  Push(key, due_epoch);
}

void RetrainScheduler::PullForward(const std::string& key,
                                   std::int64_t due_epoch) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ScheduleAt(key, due_epoch);
    return;
  }
  if (due_epoch >= it->second.due_epoch) return;
  it->second.due_epoch = due_epoch;
  Push(key, due_epoch);
}

std::vector<std::string> RetrainScheduler::TakeDue(std::int64_t now_epoch) {
  std::vector<std::string> due;
  while (!heap_.empty() && heap_.top().first <= now_epoch) {
    const HeapItem item = heap_.top();
    heap_.pop();
    auto it = entries_.find(item.second);
    if (it == entries_.end()) continue;  // stale: key removed
    ScheduleEntry& entry = it->second;
    // Stale heap copy: the entry has since been rescheduled.
    if (entry.due_epoch != item.first) continue;
    if (entry.quarantined || entry.in_flight) continue;
    entry.in_flight = true;
    due.push_back(entry.key);
  }
  return due;
}

void RetrainScheduler::OnSuccess(const std::string& key,
                                 std::int64_t next_due_epoch) {
  ScheduleEntry& entry = entries_[key];
  entry.key = key;
  entry.in_flight = false;
  entry.consecutive_failures = 0;
  entry.quarantined = false;
  entry.due_epoch = next_due_epoch;
  Push(key, next_due_epoch);
}

bool RetrainScheduler::OnFailure(const std::string& key,
                                 std::int64_t now_epoch) {
  ScheduleEntry& entry = entries_[key];
  entry.key = key;
  entry.in_flight = false;
  entry.consecutive_failures += 1;
  if (entry.consecutive_failures >= policy_.quarantine_after_failures) {
    entry.quarantined = true;
    return true;
  }
  entry.due_epoch =
      now_epoch + policy_.JitteredBackoffFor(key, entry.consecutive_failures);
  Push(key, entry.due_epoch);
  return false;
}

void RetrainScheduler::Defer(const std::string& key, std::int64_t due_epoch) {
  ScheduleEntry& entry = entries_[key];
  entry.key = key;
  entry.in_flight = false;
  entry.due_epoch = due_epoch;
  Push(key, due_epoch);
}

bool RetrainScheduler::IsQuarantined(const std::string& key) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.quarantined;
}

std::vector<std::string> RetrainScheduler::QuarantinedKeys() const {
  std::vector<std::string> keys;
  for (const auto& [k, e] : entries_) {
    if (e.quarantined) keys.push_back(k);
  }
  return keys;
}

Status RetrainScheduler::Release(const std::string& key,
                                 std::int64_t due_epoch) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("scheduler: unknown key " + key);
  }
  if (!it->second.quarantined) {
    return Status::FailedPrecondition("scheduler: " + key +
                                      " is not quarantined");
  }
  it->second.quarantined = false;
  it->second.consecutive_failures = 0;
  it->second.due_epoch = due_epoch;
  Push(key, due_epoch);
  return Status::OK();
}

Result<ScheduleEntry> RetrainScheduler::Get(const std::string& key) const {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("scheduler: unknown key " + key);
  }
  return it->second;
}

std::vector<ScheduleEntry> RetrainScheduler::Entries() const {
  std::vector<ScheduleEntry> entries;
  entries.reserve(entries_.size());
  for (const auto& [_, e] : entries_) entries.push_back(e);
  return entries;
}

void RetrainScheduler::Restore(ScheduleEntry entry) {
  entry.in_flight = false;
  const std::string key = entry.key;
  entries_[key] = std::move(entry);
  if (!entries_[key].quarantined) Push(key, entries_[key].due_epoch);
}

Status RetrainScheduler::Save(const std::string& path) const {
  return SaveEntries(path, Entries());
}

Status RetrainScheduler::Load(const std::string& path) {
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<ScheduleEntry> entries,
                           LoadEntries(path));
  for (auto& entry : entries) Restore(std::move(entry));
  return Status::OK();
}

Status RetrainScheduler::SaveEntries(const std::string& path,
                                     std::vector<ScheduleEntry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const ScheduleEntry& a, const ScheduleEntry& b) {
              return a.key < b.key;
            });
  repo::CsvTable table;
  table.header = {"key", "due_epoch", "consecutive_failures", "quarantined"};
  for (const auto& e : entries) {
    table.rows.push_back({e.key, std::to_string(e.due_epoch),
                          std::to_string(e.consecutive_failures),
                          e.quarantined ? "1" : "0"});
  }
  return repo::WriteCsv(path, table);
}

Result<std::vector<ScheduleEntry>> RetrainScheduler::LoadEntries(
    const std::string& path) {
  CAPPLAN_ASSIGN_OR_RETURN(repo::CsvTable table, repo::ReadCsv(path));
  if (table.header.size() != 4) {
    return Status::IoError("scheduler: unexpected column count in " + path);
  }
  std::vector<ScheduleEntry> entries;
  entries.reserve(table.rows.size());
  for (const auto& row : table.rows) {
    if (row.size() != 4) {
      return Status::IoError("scheduler: malformed row in " + path);
    }
    ScheduleEntry entry;
    entry.key = row[0];
    try {
      entry.due_epoch = std::stoll(row[1]);
      entry.consecutive_failures = std::stoi(row[2]);
    } catch (...) {
      return Status::IoError("scheduler: bad number in " + path);
    }
    entry.quarantined = row[3] == "1";
    entries.push_back(std::move(entry));
  }
  return entries;
}

}  // namespace capplan::service
