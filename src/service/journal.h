#ifndef CAPPLAN_SERVICE_JOURNAL_H_
#define CAPPLAN_SERVICE_JOURNAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"

namespace capplan::service {

// Append-only event journal — the durability backbone of the estate
// planning daemon. Every state transition that matters for recovery (clock
// ticks, fit outcomes, quarantines, alert raises/clears, snapshot markers)
// is appended as one line and flushed, so that after a crash the service can
// reload the last snapshot and replay the journal suffix to rebuild its
// schedule, model registry and alert state exactly.

enum class EventKind {
  kTick,        // clock advanced to `epoch`; no key
  kFitOk,       // fields: technique, spec, rmse, mape, fitted_at,
                //         fc_start, fc_step, level, mean, lower, upper
                //         (the last four ';'-joined), degradation,
                //         quality score, generation, promoted_at (replay
                //         also accepts the older 11- and 13-field layouts)
  kFitFail,     // fields: consecutive_failures, next_due (-1 = quarantined),
                //         status message
  kQuarantine,  // key removed from the dispatch rotation
  kRelease,     // quarantined key put back into the rotation
  kAlert,       // fields: kind ("mean"|"upper"), predicted breach epoch
  kAlertClear,  // breach prognosis cleared
  kSnapshot,    // snapshot files written; replay starts after the last one
  kQuality,     // fields: score, trainable ("1"|"0"), verdict — the data-
                //         quality sentinel's view of the key's fit window
  kPromotion,   // guardrail promotion-gate verdict. fields: decision
                //         ("reject"), challenger technique, spec, challenger
                //         held-out MAPE, champion live MAPE, next_due.
                //         (Accepted challengers are journalled as kFitOk.)
  kRollback,    // champion rolled back to the previous generation. Carries
                //         the full restored model + forecast payload so
                //         replay needs no in-memory lineage: technique,
                //         spec, rmse, mape, fitted_at, generation,
                //         promoted_at, live_mape, ar_coef, ma_coef,
                //         fc_start, fc_step, level, mean, lower, upper,
                //         degradation, next_due (18 fields; the coefficient
                //         and forecast vectors ';'-joined).
};

const char* EventKindName(EventKind kind);
Result<EventKind> ParseEventKind(const std::string& name);

struct JournalEvent {
  std::int64_t epoch = 0;  // simulated time of the event
  EventKind kind = EventKind::kTick;
  std::string key;         // subject series; empty for tick/snapshot
  std::vector<std::string> fields;
  // Trace span active when the event was journalled (obs::CurrentSpanId();
  // 0 = none). Links a journal line to the matching span in a Chrome-trace
  // dump, so a replayed failure can be located in the timeline. Declared
  // after `fields` to keep `{epoch, kind, key, {fields}}` initializers valid.
  std::uint64_t span_id = 0;

  // One line, 'v2|epoch|kind|span|key|field...'. Separator and newline
  // characters inside fields are replaced with '/' (model specs never
  // contain them). Parse also accepts the pre-trace 'v1|epoch|kind|key|...'
  // layout, yielding span_id 0.
  std::string Serialize() const;
  static Result<JournalEvent> Parse(const std::string& line);
};

// The append side. Writes are flushed per event so that at most the final,
// torn line is lost on a crash.
class EventJournal {
 public:
  EventJournal() = default;
  ~EventJournal();

  EventJournal(const EventJournal&) = delete;
  EventJournal& operator=(const EventJournal&) = delete;
  EventJournal(EventJournal&& other) noexcept;
  EventJournal& operator=(EventJournal&& other) noexcept;

  // Opens `path` for appending, creating it if absent.
  static Result<EventJournal> Open(const std::string& path);

  Status Append(const JournalEvent& event);
  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }
  void Close();

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
};

// Reads every well-formed event from `path`. A torn final line (crash during
// append) is skipped; a missing file yields an empty vector.
Result<std::vector<JournalEvent>> ReadJournal(const std::string& path);

}  // namespace capplan::service

#endif  // CAPPLAN_SERVICE_JOURNAL_H_
