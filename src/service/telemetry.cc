#include "service/telemetry.h"

#include "common/json_writer.h"

namespace capplan::service {

ServiceTelemetry::ServiceTelemetry()
    : registry(std::make_shared<obs::MetricsRegistry>()) {
  auto counter = [this](const char* name, const char* help) {
    return registry->GetCounter(name, {}, help);
  };
  ticks = counter("capplan_ticks_total", "Service driver loop iterations");
  polls = counter("capplan_polls_total", "Agent samples requested");
  samples_ingested =
      counter("capplan_samples_ingested_total", "Raw samples appended");
  hourly_points =
      counter("capplan_hourly_points_total", "Hourly aggregates appended");
  refits_dispatched =
      counter("capplan_refits_dispatched_total", "Refits handed to the pool");
  refits_succeeded =
      counter("capplan_refits_succeeded_total", "Refits that produced a model");
  refits_failed = counter("capplan_refits_failed_total", "Refits that errored");
  refits_deferred =
      counter("capplan_refits_deferred_total", "Refits skipped: short history");
  refits_degraded = counter("capplan_refits_degraded_total",
                            "Refits served by a degradation-ladder rung");
  quality_gated = counter("capplan_quality_gated_total",
                          "Fits the data-quality sentinel kept off the grid");
  quarantines =
      counter("capplan_quarantines_total", "Keys quarantined after failures");
  alerts_raised = counter("capplan_alerts_raised_total", "Breach alerts raised");
  alerts_cleared =
      counter("capplan_alerts_cleared_total", "Breach alerts cleared");
  forecast_cache_hits = counter("capplan_forecast_cache_hits_total",
                                "Ticks served from a cached fit");
  forecast_exhausted_ticks = counter("capplan_forecast_exhausted_ticks_total",
                                     "Ticks where the cache outran its horizon");
  journal_events =
      counter("capplan_journal_events_total", "Journal events appended");
  snapshots_written =
      counter("capplan_snapshots_written_total", "State snapshots written");
  io_errors =
      counter("capplan_io_errors_total", "Absorbed write failures, all paths");
  journal_write_failures = counter("capplan_journal_write_failures_total",
                                   "Absorbed journal append failures");
  snapshot_failures = counter("capplan_snapshot_failures_total",
                              "Absorbed snapshot write failures");
  promotions = counter("capplan_guardrail_promotions_total",
                       "Challengers installed as champion");
  promotions_rejected =
      counter("capplan_guardrail_promotions_rejected_total",
              "Challengers the promotion gate rejected (champion retained)");
  rollbacks = counter("capplan_guardrail_rollbacks_total",
                      "Champions rolled back on live regression");
  obs_trace_dropped = counter("capplan_obs_trace_dropped_total",
                              "Trace spans overwritten in full ring buffers");
  obs_events_dropped = counter("capplan_obs_events_dropped_total",
                               "Wide events overwritten in full ring buffers");

  auto stage = [this](const char* name) {
    return StageStats(registry->GetHistogram(
        "capplan_stage_latency_ms", {}, {{"stage", name}},
        "Per-stage wall time distribution"));
  };
  ingest_stage = stage("ingest");
  fit_stage = stage("fit");
  forecast_stage = stage("forecast");
  alert_stage = stage("alert");
}

void ServiceTelemetry::EnsureShards(std::size_t n) {
  while (shards.size() < n) {
    const obs::LabelSet labels = {{"shard", std::to_string(shards.size())}};
    auto counter = [&](const char* name, const char* help) {
      return registry->GetCounter(name, labels, help);
    };
    auto histogram = [&](const char* name, const char* help) {
      return StageStats(registry->GetHistogram(name, {}, labels, help));
    };
    ShardTelemetry s;
    s.ticks = counter("capplan_shard_ticks_total", "Shard tick jobs run");
    s.samples_ingested = counter("capplan_shard_samples_ingested_total",
                                 "Raw samples appended by this shard");
    s.refits_dispatched =
        counter("capplan_shard_refits_dispatched_total",
                "Series this shard handed to batch fit jobs");
    s.refits_deferred = counter("capplan_shard_refits_deferred_total",
                                "Refits this shard skipped: short history");
    s.refit_batches = counter("capplan_shard_refit_batches_total",
                              "Batched fit jobs submitted to the pool");
    s.batch_series = counter("capplan_shard_batch_series_total",
                             "Series fitted across those batch jobs");
    s.queue_enqueued = counter("capplan_shard_queue_enqueued_total",
                               "Keys pushed onto the shard's refit queue");
    s.queue_drained = counter("capplan_shard_queue_drained_total",
                              "Keys drained from the shard's refit queue");
    s.fourier_hits =
        counter("capplan_shard_fourier_hits_total",
                "Fourier design columns reused within a refit batch");
    s.fourier_misses =
        counter("capplan_shard_fourier_misses_total",
                "Distinct Fourier designs computed within refit batches");
    s.guardrail_scored =
        counter("capplan_guardrail_samples_scored_total",
                "Hourly actuals scored against the active forecast");
    s.guardrail_drift_alarms =
        counter("capplan_guardrail_drift_alarms_total",
                "Page-Hinkley sustained-error-shift alarms");
    s.guardrail_early_refits =
        counter("capplan_guardrail_early_refits_total",
                "Drift alarms that pulled a refit forward");
    s.tick_overruns = counter("capplan_health_tick_overruns_total",
                              "Shard tick jobs past the watchdog deadline");
    s.health_transitions = counter("capplan_health_transitions_total",
                                   "Health-state machine transitions");
    auto gauge = [&](const char* name, const char* help) {
      return registry->GetGauge(name, labels, help);
    };
    s.guardrail_live_mape =
        gauge("capplan_guardrail_live_mape_ratio",
              "Worst rolling live MAPE across the shard's keys (fraction)");
    s.guardrail_ph_statistic =
        gauge("capplan_guardrail_ph_statistic_ratio",
              "Worst Page-Hinkley cumulative statistic (APE units)");
    s.guardrail_ph_samples =
        gauge("capplan_guardrail_ph_samples_count",
              "Most detector samples seen since a key's baseline reset");
    s.health_state = gauge("capplan_health_state",
                           "Shard health: 0 healthy, 1 degraded, 2 critical");
    s.tick_stage = histogram("capplan_shard_tick_latency_ms",
                             "Whole shard tick job wall time");
    s.ingest_stage = histogram("capplan_shard_ingest_latency_ms",
                               "Ingest slice of the shard tick job");
    s.refit_batch_stage = histogram("capplan_shard_refit_batch_ms",
                                    "One batched fit job, end to end");
    shards.push_back(std::move(s));
  }
}

namespace {

void WriteStage(JsonWriter* w, const std::string& key,
                const StageStats& stage) {
  w->Key(key);
  w->BeginObject();
  w->Integer("count", static_cast<long long>(stage.count()));
  w->Number("total_ms", stage.total_ms());
  w->Number("mean_ms", stage.mean_ms());
  w->Number("max_ms", stage.max_ms());
  w->Number("min_ms", stage.min_ms());
  w->Number("p50_ms", stage.p50_ms());
  w->Number("p99_ms", stage.p99_ms());
  w->EndObject();
}

}  // namespace

std::string TelemetryToJson(const ServiceTelemetry& t, bool pretty) {
  JsonWriter w(pretty);
  w.BeginObject();
  w.Integer("ticks", static_cast<long long>(t.ticks.value()));
  w.Integer("polls", static_cast<long long>(t.polls.value()));
  w.Integer("samples_ingested",
            static_cast<long long>(t.samples_ingested.value()));
  w.Integer("hourly_points", static_cast<long long>(t.hourly_points.value()));
  w.Integer("refits_dispatched",
            static_cast<long long>(t.refits_dispatched.value()));
  w.Integer("refits_succeeded",
            static_cast<long long>(t.refits_succeeded.value()));
  w.Integer("refits_failed", static_cast<long long>(t.refits_failed.value()));
  w.Integer("refits_deferred",
            static_cast<long long>(t.refits_deferred.value()));
  w.Integer("refits_degraded",
            static_cast<long long>(t.refits_degraded.value()));
  w.Integer("quality_gated", static_cast<long long>(t.quality_gated.value()));
  w.Integer("quarantines", static_cast<long long>(t.quarantines.value()));
  w.Integer("alerts_raised", static_cast<long long>(t.alerts_raised.value()));
  w.Integer("alerts_cleared", static_cast<long long>(t.alerts_cleared.value()));
  w.Integer("forecast_cache_hits",
            static_cast<long long>(t.forecast_cache_hits.value()));
  w.Integer("forecast_exhausted_ticks",
            static_cast<long long>(t.forecast_exhausted_ticks.value()));
  w.Integer("journal_events", static_cast<long long>(t.journal_events.value()));
  w.Integer("snapshots_written",
            static_cast<long long>(t.snapshots_written.value()));
  w.Integer("io_errors", static_cast<long long>(t.io_errors.value()));
  w.Integer("journal_write_failures",
            static_cast<long long>(t.journal_write_failures.value()));
  w.Integer("snapshot_failures",
            static_cast<long long>(t.snapshot_failures.value()));
  w.Key("stages");
  w.BeginObject();
  WriteStage(&w, "ingest", t.ingest_stage);
  WriteStage(&w, "fit", t.fit_stage);
  WriteStage(&w, "forecast", t.forecast_stage);
  WriteStage(&w, "alert", t.alert_stage);
  w.EndObject();
  // Strictly appended after the frozen counter/stages prefix: per-shard
  // stage distributions (and the queue counters that reveal skew). An
  // unsharded service emits a one-element array.
  w.BeginArray("shards");
  for (std::size_t i = 0; i < t.shards.size(); ++i) {
    const ShardTelemetry& s = t.shards[i];
    w.BeginObject();
    w.Integer("shard", static_cast<long long>(i));
    w.Integer("ticks", static_cast<long long>(s.ticks.value()));
    w.Integer("refit_batches",
              static_cast<long long>(s.refit_batches.value()));
    w.Integer("queue_enqueued",
              static_cast<long long>(s.queue_enqueued.value()));
    w.Integer("queue_drained",
              static_cast<long long>(s.queue_drained.value()));
    WriteStage(&w, "tick", s.tick_stage);
    WriteStage(&w, "ingest", s.ingest_stage);
    WriteStage(&w, "refit_batch", s.refit_batch_stage);
    w.EndObject();
  }
  w.EndArray();
  // Appended after the shards array (still additive wrt the golden prefix):
  // the forecast-guardrail and deep-health summaries. Scoring counters are
  // summed across shards; detector gauges report the worst key anywhere.
  {
    std::uint64_t scored = 0, alarms = 0, early = 0, overruns = 0;
    double worst_mape = 0.0, worst_stat = 0.0, most_samples = 0.0;
    for (const ShardTelemetry& s : t.shards) {
      scored += s.guardrail_scored.value();
      alarms += s.guardrail_drift_alarms.value();
      early += s.guardrail_early_refits.value();
      overruns += s.tick_overruns.value();
      if (s.guardrail_live_mape.value() > worst_mape) {
        worst_mape = s.guardrail_live_mape.value();
      }
      if (s.guardrail_ph_statistic.value() > worst_stat) {
        worst_stat = s.guardrail_ph_statistic.value();
      }
      if (s.guardrail_ph_samples.value() > most_samples) {
        most_samples = s.guardrail_ph_samples.value();
      }
    }
    w.Key("guardrail");
    w.BeginObject();
    w.Integer("samples_scored", static_cast<long long>(scored));
    w.Integer("drift_alarms", static_cast<long long>(alarms));
    w.Integer("early_refits", static_cast<long long>(early));
    w.Integer("promotions", static_cast<long long>(t.promotions.value()));
    w.Integer("promotions_rejected",
              static_cast<long long>(t.promotions_rejected.value()));
    w.Integer("rollbacks", static_cast<long long>(t.rollbacks.value()));
    w.Number("live_mape_max", worst_mape);
    w.Number("ph_statistic_max", worst_stat);
    w.Number("ph_samples_max", most_samples);
    w.EndObject();
    w.Key("health");
    w.BeginObject();
    w.Integer("tick_overruns", static_cast<long long>(overruns));
    w.BeginArray("states");
    for (const ShardTelemetry& s : t.shards) {
      w.ArrayNumber(s.health_state.value());
    }
    w.EndArray();
    w.EndObject();
  }
  // Appended after "health" (still additive wrt the golden prefix): the
  // flight-recorder drop counters. Both stay 0 unless a ring wrapped since
  // the last export refresh.
  w.Key("obs");
  w.BeginObject();
  w.Integer("trace_dropped",
            static_cast<long long>(t.obs_trace_dropped.value()));
  w.Integer("events_dropped",
            static_cast<long long>(t.obs_events_dropped.value()));
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace capplan::service
