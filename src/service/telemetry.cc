#include "service/telemetry.h"

#include "common/json_writer.h"

namespace capplan::service {

namespace {

void WriteStage(JsonWriter* w, const std::string& key,
                const StageStats& stage) {
  w->Key(key);
  w->BeginObject();
  w->Integer("count", static_cast<long long>(stage.count));
  w->Number("total_ms", stage.total_ms);
  w->Number("mean_ms", stage.mean_ms());
  w->Number("max_ms", stage.max_ms);
  w->EndObject();
}

}  // namespace

std::string TelemetryToJson(const ServiceTelemetry& t, bool pretty) {
  JsonWriter w(pretty);
  w.BeginObject();
  w.Integer("ticks", static_cast<long long>(t.ticks));
  w.Integer("polls", static_cast<long long>(t.polls));
  w.Integer("samples_ingested", static_cast<long long>(t.samples_ingested));
  w.Integer("hourly_points", static_cast<long long>(t.hourly_points));
  w.Integer("refits_dispatched", static_cast<long long>(t.refits_dispatched));
  w.Integer("refits_succeeded", static_cast<long long>(t.refits_succeeded));
  w.Integer("refits_failed", static_cast<long long>(t.refits_failed));
  w.Integer("refits_deferred", static_cast<long long>(t.refits_deferred));
  w.Integer("refits_degraded", static_cast<long long>(t.refits_degraded));
  w.Integer("quality_gated", static_cast<long long>(t.quality_gated));
  w.Integer("quarantines", static_cast<long long>(t.quarantines));
  w.Integer("alerts_raised", static_cast<long long>(t.alerts_raised));
  w.Integer("alerts_cleared", static_cast<long long>(t.alerts_cleared));
  w.Integer("forecast_cache_hits",
            static_cast<long long>(t.forecast_cache_hits));
  w.Integer("forecast_exhausted_ticks",
            static_cast<long long>(t.forecast_exhausted_ticks));
  w.Integer("journal_events", static_cast<long long>(t.journal_events));
  w.Integer("snapshots_written", static_cast<long long>(t.snapshots_written));
  w.Integer("io_errors", static_cast<long long>(t.io_errors));
  w.Integer("journal_write_failures",
            static_cast<long long>(t.journal_write_failures));
  w.Integer("snapshot_failures", static_cast<long long>(t.snapshot_failures));
  w.Key("stages");
  w.BeginObject();
  WriteStage(&w, "ingest", t.ingest_stage);
  WriteStage(&w, "fit", t.fit_stage);
  WriteStage(&w, "forecast", t.forecast_stage);
  WriteStage(&w, "alert", t.alert_stage);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace capplan::service
