#include "service/shard.h"

namespace capplan::service {

std::uint64_t ShardHash(const std::string& key) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64
  for (char c : key) {
    h = (h ^ static_cast<std::uint64_t>(static_cast<unsigned char>(c))) *
        0x100000001b3ULL;
  }
  return h;
}

std::size_t ShardOf(const std::string& key, std::size_t n_shards) {
  if (n_shards <= 1) return 0;
  return static_cast<std::size_t>(ShardHash(key) %
                                  static_cast<std::uint64_t>(n_shards));
}

}  // namespace capplan::service
