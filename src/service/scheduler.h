#ifndef CAPPLAN_SERVICE_SCHEDULER_H_
#define CAPPLAN_SERVICE_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace capplan::service {

// Retry/backoff knobs for failing refits. A key that keeps failing backs off
// exponentially and is eventually quarantined so one bad series cannot stall
// the estate's dispatch rotation.
struct RetryPolicy {
  std::int64_t initial_backoff_seconds = 3600;
  double backoff_multiplier = 2.0;
  std::int64_t max_backoff_seconds = 24 * 3600;
  int quarantine_after_failures = 4;  // consecutive failures
  // Jitter fraction in [0, 1). 0 keeps the exact exponential delays; a
  // positive value scales each delay by a factor in [1-j, 1+j] derived
  // deterministically from (jitter_seed, key, failures), so an estate-wide
  // outage does not make every key retry in lockstep while the schedule
  // stays reproducible run to run.
  double backoff_jitter = 0.0;
  std::uint64_t jitter_seed = 0x7265747279ULL;

  // Backoff delay after the `failures`-th consecutive failure (1-based).
  std::int64_t BackoffFor(int failures) const;
  // Per-key jittered delay; identical to BackoffFor when backoff_jitter == 0.
  std::int64_t JitteredBackoffFor(const std::string& key, int failures) const;
};

// One key's position in the retrain rotation (also the snapshot row format).
struct ScheduleEntry {
  std::string key;
  std::int64_t due_epoch = 0;
  int consecutive_failures = 0;
  bool quarantined = false;
  bool in_flight = false;  // dispatched, outcome pending; never persisted
};

// Due-time priority queue over the watched keys, driven by the staleness
// policy: the service schedules each key at `fitted_at + max_age`, pulls it
// forward when live RMSE degrades, and this class decides what to dispatch
// each tick. Entries taken by TakeDue keep their due time until an outcome
// is reported, so a crash between dispatch and completion re-dispatches the
// key on recovery.
class RetrainScheduler {
 public:
  explicit RetrainScheduler(RetryPolicy policy = {}) : policy_(policy) {}

  // Inserts `key` or moves its due time (either direction). Resets nothing
  // else; quarantined keys stay quarantined.
  void ScheduleAt(const std::string& key, std::int64_t due_epoch);

  // Moves `key`'s due time earlier; later times are ignored. Unknown keys
  // are inserted.
  void PullForward(const std::string& key, std::int64_t due_epoch);

  // Pops every key due at `now_epoch` (not quarantined, not already in
  // flight), marks it in flight, and returns the keys in due-time order.
  std::vector<std::string> TakeDue(std::int64_t now_epoch);

  // Outcome callbacks for keys previously returned by TakeDue.
  void OnSuccess(const std::string& key, std::int64_t next_due_epoch);
  // Records a failure; returns true when this failure quarantined the key,
  // otherwise the key is rescheduled at now + backoff.
  bool OnFailure(const std::string& key, std::int64_t now_epoch);
  // Releases an in-flight mark and reschedules without touching the failure
  // count (e.g. not enough history yet).
  void Defer(const std::string& key, std::int64_t due_epoch);

  bool IsQuarantined(const std::string& key) const;
  std::vector<std::string> QuarantinedKeys() const;
  // Puts a quarantined key back into the rotation at `due_epoch`.
  Status Release(const std::string& key, std::int64_t due_epoch);

  Result<ScheduleEntry> Get(const std::string& key) const;
  std::vector<ScheduleEntry> Entries() const;  // key order
  std::size_t size() const { return entries_.size(); }

  // Recovery path: overwrites the entry for `entry.key` (in_flight cleared).
  void Restore(ScheduleEntry entry);

  const RetryPolicy& policy() const { return policy_; }

  // CSV snapshot of every entry (in_flight is not persisted).
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  // Snapshot I/O over an explicit entry list, for callers that merge or
  // split schedules across several schedulers (the sharded estate service
  // saves one CSV for all shards and routes rows back by key hash on load).
  // Entries are written sorted by key; the format matches Save/Load.
  static Status SaveEntries(const std::string& path,
                            std::vector<ScheduleEntry> entries);
  static Result<std::vector<ScheduleEntry>> LoadEntries(
      const std::string& path);

 private:
  void Push(const std::string& key, std::int64_t due_epoch);

  RetryPolicy policy_;
  std::map<std::string, ScheduleEntry> entries_;
  // Min-heap with lazy invalidation: stale pairs are skipped when popped.
  using HeapItem = std::pair<std::int64_t, std::string>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>>
      heap_;
};

}  // namespace capplan::service

#endif  // CAPPLAN_SERVICE_SCHEDULER_H_
