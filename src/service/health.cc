#include "service/health.h"

namespace capplan::service {

const char* HealthStateName(HealthState state) {
  switch (state) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kDegraded:
      return "degraded";
    case HealthState::kCritical:
      return "critical";
  }
  return "?";
}

ShardHealth::ShardHealth(HealthPolicy policy) : policy_(policy) {
  if (policy_.window_ticks == 0) policy_.window_ticks = 1;
  if (policy_.recover_ticks == 0) policy_.recover_ticks = 1;
}

HealthState ShardHealth::Evaluate(const HealthSignals& signals) {
  history_.push_back(
      {signals.tick_overruns, signals.rollbacks, signals.io_errors});
  while (history_.size() > policy_.window_ticks + 1) history_.pop_front();
  const CumulativeSample& oldest = history_.front();
  const std::uint64_t overruns = signals.tick_overruns - oldest.tick_overruns;
  const std::uint64_t rollbacks = signals.rollbacks - oldest.rollbacks;
  const std::uint64_t io_errors = signals.io_errors - oldest.io_errors;

  // Worst argument across all signals, remembering which signal made it.
  HealthState target = HealthState::kHealthy;
  const char* why = "nominal";
  auto argue = [&](bool critical, bool degraded, const char* reason) {
    if (critical && target < HealthState::kCritical) {
      target = HealthState::kCritical;
      why = reason;
    } else if (degraded && target < HealthState::kDegraded) {
      target = HealthState::kDegraded;
      why = reason;
    }
  };
  argue(signals.refit_queue_depth >= policy_.critical_queue_depth,
        signals.refit_queue_depth >= policy_.degraded_queue_depth,
        "refit queue depth");
  argue(signals.quarantined_keys >= policy_.critical_quarantined,
        signals.quarantined_keys >= policy_.degraded_quarantined,
        "quarantined keys");
  argue(overruns >= policy_.critical_overruns,
        overruns >= policy_.degraded_overruns, "tick deadline overruns");
  argue(rollbacks >= policy_.critical_rollbacks,
        rollbacks >= policy_.degraded_rollbacks, "rollback storm");
  argue(io_errors >= policy_.critical_io_errors,
        io_errors >= policy_.degraded_io_errors, "journal/store I/O errors");
  // Accuracy burn degrades but never escalates to critical on its own: the
  // shard is still serving, just serving forecasts that miss their SLO.
  argue(false,
        policy_.degraded_slo_burn > 0.0 &&
            signals.slo_fast_burn >= policy_.degraded_slo_burn &&
            signals.slo_slow_burn >= policy_.degraded_slo_burn,
        "accuracy slo burn");

  if (target >= state_) {
    // Escalate (or hold) immediately; any recovery streak is broken.
    if (target > state_) ++transitions_;
    state_ = target;
    reason_ = why;
    calm_evals_ = 0;
  } else {
    // Signals argue for a lower state: step down one level only after
    // recover_ticks consecutive calm evaluations (hysteresis).
    if (++calm_evals_ >= policy_.recover_ticks) {
      state_ = static_cast<HealthState>(static_cast<int>(state_) - 1);
      reason_ = state_ == HealthState::kHealthy ? "nominal" : reason_;
      calm_evals_ = 0;
      ++transitions_;
    }
  }
  return state_;
}

}  // namespace capplan::service
