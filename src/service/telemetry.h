#ifndef CAPPLAN_SERVICE_TELEMETRY_H_
#define CAPPLAN_SERVICE_TELEMETRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.h"

namespace capplan::service {

// Latency distribution for one service stage, backed by a fixed-bucket
// histogram in the telemetry's MetricsRegistry (obs/metrics.h). The earlier
// mean/max accumulator hid the shape of the distribution — a single 40 s
// grid fit among hundreds of 50 ms ones was invisible in the mean — so the
// stats now expose min/p50/p90/p99 alongside the original fields.
class StageStats {
 public:
  StageStats() = default;
  explicit StageStats(obs::Histogram histogram) : histogram_(histogram) {}

  void Record(double ms) { histogram_.Observe(ms); }
  // Record() plus exemplar capture: the covering bucket remembers this
  // observation's trace span and wide-event ids for OpenMetrics export, so
  // a latency outlier links straight to its flight-recorder record.
  void RecordWithExemplar(double ms, std::uint64_t span_id,
                          std::uint64_t event_id) {
    histogram_.ObserveWithExemplar(ms, span_id, event_id);
  }

  std::uint64_t count() const { return histogram_.count(); }
  double total_ms() const { return histogram_.sum(); }
  double mean_ms() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : histogram_.sum() / static_cast<double>(n);
  }
  double min_ms() const { return histogram_.min(); }
  double max_ms() const { return histogram_.max(); }
  // Interpolated within the covering histogram bucket, clamped to the
  // observed [min, max] — see obs::HistogramCell::Quantile.
  double p50_ms() const { return histogram_.quantile(0.50); }
  double p90_ms() const { return histogram_.quantile(0.90); }
  double p99_ms() const { return histogram_.quantile(0.99); }

 private:
  obs::Histogram histogram_;  // detached (all-zero) if default-constructed
};

// Per-shard slice of the service telemetry (labels {shard="i"} on every
// cell). One entry per estate shard, created by
// ServiceTelemetry::EnsureShards; an unsharded service has exactly one.
// These are the numbers that make shard skew visible: a lagging shard shows
// up as a tick-latency outlier and a growing enqueued-minus-drained gap.
struct ShardTelemetry {
  obs::Counter ticks;              // shard tick jobs run
  obs::Counter samples_ingested;   // raw samples appended by this shard
  obs::Counter refits_dispatched;  // series handed to batch fit jobs
  obs::Counter refits_deferred;    // skipped: short history
  obs::Counter refit_batches;      // batch jobs submitted to the pool
  obs::Counter batch_series;       // series across those batches
  obs::Counter queue_enqueued;     // keys pushed onto the refit queue
  obs::Counter queue_drained;      // keys popped off it (depth = difference)
  obs::Counter fourier_hits;       // batched-refit design-column reuses
  obs::Counter fourier_misses;     // distinct designs computed

  // Forecast guardrail (quality::LiveAccuracyTracker) — live scoring of
  // hourly actuals against the active cached forecast, per shard.
  obs::Counter guardrail_scored;        // actuals scored
  obs::Counter guardrail_drift_alarms;  // Page-Hinkley sustained-shift alarms
  obs::Counter guardrail_early_refits;  // alarms that pulled a refit forward
  // Deep health of the shard.
  obs::Counter tick_overruns;        // tick-deadline watchdog hits
  obs::Counter health_transitions;   // health-state machine transitions
  obs::Gauge guardrail_live_mape;    // worst rolling live MAPE across keys
  obs::Gauge guardrail_ph_statistic; // worst Page-Hinkley statistic
  obs::Gauge guardrail_ph_samples;   // most detector samples since baseline
  obs::Gauge health_state;           // 0 healthy / 1 degraded / 2 critical

  StageStats tick_stage;         // whole shard tick job wall time
  StageStats ingest_stage;       // ingest slice of the tick job
  StageStats refit_batch_stage;  // one batch fit job, end to end
};

// Counters and per-stage latencies of the estate planning daemon. The
// paper's production deployment (Section 8) is an always-on service; these
// are the numbers an operator would watch to know it is healthy.
//
// The struct is now a facade over an obs::MetricsRegistry: each field is a
// handle into the registry, so the same numbers that feed TelemetryToJson
// are scrapeable through the Prometheus exporter (obs/export.h) with no
// double bookkeeping. Handles keep the original plain-integer ergonomics
// (++, +=, =, implicit read) so call sites did not change.
struct ServiceTelemetry {
  ServiceTelemetry();
  ServiceTelemetry(const ServiceTelemetry&) = delete;
  ServiceTelemetry& operator=(const ServiceTelemetry&) = delete;

  // Registry owning every cell below; shared so an exporter can outlive a
  // scrape call. Declared first: handles must not outlive it.
  std::shared_ptr<obs::MetricsRegistry> registry;

  obs::Counter ticks;
  obs::Counter polls;               // agent samples requested
  obs::Counter samples_ingested;    // raw samples appended
  obs::Counter hourly_points;       // hourly aggregates appended
  obs::Counter refits_dispatched;
  obs::Counter refits_succeeded;
  obs::Counter refits_failed;
  obs::Counter refits_deferred;     // not enough history yet
  obs::Counter refits_degraded;     // forecast came from a ladder rung
  obs::Counter quality_gated;       // sentinel kept a fit off the grid
  obs::Counter quarantines;
  obs::Counter alerts_raised;
  obs::Counter alerts_cleared;
  obs::Counter forecast_cache_hits;     // ticks served from a cached fit
  obs::Counter forecast_exhausted_ticks;  // cache older than its horizon
  obs::Counter journal_events;
  obs::Counter snapshots_written;

  // Write-path failures the service absorbed to stay available. A non-zero
  // count means durability is degraded (recovery would lose the failed
  // events/snapshots) even though the daemon kept serving.
  obs::Counter io_errors;               // all absorbed write failures
  obs::Counter journal_write_failures;  // subset: journal appends
  obs::Counter snapshot_failures;       // subset: snapshot writes

  // Champion/challenger guardrail outcomes (driver side; per-shard scoring
  // counters live in ShardTelemetry).
  obs::Counter promotions;           // challengers installed as champion
  obs::Counter promotions_rejected;  // challengers the gate kept out
  obs::Counter rollbacks;            // champions rolled back on regression

  // Flight-recorder ring overwrites (cumulative, refreshed from the
  // obs::Tracer / obs::EventLog singletons just before each export). A
  // rising rate means the rings are undersized for the event volume and
  // recent history is being lost.
  obs::Counter obs_trace_dropped;
  obs::Counter obs_events_dropped;

  StageStats ingest_stage;
  StageStats fit_stage;      // worker wall time per refit
  StageStats forecast_stage; // breach scan over cached forecasts
  StageStats alert_stage;    // alert state transitions + journalling

  // Grows `shards` to n entries, registering each one's capplan_shard_*
  // cells with a {shard="i"} label. Idempotent; never shrinks.
  void EnsureShards(std::size_t n);
  std::vector<ShardTelemetry> shards;
};

// Serializes the telemetry block via the shared JSON writer — the same
// integration surface as core::ReportToJson. Field order and formatting of
// the pre-registry fields are frozen (goldens in estate_service_test.cc);
// the histogram-derived stage fields (min_ms, p50_ms, p99_ms) and the
// trailing per-shard "shards" array are additive — strictly appended after
// the frozen prefix, never inserted into it.
std::string TelemetryToJson(const ServiceTelemetry& telemetry,
                            bool pretty = false);

}  // namespace capplan::service

#endif  // CAPPLAN_SERVICE_TELEMETRY_H_
