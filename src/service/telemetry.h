#ifndef CAPPLAN_SERVICE_TELEMETRY_H_
#define CAPPLAN_SERVICE_TELEMETRY_H_

#include <cstdint>
#include <string>

namespace capplan::service {

// Latency accumulator for one service stage. All mutation happens on the
// service's driver thread (worker fit durations are recorded at collection
// time), so no synchronisation is needed.
struct StageStats {
  std::uint64_t count = 0;
  double total_ms = 0.0;
  double max_ms = 0.0;

  void Record(double ms) {
    ++count;
    total_ms += ms;
    if (ms > max_ms) max_ms = ms;
  }
  double mean_ms() const {
    return count == 0 ? 0.0 : total_ms / static_cast<double>(count);
  }
};

// Counters and per-stage latencies of the estate planning daemon. The
// paper's production deployment (Section 8) is an always-on service; these
// are the numbers an operator would watch to know it is healthy.
struct ServiceTelemetry {
  std::uint64_t ticks = 0;
  std::uint64_t polls = 0;               // agent samples requested
  std::uint64_t samples_ingested = 0;    // raw samples appended
  std::uint64_t hourly_points = 0;       // hourly aggregates appended
  std::uint64_t refits_dispatched = 0;
  std::uint64_t refits_succeeded = 0;
  std::uint64_t refits_failed = 0;
  std::uint64_t refits_deferred = 0;     // not enough history yet
  std::uint64_t refits_degraded = 0;     // forecast came from a ladder rung
  std::uint64_t quality_gated = 0;       // sentinel kept a fit off the grid
  std::uint64_t quarantines = 0;
  std::uint64_t alerts_raised = 0;
  std::uint64_t alerts_cleared = 0;
  std::uint64_t forecast_cache_hits = 0;     // ticks served from a cached fit
  std::uint64_t forecast_exhausted_ticks = 0;  // cache older than its horizon
  std::uint64_t journal_events = 0;
  std::uint64_t snapshots_written = 0;

  // Write-path failures the service absorbed to stay available. A non-zero
  // count means durability is degraded (recovery would lose the failed
  // events/snapshots) even though the daemon kept serving.
  std::uint64_t io_errors = 0;               // all absorbed write failures
  std::uint64_t journal_write_failures = 0;  // subset: journal appends
  std::uint64_t snapshot_failures = 0;       // subset: snapshot writes

  StageStats ingest_stage;
  StageStats fit_stage;      // worker wall time per refit
  StageStats forecast_stage; // breach scan over cached forecasts
  StageStats alert_stage;    // alert state transitions + journalling
};

// Serializes the telemetry block via the shared JSON writer — the same
// integration surface as core::ReportToJson.
std::string TelemetryToJson(const ServiceTelemetry& telemetry,
                            bool pretty = false);

}  // namespace capplan::service

#endif  // CAPPLAN_SERVICE_TELEMETRY_H_
