#include "service/estate_service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "common/fault.h"
#include "core/batch_refit.h"
#include "core/selector.h"
#include "core/split.h"
#include "models/arima_spec.h"
#include "obs/event_log.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "repo/csv.h"

namespace capplan::service {

namespace {

using Clock = std::chrono::steady_clock;

double ElapsedMs(Clock::time_point since) {
  return std::chrono::duration<double, std::milli>(Clock::now() - since)
      .count();
}

std::string FmtDouble(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string JoinDoubles(const std::vector<double>& values) {
  std::string out;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ';';
    out += FmtDouble(values[i]);
  }
  return out;
}

Result<std::vector<double>> ParseDoubles(const std::string& joined) {
  std::vector<double> values;
  if (joined.empty()) return values;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t pos = joined.find(';', begin);
    const std::string token = pos == std::string::npos
                                  ? joined.substr(begin)
                                  : joined.substr(begin, pos - begin);
    try {
      values.push_back(std::stod(token));
    } catch (...) {
      return Status::IoError("service: bad double '" + token + "'");
    }
    if (pos == std::string::npos) return values;
    begin = pos + 1;
  }
}

Result<std::int64_t> ParseInt64(const std::string& s) {
  try {
    return static_cast<std::int64_t>(std::stoll(s));
  } catch (...) {
    return Status::IoError("service: bad integer '" + s + "'");
  }
}

}  // namespace

std::string EstateService::KeyFor(const workload::ClusterSimulator& cluster,
                                  const WatchConfig& watch) {
  return repo::MetricsRepository::KeyFor(cluster.InstanceName(watch.instance),
                                         watch.metric);
}

EstateService::EstateService(const workload::ClusterSimulator* cluster,
                             std::vector<WatchConfig> watches,
                             EstateServiceConfig config,
                             agent::FaultModel default_faults)
    : cluster_(cluster),
      watches_(std::move(watches)),
      config_(std::move(config)),
      registry_(config_.staleness),
      pool_(config_.fit_threads) {
  if (config_.refit_batch_size == 0) config_.refit_batch_size = 1;
  agents_.reserve(watches_.size());
  keys_.reserve(watches_.size());
  for (std::size_t i = 0; i < watches_.size(); ++i) {
    const WatchConfig& w = watches_[i];
    agents_.emplace_back(cluster_, w.faults.value_or(default_faults),
                         config_.poll_seconds);
    keys_.push_back(cluster_ != nullptr ? KeyFor(*cluster_, w)
                                        : std::to_string(i));
    watch_index_[keys_.back()] = i;
  }
  const std::size_t n_shards = std::max<std::size_t>(1, config_.n_shards);
  telemetry_.EnsureShards(n_shards);
  obs::SloTracker::Options accuracy_slo;
  if (config_.slo.enabled) {
    accuracy_slo.objective = config_.slo.accuracy_objective;
    accuracy_slo.fast_window_seconds = config_.slo.accuracy_fast_window_seconds;
    accuracy_slo.slow_window_seconds = config_.slo.accuracy_slow_window_seconds;
    obs::SloTracker::Options latency_slo;
    latency_slo.objective = config_.slo.latency_objective;
    latency_slo.fast_window_seconds = config_.slo.latency_fast_window_seconds;
    latency_slo.slow_window_seconds = config_.slo.latency_slow_window_seconds;
    slo_set_ = std::make_shared<obs::SloSet>();
    accuracy_slo_ = slo_set_->Add("forecast_accuracy", accuracy_slo);
    slo_set_->Add("serve_latency", latency_slo);
  }
  shards_.reserve(n_shards);
  for (std::size_t s = 0; s < n_shards; ++s) {
    auto shard = std::make_unique<EstateShard>(config_.retry);
    shard->id = s;
    shard->telemetry = &telemetry_.shards[s];
    shard->health = ShardHealth(config_.guardrail.health);
    if (config_.slo.enabled) {
      shard->accuracy_slo = std::make_unique<obs::SloTracker>(accuracy_slo);
    }
    // The unsharded service keeps unlabelled store gauges (the layout every
    // dashboard predates); sharded stores need the shard label so N gauges
    // do not clobber one another on Set.
    obs::LabelSet store_labels;
    if (n_shards > 1) store_labels.push_back({"shard", std::to_string(s)});
    shard->metrics.BindMetrics(telemetry_.registry.get(), store_labels);
    shards_.push_back(std::move(shard));
  }
  for (std::size_t i = 0; i < keys_.size(); ++i) {
    shards_[ShardOf(keys_[i], n_shards)]->watch_ids.push_back(i);
  }
  if (telemetry_.registry != nullptr) {
    view_swaps_ = telemetry_.registry->GetCounter(
        "capplan_serve_view_swaps_total", {},
        "EstateView snapshots published to the serving layer");
  }
  if (n_shards > 1) {
    tick_pool_ = std::make_unique<ThreadPool>(
        std::min(n_shards, core::DefaultThreadCount()));
  }
}

EstateService::~EstateService() = default;

Status EstateService::ForEachShard(
    const std::function<Status(EstateShard*)>& fn) {
  if (tick_pool_ == nullptr) return fn(shards_[0].get());
  std::vector<std::future<Status>> pending;
  pending.reserve(shards_.size());
  for (auto& shard : shards_) {
    EstateShard* s = shard.get();
    pending.push_back(tick_pool_->Submit([&fn, s] { return fn(s); }));
  }
  // Join everything before propagating: a failed shard must not leave
  // siblings running against state the caller thinks is quiesced.
  Status first = Status::OK();
  for (auto& f : pending) {
    Status st = f.get();
    if (first.ok() && !st.ok()) first = st;
  }
  return first;
}

Status EstateService::Start() {
  if (started_) {
    return Status::FailedPrecondition("service: already started");
  }
  if (cluster_ == nullptr) {
    return Status::FailedPrecondition("service: no cluster attached");
  }
  if (watches_.empty()) {
    return Status::InvalidArgument("service: no watches configured");
  }
  if (config_.tick_seconds <= 0 || config_.tick_seconds % 3600 != 0) {
    return Status::InvalidArgument(
        "service: tick_seconds must be a positive multiple of 3600");
  }
  if (!config_.state_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(config_.state_dir, ec);
    if (ec) {
      return Status::IoError("service: cannot create state dir " +
                             config_.state_dir + ": " + ec.message());
    }
    CAPPLAN_ASSIGN_OR_RETURN(journal_, EventJournal::Open(JournalPath()));
  }
  now_ = cluster_->start_epoch();
  cursor_ = now_;
  if (config_.warmup_days > 0) {
    const auto t0 = Clock::now();
    const std::int64_t warmup_end =
        now_ + static_cast<std::int64_t>(config_.warmup_days) * 86400;
    const std::int64_t from = cursor_;
    CAPPLAN_RETURN_NOT_OK(ForEachShard([this, from, warmup_end](
                                           EstateShard* shard) {
      return IngestShard(shard, from, warmup_end);
    }));
    cursor_ = warmup_end;
    now_ = warmup_end;
    telemetry_.ingest_stage.Record(ElapsedMs(t0));
  }
  for (const auto& key : keys_) {
    ShardForKey(key).scheduler.ScheduleAt(key, now_);
  }
  started_ = true;
  PublishView();
  return Status::OK();
}

Status EstateService::IngestShard(EstateShard* shard, std::int64_t from_epoch,
                                  std::int64_t to_epoch,
                                  std::size_t* samples_out) {
  obs::TraceSpan ingest_span("shard.ingest", "service");
  if (to_epoch <= from_epoch) return Status::OK();
  const std::int64_t span = to_epoch - from_epoch;
  if (span % config_.poll_seconds != 0) {
    return Status::InvalidArgument(
        "service: ingest window is not a whole number of polls");
  }
  const std::size_t n_polls =
      static_cast<std::size_t>(span / config_.poll_seconds);
  for (std::size_t id : shard->watch_ids) {
    CAPPLAN_ASSIGN_OR_RETURN(
        tsa::TimeSeries chunk,
        agents_[id].Collect(watches_[id].instance, watches_[id].metric,
                            from_epoch, n_polls));
    chunk.set_name(keys_[id]);
    CAPPLAN_RETURN_NOT_OK(shard->metrics.Append(keys_[id], chunk));
    telemetry_.polls += n_polls;
    telemetry_.samples_ingested += chunk.size();
    telemetry_.hourly_points += static_cast<std::uint64_t>(span / 3600);
    shard->telemetry->samples_ingested.Inc(chunk.size());
    if (samples_out != nullptr) *samples_out += chunk.size();
  }
  return Status::OK();
}

void EstateService::CheckStalenessShard(EstateShard* shard) {
  for (std::size_t id : shard->watch_ids) {
    const std::string& key = keys_[id];
    auto entry = shard->scheduler.Get(key);
    if (entry.ok() && (entry->quarantined || entry->in_flight)) continue;
    if (!registry_.Contains(key)) continue;  // initial fit already scheduled
    auto fc_it = forecasts_.find(key);
    double live_rmse = -1.0;
    if (fc_it != forecasts_.end()) {
      const CachedForecast& fc = fc_it->second;
      const tsa::TimeSeries* hourly = shard->metrics.FindHourly(key);
      if (hourly != nullptr && !hourly->empty()) {
        const std::size_t n = hourly->size();
        const std::size_t begin =
            n > config_.degradation_window_hours
                ? n - config_.degradation_window_hours
                : 0;
        double sum = 0.0;
        std::size_t count = 0;
        for (std::size_t j = begin; j < n; ++j) {
          const std::int64_t t = hourly->TimestampAt(j);
          if (t < fc.start_epoch || fc.step_seconds <= 0) continue;
          const std::int64_t idx = (t - fc.start_epoch) / fc.step_seconds;
          if (idx < 0 ||
              idx >= static_cast<std::int64_t>(fc.forecast.mean.size())) {
            continue;
          }
          const double actual = (*hourly)[j];
          if (std::isnan(actual)) continue;
          const double err =
              actual - fc.forecast.mean[static_cast<std::size_t>(idx)];
          sum += err * err;
          ++count;
        }
        if (count >= config_.degradation_min_points) {
          live_rmse = std::sqrt(sum / static_cast<double>(count));
        }
      }
    }
    // The age half of the policy is already encoded in the schedule (due =
    // fitted_at + max_age); this pulls the refit forward on degradation.
    if (registry_.IsStale(key, now_, live_rmse)) {
      shard->scheduler.PullForward(key, now_);
    }
  }
}

void EstateService::ScoreShard(EstateShard* shard) {
  if (!config_.guardrail.enabled) return;
  obs::TraceSpan span("guardrail.score", "service");
  for (std::size_t id : shard->watch_ids) {
    const std::string& key = keys_[id];
    const auto fc_it = forecasts_.find(key);
    if (fc_it == forecasts_.end()) continue;
    const CachedForecast& fc = fc_it->second;
    if (fc.step_seconds <= 0 || fc.forecast.mean.empty()) continue;
    const tsa::TimeSeries* hourly = shard->metrics.FindHourly(key);
    if (hourly == nullptr || hourly->empty()) continue;
    auto entry_it = shard->guardrail.find(key);
    if (entry_it == shard->guardrail.end()) {
      EstateShard::GuardrailEntry fresh;
      fresh.tracker = quality::LiveAccuracyTracker(config_.guardrail.tracker);
      // First sight of the key: the high-water mark starts at the previous
      // tick's cursor, so only points this tick ingested are scored — a
      // recovery re-poll of weeks of history must not flood the detector.
      fresh.last_scored_epoch = cursor_;
      entry_it = shard->guardrail.emplace(key, std::move(fresh)).first;
    }
    EstateShard::GuardrailEntry& entry = entry_it->second;
    // Walk back from the tail to the first point newer than the high-water
    // mark: a tick appends a handful of hours while the series holds weeks,
    // so the scan touches only the fresh suffix.
    const std::size_t n = hourly->size();
    std::size_t begin = n;
    while (begin > 0 &&
           hourly->TimestampAt(begin - 1) > entry.last_scored_epoch) {
      --begin;
    }
    bool alarmed = false;
    for (std::size_t j = begin; j < n; ++j) {
      const std::int64_t t = hourly->TimestampAt(j);
      entry.last_scored_epoch = t;
      if (t < fc.start_epoch) continue;
      const std::int64_t idx = (t - fc.start_epoch) / fc.step_seconds;
      if (idx < 0 ||
          idx >= static_cast<std::int64_t>(fc.forecast.mean.size())) {
        continue;
      }
      const double actual = (*hourly)[j];
      if (std::isnan(actual)) continue;  // masked outage, not model error
      const auto scored = entry.tracker.Score(
          actual, fc.forecast.mean[static_cast<std::size_t>(idx)]);
      ++shard->telemetry->guardrail_scored;
      // Feed the forecast-accuracy SLO: the scored point is good when its
      // APE stays within tolerance. Shard tracker drives this shard's
      // health burn signal; the estate tracker drives /v1/slo and the
      // capplan_slo_* export. Both are internally synchronized, so
      // concurrent shard tick jobs may share the estate tracker.
      if (slo_set_ != nullptr) {
        const bool good =
            scored.abs_pct_error <= config_.slo.accuracy_ape_tolerance;
        const double at = static_cast<double>(t);
        shard->accuracy_slo->Record(good, at);
        accuracy_slo_->Record(good, at);
      }
      if (scored.drift_alarm) {
        alarmed = true;
        ++shard->telemetry->guardrail_drift_alarms;
      }
    }
    if (alarmed && config_.guardrail.early_refit_on_drift) {
      // Sustained error shift: pull the key's refit forward — but never
      // through the retry ladder. A key that is backing off, quarantined or
      // already in flight keeps its schedule (the detector auto-reset after
      // the alarm provides a natural min_samples cooldown either way).
      const auto sched = shard->scheduler.Get(key);
      if (sched.ok() && !sched->quarantined && !sched->in_flight &&
          sched->consecutive_failures == 0 && sched->due_epoch > now_) {
        shard->scheduler.PullForward(key, now_);
        ++shard->telemetry->guardrail_early_refits;
      }
    }
  }
}

void EstateService::PrepareBatches(EstateShard* shard, ShardTickOutput* out) {
  // Newly due keys join the back of the shard's queue; they stay in_flight
  // in the scheduler until an outcome (or defer) lands, so a key is never
  // queued twice.
  for (const auto& key : shard->scheduler.TakeDue(now_)) {
    shard->refit_queue.push_back(key);
    ++shard->telemetry->queue_enqueued;
  }
  const std::size_t max_batches = config_.max_batches_per_shard_tick;
  std::vector<RefitJobInput> items;
  while (!shard->refit_queue.empty()) {
    if (max_batches > 0 && out->batches.size() >= max_batches) {
      break;  // overload shedding: the rest drains on later ticks
    }
    const std::string key = shard->refit_queue.front();
    shard->refit_queue.pop_front();
    ++shard->telemetry->queue_drained;
    const tsa::TimeSeries* hourly = shard->metrics.FindHourly(key);
    auto policy = core::SplitFor(tsa::Frequency::kHourly);
    const std::size_t needed = policy.ok() ? policy->observations : 1008;
    const std::size_t have = hourly == nullptr ? 0 : hourly->size();
    if (have < needed) {
      // Not enough history yet: come back when the gap has been ingested.
      shard->scheduler.Defer(
          key, now_ + static_cast<std::int64_t>(needed - have) * 3600);
      ++telemetry_.refits_deferred;
      ++shard->telemetry->refits_deferred;
      continue;
    }
    const std::size_t window_len =
        std::min<std::size_t>(config_.fit_window_hours, have);
    auto window = hourly->Slice(have - window_len, window_len);
    if (!window.ok()) {
      shard->scheduler.Defer(key, now_ + 3600);
      ++telemetry_.refits_deferred;
      ++shard->telemetry->refits_deferred;
      continue;
    }
    window->set_name(key);
    core::PipelineOptions opts = config_.pipeline;
    opts.model_repository = nullptr;  // driver thread owns registry updates
    opts.n_threads = 1;               // parallelism is across series
    // capplan_select_* metrics from the routing/lattice stages land in the
    // service registry (handles are lock-free, workers record directly).
    opts.metrics = telemetry_.registry.get();
    // Warm-start the grid search from the previous fit of this series: the
    // stored coefficients seed the matching chains in the selector, so a
    // weekly refit of a stable workload converges in a fraction of the
    // cold-fit iterations (the cold re-score keeps the selection itself
    // unchanged).
    if (auto prev = registry_.Get(key); prev.ok()) {
      if (auto spec = models::ParseArimaSpec(prev->spec); spec.ok()) {
        opts.selector_hint.spec = *spec;
        opts.selector_hint.ar = prev->ar_coef;
        opts.selector_hint.ma = prev->ma_coef;
      }
    }
    if (opts.horizon_override == 0) {
      // One fit's forecast must outlive the staleness period.
      opts.horizon_override = static_cast<std::size_t>(
          config_.staleness.max_age_seconds / 3600 + 48);
    }
    if (config_.always_forecast) opts.degrade_on_failure = true;
    RefitJobInput item;
    item.key = key;
    item.window = std::move(*window);
    item.opts = std::move(opts);
    item.fitted_at_epoch = now_;
    items.push_back(std::move(item));
    ++telemetry_.refits_dispatched;
    ++shard->telemetry->refits_dispatched;
    ++out->refits_dispatched;
    if (items.size() >= config_.refit_batch_size) {
      out->batches.push_back({shard->id, std::move(items)});
      items.clear();
    }
  }
  if (!items.empty()) {
    out->batches.push_back({shard->id, std::move(items)});
  }
}

EstateService::ShardTickOutput EstateService::TickShard(EstateShard* shard) {
  obs::TraceSpan span("shard.tick", "service");
  const auto t0 = Clock::now();
  ShardTickOutput out;
  const auto t_ingest = Clock::now();
  out.status = IngestShard(shard, cursor_, now_, &out.samples_ingested);
  shard->telemetry->ingest_stage.Record(ElapsedMs(t_ingest));
  if (!out.status.ok()) return out;
  CheckStalenessShard(shard);
  ScoreShard(shard);
  PrepareBatches(shard, &out);
  ++shard->telemetry->ticks;
  const double tick_ms = ElapsedMs(t0);
  shard->telemetry->tick_stage.Record(tick_ms);
  if (config_.guardrail.tick_deadline_ms > 0 &&
      tick_ms > config_.guardrail.tick_deadline_ms) {
    // Watchdog: the shard fell behind its tick budget. Counted here (the
    // tick job is this counter's single writer) and folded into the health
    // state machine by the driver after the join.
    ++shard->tick_overruns;
    ++shard->telemetry->tick_overruns;
    obs::EventLog& events = obs::EventLog::Instance();
    if (events.enabled()) {
      obs::WideEvent ev;
      ev.kind = obs::WideEventKind::kTickOverrun;
      ev.set_key("shard.tick");
      ev.shard = static_cast<std::int32_t>(shard->id);
      ev.span_id = span.id();
      ev.dur_ns = static_cast<std::uint64_t>(tick_ms * 1e6);
      const std::uint64_t now_ns = events.NowNs();
      ev.start_ns = now_ns >= ev.dur_ns ? now_ns - ev.dur_ns : 0;
      ev.outcome = "overrun";
      ev.AddAttr("deadline_ms", config_.guardrail.tick_deadline_ms);
      ev.AddAttr("samples_ingested",
                 static_cast<double>(out.samples_ingested));
      events.Emit(ev);
    }
  }
  return out;
}

void EstateService::SubmitBatch(PreparedBatch batch, TickReport* report) {
  if (report != nullptr) ++report->refit_batches;
  EstateShard* shard = shards_[batch.shard].get();
  ++shard->telemetry->refit_batches;
  shard->telemetry->batch_series.Inc(batch.items.size());
  // The job captures copies only, so it stays valid across service shutdown
  // and never races the driver thread. All per-series results plus the
  // batch-level cache stats come back in one BatchOutcome, applied by the
  // driver in CollectFinished.
  in_flight_.push_back(pool_.Submit(
      [items = std::move(batch.items), shard_id = batch.shard,
       quality_opts = config_.quality,
       gate = config_.quality_gate]() -> BatchOutcome {
        obs::TraceSpan batch_span("shard.refit_batch", "service");
        BatchOutcome bo;
        bo.shard = shard_id;
        const auto batch_t0 = Clock::now();
        // One session per batch: the Fourier design columns behind every
        // shared-OLS group are computed for the first series and reused by
        // the rest (identical cadence -> identical design).
        core::RefitBatchSession session;
        bo.outcomes.reserve(items.size());
        for (const RefitJobInput& item : items) {
          obs::TraceSpan refit_span("service.refit", "service");
          FitOutcome out;
          out.key = item.key;
          out.fitted_at_epoch = item.fitted_at_epoch;
          out.span_id = refit_span.id();
          const auto t0 = Clock::now();
          // Sentinel pass: classify, repair what is safe, mask outages.
          // An irreparable window (no usable observation) fails the fit
          // outright — retry/backoff/quarantine handle it from there.
          quality::DataQualitySentinel sentinel(quality_opts);
          auto repaired = sentinel.Repair(item.window, &out.quality);
          if (!repaired.ok()) {
            out.status = repaired.status();
            out.wall_ms = ElapsedMs(t0);
            bo.outcomes.push_back(std::move(out));
            continue;
          }
          core::PipelineOptions run_opts = item.opts;
          if (gate && !out.quality.trainable &&
              run_opts.technique != core::Technique::kHes) {
            // Not enough clean signal for the grid: the selection would
            // only overfit the flagged noise. Start on the HES rung.
            run_opts.technique = core::Technique::kHes;
            out.quality_gated = true;
          }
          auto rep = session.Run(*repaired, run_opts);
          out.wall_ms = ElapsedMs(t0);
          if (!rep.ok()) {
            out.status = rep.status();
            bo.outcomes.push_back(std::move(out));
            continue;
          }
          out.status = Status::OK();
          out.technique = core::TechniqueName(rep->chosen_family);
          out.spec = rep->chosen_spec;
          out.test_rmse = rep->test_accuracy.rmse;
          out.test_mape = rep->test_accuracy.mape;
          out.ar_coef = std::move(rep->chosen_ar);
          out.ma_coef = std::move(rep->chosen_ma);
          for (const auto& season : rep->seasons) {
            out.periods.push_back(static_cast<double>(season.period));
          }
          out.forecast = std::move(rep->forecast);
          out.forecast_start_epoch = rep->forecast_start_epoch;
          out.forecast_step_seconds =
              tsa::FrequencySeconds(item.window.frequency());
          out.degradation = rep->degradation;
          if (out.quality_gated &&
              out.degradation == core::DegradationLevel::kFull) {
            out.degradation = core::DegradationLevel::kHesOnly;
          }
          // Chaos sites: a refit that "succeeds" with a ruined model. The
          // first ruins the held-out accuracy (what the promotion gate
          // sees); the second ruins the forecast itself while keeping the
          // reported accuracy clean — the live guardrail must catch it.
          if (FaultFires("pipeline.poison_fit")) {
            out.test_rmse = 1e6;
            out.test_mape = 1e6;
          }
          if (FaultFires("pipeline.poison_forecast")) {
            for (double& v : out.forecast.mean) v = v * 10.0 + 1e3;
            for (double& v : out.forecast.lower) v = v * 10.0 + 1e3;
            for (double& v : out.forecast.upper) v = v * 10.0 + 1e3;
          }
          bo.outcomes.push_back(std::move(out));
        }
        const core::RefitBatchSession::Stats stats = session.stats();
        bo.fourier_hits = stats.fourier_hits;
        bo.fourier_misses = stats.fourier_misses;
        bo.wall_ms = ElapsedMs(batch_t0);
        return bo;
      }));
}

void EstateService::CollectFinished(bool block, TickReport* report) {
  for (auto it = in_flight_.begin(); it != in_flight_.end();) {
    const bool ready =
        block ||
        it->wait_for(std::chrono::seconds(0)) == std::future_status::ready;
    if (!ready) {
      ++it;
      continue;
    }
    BatchOutcome batch = it->get();
    for (const FitOutcome& outcome : batch.outcomes) {
      ApplyOutcome(outcome, report);
    }
    ShardTelemetry* st = shards_[batch.shard]->telemetry;
    st->fourier_hits.Inc(batch.fourier_hits);
    st->fourier_misses.Inc(batch.fourier_misses);
    st->refit_batch_stage.Record(batch.wall_ms);
    it = in_flight_.erase(it);
  }
}

void EstateService::ApplyOutcome(const FitOutcome& outcome,
                                 TickReport* report) {
  const std::string& key = outcome.key;
  RetrainScheduler& scheduler = ShardForKey(key).scheduler;
  quality_[key] = outcome.quality;
  if (outcome.quality_gated) ++telemetry_.quality_gated;
  // Every journal event from this outcome carries the worker's refit span
  // id, so a replayed failure can be located in the trace dump.
  JournalEvent quality_event{now_,
                             EventKind::kQuality,
                             key,
                             {FmtDouble(outcome.quality.score),
                              outcome.quality.trainable ? "1" : "0",
                              outcome.quality.verdict}};
  quality_event.span_id = outcome.span_id;
  JournalAppend(quality_event);
  // Flight recorder: one wide event per refit, sharing the worker's span id
  // with the journal events above (the /v1/debug <-> journal correlation
  // contract) and feeding the fit-stage histogram's exemplar slot so a
  // latency outlier links straight back to this record.
  std::uint64_t refit_event_id = 0;
  obs::EventLog& events = obs::EventLog::Instance();
  if (events.enabled()) {
    obs::WideEvent ev;
    ev.kind = obs::WideEventKind::kRefit;
    ev.set_key(key);
    ev.shard = static_cast<std::int32_t>(ShardOfKey(key));
    ev.span_id = outcome.span_id;
    ev.journal_seq = journal_seq_;
    ev.dur_ns = static_cast<std::uint64_t>(outcome.wall_ms * 1e6);
    ev.start_ns = events.NowNs() > ev.dur_ns ? events.NowNs() - ev.dur_ns : 0;
    ev.outcome = outcome.status.ok() ? "ok" : "error";
    ev.AddAttr("test_mape", outcome.test_mape);
    ev.AddAttr("degradation",
               static_cast<double>(static_cast<int>(outcome.degradation)));
    ev.AddAttr("quality_score", outcome.quality.score);
    refit_event_id = events.Emit(ev);
    if (outcome.quality.short_gaps_filled > 0 ||
        outcome.quality.long_outages > 0 ||
        outcome.quality.masked_leading > 0) {
      // The sentinel altered the fit window — record what it did.
      obs::WideEvent repair;
      repair.kind = obs::WideEventKind::kQualityRepair;
      repair.set_key(key);
      repair.shard = ev.shard;
      repair.span_id = outcome.span_id;
      repair.journal_seq = journal_seq_;
      repair.outcome = outcome.quality.trainable ? "ok" : "gated";
      repair.AddAttr("score", outcome.quality.score);
      repair.AddAttr("gaps_filled",
                     static_cast<double>(outcome.quality.short_gaps_filled));
      repair.AddAttr("long_outages",
                     static_cast<double>(outcome.quality.long_outages));
      repair.AddAttr("masked_leading",
                     static_cast<double>(outcome.quality.masked_leading));
      events.Emit(repair);
    }
  }
  telemetry_.fit_stage.RecordWithExemplar(outcome.wall_ms, outcome.span_id,
                                          refit_event_id);
  if (outcome.status.ok()) {
    // The finished fit is a *challenger*. The current champion's live
    // rolling MAPE (percent) is the accuracy bar; with enough scored
    // evidence, a challenger whose held-out MAPE regresses past tolerance
    // is rejected and the champion keeps serving.
    EstateShard& shard = ShardForKey(key);
    const std::int64_t next_due =
        outcome.fitted_at_epoch + config_.staleness.max_age_seconds;
    double champion_live_pct = -1.0;
    std::size_t champion_scored = 0;
    if (const auto g = shard.guardrail.find(key); g != shard.guardrail.end()) {
      const double frac = g->second.tracker.live_mape();
      if (frac >= 0.0) champion_live_pct = frac * 100.0;
      champion_scored = g->second.tracker.window_size();
    }
    const bool has_champion = registry_.Contains(key);
    if (config_.guardrail.enabled && has_champion &&
        champion_live_pct >= 0.0 &&
        champion_scored >= config_.guardrail.promotion_min_scored) {
      const double reference = std::max(
          champion_live_pct, config_.guardrail.reference_mape_floor_pct);
      if (outcome.test_mape >
          config_.guardrail.promotion_tolerance_ratio * reference) {
        // Gate says no: the champion (model, forecast, tracker baseline)
        // stays exactly as it is. The refit still *completed* — it counts
        // as succeeded and reschedules normally — only the install is
        // refused.
        scheduler.OnSuccess(key, next_due);
        ++telemetry_.refits_succeeded;
        ++telemetry_.promotions_rejected;
        if (report != nullptr) {
          ++report->refits_completed;
          ++report->promotions_rejected;
        }
        JournalEvent reject_event{now_,
                                  EventKind::kPromotion,
                                  key,
                                  {"reject", outcome.technique, outcome.spec,
                                   FmtDouble(outcome.test_mape),
                                   FmtDouble(champion_live_pct),
                                   std::to_string(next_due)}};
        reject_event.span_id = outcome.span_id;
        JournalAppend(reject_event);
        if (events.enabled()) {
          obs::WideEvent ev;
          ev.kind = obs::WideEventKind::kPromotion;
          ev.set_key(key);
          ev.shard = static_cast<std::int32_t>(ShardOfKey(key));
          ev.span_id = outcome.span_id;
          ev.journal_seq = journal_seq_;
          ev.start_ns = events.NowNs();
          ev.outcome = "rejected";
          ev.AddAttr("challenger_mape", outcome.test_mape);
          ev.AddAttr("champion_live_mape", champion_live_pct);
          events.Emit(ev);
        }
        return;
      }
    }
    repo::StoredModel model;
    model.key = key;
    model.technique = outcome.technique;
    model.spec = outcome.spec;
    model.test_rmse = outcome.test_rmse;
    model.test_mape = outcome.test_mape;
    model.fitted_at_epoch = outcome.fitted_at_epoch;
    model.ar_coef = outcome.ar_coef;
    model.ma_coef = outcome.ma_coef;
    model.periods = outcome.periods;
    model.promoted_at_epoch = now_;
    if (has_champion) {
      // Stamp the demoted champion with its final live accuracy (the bar a
      // rollback compares against) and keep its forecast as the rollback
      // target, paired with the registry's lineage slot.
      if (champion_live_pct >= 0.0) {
        registry_.UpdateLiveMape(key, champion_live_pct);
      }
      if (const auto fc = forecasts_.find(key); fc != forecasts_.end()) {
        previous_forecasts_[key] = fc->second;
      }
    }
    registry_.Promote(model);
    int generation = 0;
    if (const auto promoted = registry_.Get(key); promoted.ok()) {
      generation = promoted->generation;
    }
    ++telemetry_.promotions;
    if (const auto g = shard.guardrail.find(key); g != shard.guardrail.end()) {
      // The new champion is judged only on its own errors.
      g->second.tracker.ResetBaseline();
    }
    CachedForecast cached;
    cached.forecast = outcome.forecast;
    cached.start_epoch = outcome.forecast_start_epoch;
    cached.step_seconds = outcome.forecast_step_seconds;
    cached.spec = outcome.technique + " " + outcome.spec;
    cached.degradation = outcome.degradation;
    forecasts_[key] = std::move(cached);
    scheduler.OnSuccess(key, next_due);
    ++telemetry_.refits_succeeded;
    if (outcome.degradation != core::DegradationLevel::kFull) {
      ++telemetry_.refits_degraded;
      if (report != nullptr) ++report->refits_degraded;
    }
    if (report != nullptr) ++report->refits_completed;
    JournalEvent fit_event{
        now_,
        EventKind::kFitOk,
        key,
        {outcome.technique, outcome.spec, FmtDouble(outcome.test_rmse),
         FmtDouble(outcome.test_mape),
         std::to_string(outcome.fitted_at_epoch),
         std::to_string(outcome.forecast_start_epoch),
         std::to_string(outcome.forecast_step_seconds),
         FmtDouble(outcome.forecast.level),
         JoinDoubles(outcome.forecast.mean),
         JoinDoubles(outcome.forecast.lower),
         JoinDoubles(outcome.forecast.upper),
         std::to_string(static_cast<int>(outcome.degradation)),
         FmtDouble(outcome.quality.score), std::to_string(generation),
         std::to_string(now_)}};
    fit_event.span_id = outcome.span_id;
    JournalAppend(fit_event);
    if (events.enabled()) {
      obs::WideEvent ev;
      ev.kind = obs::WideEventKind::kPromotion;
      ev.set_key(key);
      ev.shard = static_cast<std::int32_t>(ShardOfKey(key));
      ev.span_id = outcome.span_id;
      ev.journal_seq = journal_seq_;
      ev.start_ns = events.NowNs();
      ev.outcome = "promoted";
      ev.AddAttr("generation", static_cast<double>(generation));
      ev.AddAttr("test_mape", outcome.test_mape);
      events.Emit(ev);
    }
  } else {
    const bool quarantined = scheduler.OnFailure(key, now_);
    ++telemetry_.refits_failed;
    if (report != nullptr) ++report->refits_failed;
    auto entry = scheduler.Get(key);
    const int failures = entry.ok() ? entry->consecutive_failures : 0;
    const std::int64_t next_due =
        quarantined ? -1 : (entry.ok() ? entry->due_epoch : -1);
    JournalEvent fail_event{now_,
                            EventKind::kFitFail,
                            key,
                            {std::to_string(failures),
                             std::to_string(next_due),
                             outcome.status.ToString()}};
    fail_event.span_id = outcome.span_id;
    JournalAppend(fail_event);
    if (quarantined) {
      ++telemetry_.quarantines;
      JournalEvent quarantine_event{now_, EventKind::kQuarantine, key, {}};
      quarantine_event.span_id = outcome.span_id;
      JournalAppend(quarantine_event);
    }
  }
}

void EstateService::EvaluateAlerts(TickReport* report) {
  obs::TraceSpan span("service.alerts", "service");
  const auto t0 = Clock::now();
  struct Transition {
    std::string key;
    bool raise = false;
    ServiceAlert alert;
  };
  std::vector<Transition> transitions;
  for (const auto& key : keys_) {
    auto it = forecasts_.find(key);
    if (it == forecasts_.end()) continue;
    const CachedForecast& fc = it->second;
    const std::int64_t fc_end =
        fc.start_epoch +
        static_cast<std::int64_t>(fc.forecast.mean.size()) * fc.step_seconds;
    if (now_ >= fc_end || fc.step_seconds <= 0) {
      ++telemetry_.forecast_exhausted_ticks;
      continue;
    }
    ++telemetry_.forecast_cache_hits;
    const double threshold = watches_[watch_index_.at(key)].threshold;
    // First forecast step at or after the current clock.
    std::int64_t first = (now_ - fc.start_epoch) / fc.step_seconds;
    if ((now_ - fc.start_epoch) % fc.step_seconds != 0) ++first;
    if (first < 0) first = 0;
    bool mean_breach = false;
    bool upper_breach = false;
    std::int64_t breach_epoch = 0;
    for (std::size_t i = static_cast<std::size_t>(first);
         i < fc.forecast.mean.size(); ++i) {
      if (fc.forecast.mean[i] > threshold) {
        mean_breach = true;
        breach_epoch =
            fc.start_epoch + static_cast<std::int64_t>(i) * fc.step_seconds;
        break;
      }
    }
    if (!mean_breach) {
      for (std::size_t i = static_cast<std::size_t>(first);
           i < fc.forecast.upper.size(); ++i) {
        if (fc.forecast.upper[i] > threshold) {
          upper_breach = true;
          breach_epoch =
              fc.start_epoch + static_cast<std::int64_t>(i) * fc.step_seconds;
          break;
        }
      }
    }
    const bool breach = mean_breach || upper_breach;
    auto active = alerts_.find(key);
    if (breach && active == alerts_.end()) {
      ServiceAlert alert;
      alert.key = key;
      alert.upper_only = !mean_breach;
      alert.predicted_breach_epoch = breach_epoch;
      alert.raised_at_epoch = now_;
      transitions.push_back({key, true, alert});
    } else if (!breach && active != alerts_.end()) {
      transitions.push_back({key, false, {}});
    } else if (breach && active != alerts_.end()) {
      // Refresh the prognosis silently; no new journal event.
      active->second.upper_only = !mean_breach;
      active->second.predicted_breach_epoch = breach_epoch;
    }
  }
  telemetry_.forecast_stage.Record(ElapsedMs(t0));

  const auto t1 = Clock::now();
  for (const auto& tr : transitions) {
    if (tr.raise) {
      alerts_[tr.key] = tr.alert;
      ++telemetry_.alerts_raised;
      if (report != nullptr) ++report->alerts_raised;
      JournalAppend({now_,
                     EventKind::kAlert,
                     tr.key,
                     {tr.alert.upper_only ? "upper" : "mean",
                      std::to_string(tr.alert.predicted_breach_epoch)}});
    } else {
      alerts_.erase(tr.key);
      ++telemetry_.alerts_cleared;
      if (report != nullptr) ++report->alerts_cleared;
      JournalAppend({now_, EventKind::kAlertClear, tr.key, {}});
    }
  }
  telemetry_.alert_stage.Record(ElapsedMs(t1));
}

void EstateService::EvaluateGuardrails(TickReport* report) {
  if (!config_.guardrail.enabled) return;
  for (auto& shard_ptr : shards_) {
    EstateShard& shard = *shard_ptr;
    double worst_mape = 0.0;
    double worst_stat = 0.0;
    double most_samples = 0.0;
    for (auto& [key, entry] : shard.guardrail) {
      const double frac = entry.tracker.live_mape();
      const core::PageHinkleyDetector& det = entry.tracker.detector();
      if (frac > worst_mape) worst_mape = frac;
      if (det.statistic() > worst_stat) worst_stat = det.statistic();
      if (static_cast<double>(det.samples_seen()) > most_samples) {
        most_samples = static_cast<double>(det.samples_seen());
      }
      // Live-regression rollback: only for keys with a full lineage pair
      // (previous model in the registry slot AND its forecast), enough
      // scored evidence, and a live MAPE past the regression ratio.
      if (frac < 0.0 ||
          entry.tracker.window_size() < config_.guardrail.rollback_min_scored) {
        continue;
      }
      const double live_pct = frac * 100.0;
      const auto pf = previous_forecasts_.find(key);
      if (pf == previous_forecasts_.end()) continue;
      const auto prev = registry_.GetPrevious(key);
      if (!prev.ok()) continue;
      const double reference = std::max(
          prev->live_mape >= 0.0 ? prev->live_mape : prev->test_mape,
          config_.guardrail.reference_mape_floor_pct);
      if (live_pct <= config_.guardrail.rollback_regression_ratio * reference) {
        continue;
      }
      obs::TraceSpan span("guardrail.rollback", "service");
      const auto restored = registry_.Rollback(key);
      if (!restored.ok()) continue;
      const CachedForecast fc = pf->second;
      previous_forecasts_.erase(pf);
      forecasts_[key] = fc;  // byte-equal restore of the old champion's view
      entry.tracker.ResetBaseline();
      ++telemetry_.rollbacks;
      ++shard.rollbacks;
      if (report != nullptr) ++report->rollbacks;
      // The restored champion is old by definition — refit it soon, but
      // through the same backoff-respecting gate as a drift alarm.
      if (const auto sched = shard.scheduler.Get(key);
          sched.ok() && !sched->quarantined && !sched->in_flight &&
          sched->consecutive_failures == 0 && sched->due_epoch > now_) {
        shard.scheduler.PullForward(key, now_);
      }
      std::int64_t next_due = -1;
      if (const auto sched = shard.scheduler.Get(key); sched.ok()) {
        next_due = sched->due_epoch;
      }
      JournalAppend(
          {now_,
           EventKind::kRollback,
           key,
           {restored->technique, restored->spec,
            FmtDouble(restored->test_rmse), FmtDouble(restored->test_mape),
            std::to_string(restored->fitted_at_epoch),
            std::to_string(restored->generation),
            std::to_string(restored->promoted_at_epoch),
            FmtDouble(restored->live_mape), JoinDoubles(restored->ar_coef),
            JoinDoubles(restored->ma_coef), std::to_string(fc.start_epoch),
            std::to_string(fc.step_seconds), FmtDouble(fc.forecast.level),
            JoinDoubles(fc.forecast.mean), JoinDoubles(fc.forecast.lower),
            JoinDoubles(fc.forecast.upper),
            std::to_string(static_cast<int>(fc.degradation)),
            std::to_string(next_due)}});
      obs::EventLog& events = obs::EventLog::Instance();
      if (events.enabled()) {
        obs::WideEvent ev;
        ev.kind = obs::WideEventKind::kRollback;
        ev.set_key(key);
        ev.shard = static_cast<std::int32_t>(shard.id);
        ev.span_id = span.id();
        ev.journal_seq = journal_seq_;
        ev.start_ns = events.NowNs();
        ev.outcome = "rolled_back";
        ev.AddAttr("live_mape", live_pct);
        ev.AddAttr("reference_mape", reference);
        ev.AddAttr("generation", static_cast<double>(restored->generation));
        events.Emit(ev);
      }
    }
    shard.telemetry->guardrail_live_mape.Set(std::max(0.0, worst_mape));
    shard.telemetry->guardrail_ph_statistic.Set(worst_stat);
    shard.telemetry->guardrail_ph_samples.Set(most_samples);
  }
}

void EstateService::EvaluateHealth() {
  // Journal/snapshot write failures are estate-wide (one journal, one
  // snapshot path, all appended by the driver), so every shard's machine
  // sees the same cumulative I/O count — a dying disk is everyone's
  // problem, and any shard already critical for its own reasons stays so.
  const std::uint64_t io_errors = telemetry_.io_errors.value();
  for (auto& shard_ptr : shards_) {
    EstateShard& shard = *shard_ptr;
    HealthSignals signals;
    signals.tick_overruns = shard.tick_overruns;
    signals.refit_queue_depth = shard.refit_queue.size();
    signals.quarantined_keys = shard.scheduler.QuarantinedKeys().size();
    signals.rollbacks = shard.rollbacks;
    signals.io_errors = io_errors;
    if (shard.accuracy_slo != nullptr) {
      // Evaluate at the estate clock; the tracker clamps to its own newest
      // scored point, so a shard with no fresh scores holds its last burn.
      const obs::SloTracker::Burn burn =
          shard.accuracy_slo->Evaluate(static_cast<double>(now_));
      signals.slo_fast_burn = burn.fast_burn;
      signals.slo_slow_burn = burn.slow_burn;
    }
    const std::uint64_t before = shard.health.transitions();
    shard.health.Evaluate(signals);
    const std::uint64_t after = shard.health.transitions();
    if (after > before) {
      shard.telemetry->health_transitions.Inc(after - before);
    }
    shard.telemetry->health_state.Set(
        static_cast<double>(static_cast<int>(shard.health.state())));
  }
}

HealthState EstateService::OverallHealth() const {
  HealthState worst = HealthState::kHealthy;
  for (const auto& shard : shards_) {
    if (shard->health.state() > worst) worst = shard->health.state();
  }
  return worst;
}

double EstateService::LiveMapeFor(const std::string& key) const {
  const EstateShard& shard = ShardForKey(key);
  const auto it = shard.guardrail.find(key);
  if (it == shard.guardrail.end()) return -1.0;
  const double frac = it->second.tracker.live_mape();
  return frac < 0.0 ? -1.0 : frac * 100.0;
}

void EstateService::PublishView() {
  std::vector<std::vector<serve::InstanceStatus>> shard_rows(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const EstateShard& shard = *shards_[s];
    shard_rows[s].reserve(shard.watch_ids.size());
    for (std::size_t id : shard.watch_ids) {
      const std::string& key = keys_[id];
      serve::InstanceStatus row;
      row.key = key;
      const WatchConfig& watch = watches_[id];
      row.instance =
          cluster_ != nullptr ? cluster_->InstanceName(watch.instance) : key;
      row.metric = workload::MetricName(watch.metric);
      row.threshold = watch.threshold;
      if (const auto fit = forecasts_.find(key); fit != forecasts_.end()) {
        row.has_forecast = true;
        row.forecast = fit->second.forecast;
        row.forecast_start_epoch = fit->second.start_epoch;
        row.forecast_step_seconds = fit->second.step_seconds;
        row.spec = fit->second.spec;
        row.degradation = fit->second.degradation;
      }
      if (const auto q = quality_.find(key); q != quality_.end()) {
        row.quality_score = q->second.score;
        row.trainable = q->second.trainable;
        row.quality_verdict = q->second.verdict;
      }
      if (const auto alert = alerts_.find(key); alert != alerts_.end()) {
        row.alert_active = true;
        row.alert_upper_only = alert->second.upper_only;
        row.predicted_breach_epoch = alert->second.predicted_breach_epoch;
      }
      if (config_.view_recent_hours > 0) {
        if (auto tail =
                shard.metrics.HourlyTail(key, config_.view_recent_hours);
            tail.ok() && !tail->empty()) {
          row.recent = tail->values();
          row.recent_start_epoch = tail->start_epoch();
        }
      }
      // Decompose inputs: the champion's detected periods plus a tail long
      // enough for STL over the longest season (docs/selection.md).
      if (const auto model = registry_.Get(key); model.ok()) {
        row.periods = model->periods;
      }
      if (config_.view_history_hours > 0) {
        if (auto tail =
                shard.metrics.HourlyTail(key, config_.view_history_hours);
            tail.ok() && !tail->empty()) {
          row.history = tail->values();
          row.history_start_epoch = tail->start_epoch();
        }
      }
      shard_rows[s].push_back(std::move(row));
    }
  }
  auto view = serve::MergeShardRows(now_, ticks_, std::move(shard_rows));
  view->shard_health.reserve(shards_.size());
  int overall = 0;
  for (const auto& shard : shards_) {
    serve::ShardHealthStatus hs;
    hs.shard = shard->id;
    hs.state = static_cast<int>(shard->health.state());
    hs.state_name = HealthStateName(shard->health.state());
    hs.reason = shard->health.reason();
    hs.refit_queue_depth = shard->refit_queue.size();
    hs.quarantined = shard->scheduler.QuarantinedKeys().size();
    hs.tick_overruns = shard->tick_overruns;
    hs.rollbacks = shard->rollbacks;
    if (hs.state > overall) overall = hs.state;
    view->shard_health.push_back(std::move(hs));
  }
  view->overall_health = overall;
  view_channel_.Publish(std::move(view));
  view_swaps_.Inc();
}

Result<TickReport> EstateService::Tick() {
  obs::TraceSpan span("service.tick", "service");
  if (!started_) {
    return Status::FailedPrecondition("service: not started");
  }
  TickReport report;
  now_ += config_.tick_seconds;
  report.now_epoch = now_;

  // Per-shard phase: ingest, staleness, due-taking and batch preparation
  // run as one job per shard (inline when unsharded). Shard state is only
  // ever touched by its own job; the driver joins every job before reading
  // the outputs, so nothing below races.
  const auto t0 = Clock::now();
  std::vector<ShardTickOutput> outputs(shards_.size());
  if (tick_pool_ == nullptr) {
    outputs[0] = TickShard(shards_[0].get());
  } else {
    std::vector<std::future<ShardTickOutput>> pending;
    pending.reserve(shards_.size());
    for (auto& shard : shards_) {
      EstateShard* s = shard.get();
      pending.push_back(tick_pool_->Submit([this, s] { return TickShard(s); }));
    }
    for (std::size_t i = 0; i < outputs.size(); ++i) {
      outputs[i] = pending[i].get();
    }
  }
  telemetry_.ingest_stage.Record(ElapsedMs(t0));
  // The cursor only advances once every shard ingested its slice: a failed
  // tick leaves the window un-consumed, so the next tick backfills it and
  // no sample is lost.
  for (const ShardTickOutput& out : outputs) {
    CAPPLAN_RETURN_NOT_OK(out.status);
  }
  cursor_ = now_;
  for (ShardTickOutput& out : outputs) {
    report.samples_ingested += out.samples_ingested;
    report.refits_dispatched += out.refits_dispatched;
    for (PreparedBatch& batch : out.batches) {
      SubmitBatch(std::move(batch), &report);
    }
  }

  CollectFinished(/*block=*/false, &report);
  EvaluateGuardrails(&report);
  EvaluateAlerts(&report);

  // Durability failures do not stop the clock: a tick that cannot be
  // journalled or snapshotted is still a served tick, counted as an
  // absorbed I/O error (JournalAppend counts its own failures).
  (void)JournalAppend({now_, EventKind::kTick, "", {}});
  ++ticks_;
  ++telemetry_.ticks;
  if (config_.snapshot_every_ticks > 0 && !config_.state_dir.empty() &&
      ticks_ % static_cast<std::uint64_t>(config_.snapshot_every_ticks) ==
          0) {
    if (Status st = WriteSnapshot(); !st.ok()) {
      ++telemetry_.snapshot_failures;
      ++telemetry_.io_errors;
    }
  }
  // Health folds in last, so the machine sees this tick's final queue
  // depths, rollbacks and absorbed I/O errors before the view freezes them.
  EvaluateHealth();
  PublishView();
  return report;
}

Status EstateService::RunTicks(int n) {
  for (int i = 0; i < n; ++i) {
    auto report = Tick();
    if (!report.ok()) return report.status();
  }
  return Status::OK();
}

Status EstateService::DrainRefits() {
  if (!started_) {
    return Status::FailedPrecondition("service: not started");
  }
  CollectFinished(/*block=*/true, nullptr);
  PublishView();
  return Status::OK();
}

Status EstateService::Checkpoint() {
  if (config_.state_dir.empty()) {
    return Status::FailedPrecondition("service: no state_dir configured");
  }
  CAPPLAN_RETURN_NOT_OK(DrainRefits());
  Status st = WriteSnapshot();
  if (!st.ok()) {
    // An explicit checkpoint propagates the failure (the caller asked for
    // durability), but it still shows up in the absorbed-error counters so
    // dashboards see one consistent I/O health signal.
    ++telemetry_.snapshot_failures;
    ++telemetry_.io_errors;
  }
  return st;
}

Status EstateService::ReleaseQuarantine(const std::string& key) {
  CAPPLAN_RETURN_NOT_OK(ShardForKey(key).scheduler.Release(key, now_));
  return JournalAppend({now_, EventKind::kRelease, key, {}});
}

core::DegradationLevel EstateService::ForecastDegradation(
    const std::string& key) const {
  auto it = forecasts_.find(key);
  return it == forecasts_.end() ? core::DegradationLevel::kFull
                                : it->second.degradation;
}

std::vector<ServiceAlert> EstateService::ActiveAlerts() const {
  std::vector<ServiceAlert> alerts;
  alerts.reserve(alerts_.size());
  for (const auto& [_, a] : alerts_) alerts.push_back(a);
  return alerts;
}

std::vector<std::string> EstateService::ShardKeys(std::size_t shard) const {
  std::vector<std::string> keys;
  keys.reserve(shards_[shard]->watch_ids.size());
  for (std::size_t id : shards_[shard]->watch_ids) keys.push_back(keys_[id]);
  return keys;
}

std::size_t EstateService::series_count() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->metrics.size();
  return total;
}

std::vector<std::string> EstateService::QuarantinedKeys() const {
  std::vector<std::string> keys;
  for (const auto& shard : shards_) {
    auto q = shard->scheduler.QuarantinedKeys();
    keys.insert(keys.end(), q.begin(), q.end());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

std::vector<ScheduleEntry> EstateService::ScheduleEntries() const {
  std::vector<ScheduleEntry> entries;
  for (const auto& shard : shards_) {
    auto e = shard->scheduler.Entries();
    entries.insert(entries.end(), std::make_move_iterator(e.begin()),
                   std::make_move_iterator(e.end()));
  }
  std::sort(entries.begin(), entries.end(),
            [](const ScheduleEntry& a, const ScheduleEntry& b) {
              return a.key < b.key;
            });
  return entries;
}

std::size_t EstateService::schedule_size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->scheduler.size();
  return total;
}

std::size_t EstateService::RefitQueueDepth() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->refit_queue.size();
  return total;
}

std::string EstateService::JournalPath() const {
  return config_.state_dir + "/journal.log";
}

std::string EstateService::ShardSegmentDir(std::size_t shard) const {
  return config_.state_dir + "/shard_" + std::to_string(shard);
}

Status EstateService::WritePrometheus(const std::string& path) const {
  obs::MetricsRegistry* registry = telemetry_.registry.get();
  // Refresh the scrape-time families before collecting: ring drop totals
  // from the flight-recorder singletons and the SLO burn rates. The serve
  // handler does the same on /metrics; either export path is current.
  // (Handle copies write through to the shared cells.)
  obs::Counter trace_dropped = telemetry_.obs_trace_dropped;
  trace_dropped = obs::Tracer::Instance().total_dropped();
  obs::Counter events_dropped = telemetry_.obs_events_dropped;
  events_dropped = obs::EventLog::Instance().total_dropped();
  if (slo_set_ != nullptr) {
    obs::ExportSloMetrics(*slo_set_, registry, static_cast<double>(now_));
  }
  return obs::WritePrometheusFile(registry->Collect(), path);
}

Status EstateService::DumpTrace(const std::string& path) const {
  return obs::WriteChromeTraceFile(obs::Tracer::Instance().Drain(), path);
}

Status EstateService::JournalAppend(JournalEvent event) {
  if (!journal_.is_open()) return Status::OK();  // ephemeral service
  if (event.span_id == 0) event.span_id = obs::CurrentSpanId();
  Status st = journal_.Append(event);
  if (!st.ok()) {
    // Availability beats durability: callers keep serving with a degraded
    // journal, and the counters make the durability gap visible. Recovery
    // from such a journal is still consistent — it just replays less.
    ++telemetry_.journal_write_failures;
    ++telemetry_.io_errors;
    return st;
  }
  ++telemetry_.journal_events;
  ++journal_seq_;
  return Status::OK();
}

Status EstateService::WriteSnapshot() {
  obs::TraceSpan span("service.snapshot", "service");
  const std::string& dir = config_.state_dir;
  CAPPLAN_RETURN_NOT_OK(registry_.Save(dir + "/snapshot.registry.csv"));

  // One merged schedule CSV for the whole estate (same format as the
  // unsharded service ever wrote); rows route back to their shard by key
  // hash on recovery.
  std::vector<ScheduleEntry> schedule;
  for (const auto& shard : shards_) {
    auto e = shard->scheduler.Entries();
    schedule.insert(schedule.end(), std::make_move_iterator(e.begin()),
                    std::make_move_iterator(e.end()));
  }
  CAPPLAN_RETURN_NOT_OK(RetrainScheduler::SaveEntries(
      dir + "/snapshot.schedule.csv", std::move(schedule)));

  repo::CsvTable forecasts;
  forecasts.header = {"key",   "spec",  "start_epoch", "step_seconds",
                      "level", "mean",  "lower",       "upper",
                      "degradation"};
  for (const auto& [key, fc] : forecasts_) {
    forecasts.rows.push_back(
        {key, fc.spec, std::to_string(fc.start_epoch),
         std::to_string(fc.step_seconds), FmtDouble(fc.forecast.level),
         JoinDoubles(fc.forecast.mean), JoinDoubles(fc.forecast.lower),
         JoinDoubles(fc.forecast.upper),
         std::to_string(static_cast<int>(fc.degradation))});
  }
  CAPPLAN_RETURN_NOT_OK(
      repo::WriteCsv(dir + "/snapshot.forecasts.csv", forecasts));

  repo::CsvTable alerts;
  alerts.header = {"key", "upper_only", "predicted_breach_epoch",
                   "raised_at_epoch"};
  for (const auto& [key, a] : alerts_) {
    alerts.rows.push_back({key, a.upper_only ? "1" : "0",
                           std::to_string(a.predicted_breach_epoch),
                           std::to_string(a.raised_at_epoch)});
  }
  CAPPLAN_RETURN_NOT_OK(repo::WriteCsv(dir + "/snapshot.alerts.csv", alerts));

  repo::CsvTable meta;
  meta.header = {"field", "value"};
  meta.rows.push_back({"now_epoch", std::to_string(now_)});
  meta.rows.push_back({"cursor_epoch", std::to_string(cursor_)});
  meta.rows.push_back({"ticks", std::to_string(ticks_)});
  CAPPLAN_RETURN_NOT_OK(repo::WriteCsv(dir + "/snapshot.meta.csv", meta));

  // The metric history itself, as compressed segments (store/segment.h) —
  // what Recover restarts from instead of re-polling the whole estate. Each
  // shard flushes its slice into its own segment directory; a failed flush
  // fails the snapshot as a whole, and the tick loop absorbs it and retries
  // at the next snapshot interval.
  for (const auto& shard : shards_) {
    const std::string shard_dir = ShardSegmentDir(shard->id);
    std::error_code ec;
    std::filesystem::create_directories(shard_dir, ec);
    if (ec) {
      return Status::IoError("service: cannot create segment dir " +
                             shard_dir + ": " + ec.message());
    }
    CAPPLAN_RETURN_NOT_OK(shard->metrics.SaveSegments(shard_dir));
  }

  CAPPLAN_RETURN_NOT_OK(JournalAppend({now_, EventKind::kSnapshot, "", {}}));
  ++telemetry_.snapshots_written;
  return Status::OK();
}

Status EstateService::ReplayEvent(const JournalEvent& event) {
  switch (event.kind) {
    case EventKind::kTick:
      now_ = event.epoch;
      cursor_ = event.epoch;
      ++ticks_;
      return Status::OK();
    case EventKind::kFitOk: {
      // 11 fields = the pre-ladder layout (tolerated so existing journals
      // keep replaying, as kFull); 13 adds degradation level + quality
      // score; 15 adds champion lineage (generation, promoted_at).
      if (event.fields.size() != 11 && event.fields.size() != 13 &&
          event.fields.size() != 15) {
        return Status::IoError("service: malformed fit_ok event");
      }
      repo::StoredModel model;
      model.key = event.key;
      model.technique = event.fields[0];
      model.spec = event.fields[1];
      try {
        model.test_rmse = std::stod(event.fields[2]);
        model.test_mape = std::stod(event.fields[3]);
      } catch (...) {
        return Status::IoError("service: bad accuracy in fit_ok event");
      }
      CAPPLAN_ASSIGN_OR_RETURN(model.fitted_at_epoch,
                               ParseInt64(event.fields[4]));
      CachedForecast cached;
      CAPPLAN_ASSIGN_OR_RETURN(cached.start_epoch,
                               ParseInt64(event.fields[5]));
      CAPPLAN_ASSIGN_OR_RETURN(cached.step_seconds,
                               ParseInt64(event.fields[6]));
      try {
        cached.forecast.level = std::stod(event.fields[7]);
      } catch (...) {
        return Status::IoError("service: bad level in fit_ok event");
      }
      CAPPLAN_ASSIGN_OR_RETURN(cached.forecast.mean,
                               ParseDoubles(event.fields[8]));
      CAPPLAN_ASSIGN_OR_RETURN(cached.forecast.lower,
                               ParseDoubles(event.fields[9]));
      CAPPLAN_ASSIGN_OR_RETURN(cached.forecast.upper,
                               ParseDoubles(event.fields[10]));
      if (event.fields.size() >= 13) {
        CAPPLAN_ASSIGN_OR_RETURN(std::int64_t level,
                                 ParseInt64(event.fields[11]));
        if (level < 0 ||
            level > static_cast<int>(core::DegradationLevel::kBaseline)) {
          return Status::IoError("service: bad degradation in fit_ok event");
        }
        cached.degradation =
            static_cast<core::DegradationLevel>(static_cast<int>(level));
      }
      cached.spec = model.technique + " " + model.spec;
      if (event.fields.size() == 15) {
        // Lineage-carrying layout: replay the promotion itself, demoting
        // the previously replayed champion into the rollback slot and
        // keeping its forecast — so a journalled kRollback further down
        // the suffix finds the same pair the live path had.
        CAPPLAN_ASSIGN_OR_RETURN(std::int64_t generation,
                                 ParseInt64(event.fields[13]));
        CAPPLAN_ASSIGN_OR_RETURN(model.promoted_at_epoch,
                                 ParseInt64(event.fields[14]));
        model.generation = static_cast<int>(generation);
        if (registry_.Contains(event.key)) {
          if (const auto fc = forecasts_.find(event.key);
              fc != forecasts_.end()) {
            previous_forecasts_[event.key] = fc->second;
          }
        }
        registry_.Promote(model);
      } else {
        registry_.Put(model);
      }
      forecasts_[event.key] = std::move(cached);
      ScheduleEntry entry;
      entry.key = event.key;
      entry.due_epoch =
          model.fitted_at_epoch + config_.staleness.max_age_seconds;
      ShardForKey(event.key).scheduler.Restore(std::move(entry));
      return Status::OK();
    }
    case EventKind::kFitFail: {
      if (event.fields.size() != 3) {
        return Status::IoError("service: malformed fit_fail event");
      }
      ScheduleEntry entry;
      entry.key = event.key;
      try {
        entry.consecutive_failures = std::stoi(event.fields[0]);
      } catch (...) {
        return Status::IoError("service: bad failure count in fit_fail");
      }
      CAPPLAN_ASSIGN_OR_RETURN(std::int64_t next_due,
                               ParseInt64(event.fields[1]));
      if (next_due < 0) {
        entry.quarantined = true;
        entry.due_epoch = event.epoch;
      } else {
        entry.due_epoch = next_due;
      }
      ShardForKey(event.key).scheduler.Restore(std::move(entry));
      return Status::OK();
    }
    case EventKind::kQuarantine: {
      ScheduleEntry entry;
      entry.key = event.key;
      entry.due_epoch = event.epoch;
      entry.consecutive_failures = config_.retry.quarantine_after_failures;
      entry.quarantined = true;
      ShardForKey(event.key).scheduler.Restore(std::move(entry));
      return Status::OK();
    }
    case EventKind::kRelease: {
      ScheduleEntry entry;
      entry.key = event.key;
      entry.due_epoch = event.epoch;
      ShardForKey(event.key).scheduler.Restore(std::move(entry));
      return Status::OK();
    }
    case EventKind::kAlert: {
      if (event.fields.size() != 2) {
        return Status::IoError("service: malformed alert event");
      }
      ServiceAlert alert;
      alert.key = event.key;
      alert.upper_only = event.fields[0] == "upper";
      CAPPLAN_ASSIGN_OR_RETURN(alert.predicted_breach_epoch,
                               ParseInt64(event.fields[1]));
      alert.raised_at_epoch = event.epoch;
      alerts_[event.key] = alert;
      return Status::OK();
    }
    case EventKind::kAlertClear:
      alerts_.erase(event.key);
      return Status::OK();
    case EventKind::kSnapshot:
      return Status::OK();
    case EventKind::kQuality: {
      if (event.fields.size() != 3) {
        return Status::IoError("service: malformed quality event");
      }
      quality::QualityReport q;
      q.key = event.key;
      try {
        q.score = std::stod(event.fields[0]);
      } catch (...) {
        return Status::IoError("service: bad score in quality event");
      }
      q.trainable = event.fields[1] == "1";
      q.verdict = event.fields[2];
      quality_[event.key] = std::move(q);
      return Status::OK();
    }
    case EventKind::kPromotion: {
      // A rejected challenger: the champion stayed, only the schedule moved.
      if (event.fields.size() != 6) {
        return Status::IoError("service: malformed promotion event");
      }
      ScheduleEntry entry;
      entry.key = event.key;
      CAPPLAN_ASSIGN_OR_RETURN(entry.due_epoch, ParseInt64(event.fields[5]));
      ShardForKey(event.key).scheduler.Restore(std::move(entry));
      return Status::OK();
    }
    case EventKind::kRollback: {
      // Self-contained: the full restored model + forecast payload, so
      // replay needs no in-memory lineage (the rollback slot may be empty
      // after a crash — exactly why the payload is journalled).
      if (event.fields.size() != 18) {
        return Status::IoError("service: malformed rollback event");
      }
      repo::StoredModel model;
      model.key = event.key;
      model.technique = event.fields[0];
      model.spec = event.fields[1];
      try {
        model.test_rmse = std::stod(event.fields[2]);
        model.test_mape = std::stod(event.fields[3]);
        model.live_mape = std::stod(event.fields[7]);
      } catch (...) {
        return Status::IoError("service: bad accuracy in rollback event");
      }
      CAPPLAN_ASSIGN_OR_RETURN(model.fitted_at_epoch,
                               ParseInt64(event.fields[4]));
      CAPPLAN_ASSIGN_OR_RETURN(std::int64_t generation,
                               ParseInt64(event.fields[5]));
      model.generation = static_cast<int>(generation);
      CAPPLAN_ASSIGN_OR_RETURN(model.promoted_at_epoch,
                               ParseInt64(event.fields[6]));
      CAPPLAN_ASSIGN_OR_RETURN(model.ar_coef, ParseDoubles(event.fields[8]));
      CAPPLAN_ASSIGN_OR_RETURN(model.ma_coef, ParseDoubles(event.fields[9]));
      registry_.Reinstate(model);
      CachedForecast cached;
      CAPPLAN_ASSIGN_OR_RETURN(cached.start_epoch,
                               ParseInt64(event.fields[10]));
      CAPPLAN_ASSIGN_OR_RETURN(cached.step_seconds,
                               ParseInt64(event.fields[11]));
      try {
        cached.forecast.level = std::stod(event.fields[12]);
      } catch (...) {
        return Status::IoError("service: bad level in rollback event");
      }
      CAPPLAN_ASSIGN_OR_RETURN(cached.forecast.mean,
                               ParseDoubles(event.fields[13]));
      CAPPLAN_ASSIGN_OR_RETURN(cached.forecast.lower,
                               ParseDoubles(event.fields[14]));
      CAPPLAN_ASSIGN_OR_RETURN(cached.forecast.upper,
                               ParseDoubles(event.fields[15]));
      CAPPLAN_ASSIGN_OR_RETURN(std::int64_t level,
                               ParseInt64(event.fields[16]));
      if (level < 0 ||
          level > static_cast<int>(core::DegradationLevel::kBaseline)) {
        return Status::IoError("service: bad degradation in rollback event");
      }
      cached.degradation =
          static_cast<core::DegradationLevel>(static_cast<int>(level));
      cached.spec = model.technique + " " + model.spec;
      forecasts_[event.key] = std::move(cached);
      previous_forecasts_.erase(event.key);
      CAPPLAN_ASSIGN_OR_RETURN(std::int64_t next_due,
                               ParseInt64(event.fields[17]));
      if (next_due >= 0) {
        ScheduleEntry entry;
        entry.key = event.key;
        entry.due_epoch = next_due;
        ShardForKey(event.key).scheduler.Restore(std::move(entry));
      }
      return Status::OK();
    }
  }
  return Status::Internal("service: unhandled event kind");
}

Status EstateService::RecoverShardHistory(EstateShard* shard) {
  // Prefer the shard's compressed segment snapshot: it holds the exact
  // persisted samples, so only the suffix collected after the last flush
  // needs re-polling. When the segments are missing, damaged, inconsistent,
  // or laid out for a different shard count (a resize remapped the keys),
  // fall back to a full re-poll — the simulated agents are pure functions
  // of (scenario, seed, instance, epoch), so re-polling reproduces the
  // shard's slice exactly.
  std::int64_t poll_from = cluster_->start_epoch();
  if (shard->metrics.LoadSegments(ShardSegmentDir(shard->id)).ok()) {
    std::int64_t segments_end = -1;
    bool usable = true;
    for (std::size_t id : shard->watch_ids) {
      auto end = shard->metrics.RawEndEpoch(keys_[id]);
      if (!end.ok() || (segments_end != -1 && *end != segments_end)) {
        usable = false;
        break;
      }
      segments_end = *end;
    }
    // A directory holding series this shard does not own is a stale layout
    // (n_shards changed) — loading it would double-count keys elsewhere.
    usable = usable && shard->metrics.size() == shard->watch_ids.size() &&
             segments_end >= cluster_->start_epoch() &&
             segments_end <= cursor_;
    if (usable) {
      poll_from = segments_end;
    } else {
      shard->metrics.Clear();
    }
  } else {
    shard->metrics.Clear();
  }
  return IngestShard(shard, poll_from, cursor_);
}

Status EstateService::Recover() {
  obs::TraceSpan span("service.recover", "service");
  if (started_) {
    return Status::FailedPrecondition("service: already started");
  }
  if (cluster_ == nullptr) {
    return Status::FailedPrecondition("service: no cluster attached");
  }
  if (config_.state_dir.empty()) {
    return Status::FailedPrecondition("service: no state_dir to recover from");
  }
  CAPPLAN_ASSIGN_OR_RETURN(std::vector<JournalEvent> events,
                           ReadJournal(JournalPath()));
  if (events.empty()) {
    return Status::NotFound("service: nothing to recover in " +
                            config_.state_dir);
  }

  // Baseline: the last snapshot, or the fresh post-warmup state.
  std::size_t replay_from = 0;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (events[i].kind == EventKind::kSnapshot) replay_from = i + 1;
  }
  if (replay_from > 0) {
    const std::string& dir = config_.state_dir;
    CAPPLAN_RETURN_NOT_OK(registry_.Load(dir + "/snapshot.registry.csv"));
    // The schedule snapshot is one merged CSV; rows route back to their
    // shard's scheduler by the same key hash that placed them.
    CAPPLAN_ASSIGN_OR_RETURN(
        std::vector<ScheduleEntry> schedule,
        RetrainScheduler::LoadEntries(dir + "/snapshot.schedule.csv"));
    for (auto& entry : schedule) {
      RetrainScheduler& scheduler = ShardForKey(entry.key).scheduler;
      scheduler.Restore(std::move(entry));
    }
    CAPPLAN_ASSIGN_OR_RETURN(
        repo::CsvTable forecasts,
        repo::ReadCsv(dir + "/snapshot.forecasts.csv"));
    for (const auto& row : forecasts.rows) {
      // 8 columns = the pre-ladder snapshot layout (degradation -> kFull).
      if (row.size() != 8 && row.size() != 9) {
        return Status::IoError("service: malformed forecast snapshot row");
      }
      CachedForecast cached;
      cached.spec = row[1];
      CAPPLAN_ASSIGN_OR_RETURN(cached.start_epoch, ParseInt64(row[2]));
      CAPPLAN_ASSIGN_OR_RETURN(cached.step_seconds, ParseInt64(row[3]));
      try {
        cached.forecast.level = std::stod(row[4]);
      } catch (...) {
        return Status::IoError("service: bad level in forecast snapshot");
      }
      CAPPLAN_ASSIGN_OR_RETURN(cached.forecast.mean, ParseDoubles(row[5]));
      CAPPLAN_ASSIGN_OR_RETURN(cached.forecast.lower, ParseDoubles(row[6]));
      CAPPLAN_ASSIGN_OR_RETURN(cached.forecast.upper, ParseDoubles(row[7]));
      if (row.size() == 9) {
        CAPPLAN_ASSIGN_OR_RETURN(std::int64_t level, ParseInt64(row[8]));
        if (level < 0 ||
            level > static_cast<int>(core::DegradationLevel::kBaseline)) {
          return Status::IoError(
              "service: bad degradation in forecast snapshot");
        }
        cached.degradation =
            static_cast<core::DegradationLevel>(static_cast<int>(level));
      }
      forecasts_[row[0]] = std::move(cached);
    }
    CAPPLAN_ASSIGN_OR_RETURN(repo::CsvTable alerts,
                             repo::ReadCsv(dir + "/snapshot.alerts.csv"));
    for (const auto& row : alerts.rows) {
      if (row.size() != 4) {
        return Status::IoError("service: malformed alert snapshot row");
      }
      ServiceAlert alert;
      alert.key = row[0];
      alert.upper_only = row[1] == "1";
      CAPPLAN_ASSIGN_OR_RETURN(alert.predicted_breach_epoch,
                               ParseInt64(row[2]));
      CAPPLAN_ASSIGN_OR_RETURN(alert.raised_at_epoch, ParseInt64(row[3]));
      alerts_[alert.key] = alert;
    }
    CAPPLAN_ASSIGN_OR_RETURN(repo::CsvTable meta,
                             repo::ReadCsv(dir + "/snapshot.meta.csv"));
    for (const auto& row : meta.rows) {
      if (row.size() != 2) {
        return Status::IoError("service: malformed meta snapshot row");
      }
      CAPPLAN_ASSIGN_OR_RETURN(std::int64_t value, ParseInt64(row[1]));
      if (row[0] == "now_epoch") now_ = value;
      if (row[0] == "cursor_epoch") cursor_ = value;
      if (row[0] == "ticks") ticks_ = static_cast<std::uint64_t>(value);
    }
  } else {
    now_ = cluster_->start_epoch() +
           static_cast<std::int64_t>(config_.warmup_days) * 86400;
    cursor_ = now_;
    ticks_ = 0;
  }

  for (std::size_t i = replay_from; i < events.size(); ++i) {
    CAPPLAN_RETURN_NOT_OK(ReplayEvent(events[i]));
  }
  // The sequence counter resumes at the journal's true length, so wide
  // events emitted after recovery keep pointing at absolute positions in
  // the (re-opened, append-only) journal file.
  journal_seq_ = events.size();

  // Keys that never reached a journaled outcome fall back to their initial
  // schedule (the snapshot carries them otherwise). Keys that were sitting
  // on a refit queue at the crash are still in_flight=false after Restore,
  // with their original due time — they are simply taken due again, which
  // is exactly the no-orphaned-entries guarantee.
  for (const auto& key : keys_) {
    RetrainScheduler& scheduler = ShardForKey(key).scheduler;
    if (!scheduler.Get(key).ok()) scheduler.ScheduleAt(key, now_);
  }

  // Rebuild the metric history, one shard at a time (in parallel when
  // sharded): segments where usable, re-poll otherwise.
  const auto t0 = Clock::now();
  CAPPLAN_RETURN_NOT_OK(ForEachShard(
      [this](EstateShard* shard) { return RecoverShardHistory(shard); }));
  telemetry_.ingest_stage.Record(ElapsedMs(t0));

  CAPPLAN_ASSIGN_OR_RETURN(journal_, EventJournal::Open(JournalPath()));
  started_ = true;
  PublishView();
  return Status::OK();
}

}  // namespace capplan::service
