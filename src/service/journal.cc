#include "service/journal.h"

#include <cerrno>
#include <cstddef>
#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fault.h"

namespace capplan::service {

namespace {

constexpr char kSeparator = '|';
constexpr const char* kVersionV1 = "v1";  // epoch|kind|key|fields...
constexpr const char* kVersion = "v2";    // epoch|kind|span|key|fields...

std::string Sanitize(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == kSeparator || c == '\n' || c == '\r') c = '/';
  }
  return out;
}

std::vector<std::string> SplitLine(const std::string& line) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  for (;;) {
    const std::size_t pos = line.find(kSeparator, begin);
    if (pos == std::string::npos) {
      parts.push_back(line.substr(begin));
      return parts;
    }
    parts.push_back(line.substr(begin, pos - begin));
    begin = pos + 1;
  }
}

}  // namespace

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kTick:
      return "tick";
    case EventKind::kFitOk:
      return "fit_ok";
    case EventKind::kFitFail:
      return "fit_fail";
    case EventKind::kQuarantine:
      return "quarantine";
    case EventKind::kRelease:
      return "release";
    case EventKind::kAlert:
      return "alert";
    case EventKind::kAlertClear:
      return "alert_clear";
    case EventKind::kSnapshot:
      return "snapshot";
    case EventKind::kQuality:
      return "quality";
    case EventKind::kPromotion:
      return "promotion";
    case EventKind::kRollback:
      return "rollback";
  }
  return "?";
}

Result<EventKind> ParseEventKind(const std::string& name) {
  for (EventKind k :
       {EventKind::kTick, EventKind::kFitOk, EventKind::kFitFail,
        EventKind::kQuarantine, EventKind::kRelease, EventKind::kAlert,
        EventKind::kAlertClear, EventKind::kSnapshot, EventKind::kQuality,
        EventKind::kPromotion, EventKind::kRollback}) {
    if (name == EventKindName(k)) return k;
  }
  return Status::InvalidArgument("journal: unknown event kind '" + name + "'");
}

std::string JournalEvent::Serialize() const {
  std::ostringstream out;
  out << kVersion << kSeparator << epoch << kSeparator << EventKindName(kind)
      << kSeparator << span_id << kSeparator << Sanitize(key);
  for (const auto& f : fields) out << kSeparator << Sanitize(f);
  return out.str();
}

Result<JournalEvent> JournalEvent::Parse(const std::string& line) {
  std::vector<std::string> parts = SplitLine(line);
  const bool v1 = !parts.empty() && parts[0] == kVersionV1;
  const bool v2 = !parts.empty() && parts[0] == kVersion;
  if ((!v1 && !v2) || parts.size() < (v2 ? 5u : 4u)) {
    return Status::InvalidArgument("journal: malformed line");
  }
  JournalEvent event;
  try {
    event.epoch = std::stoll(parts[1]);
  } catch (...) {
    return Status::InvalidArgument("journal: bad epoch in line");
  }
  CAPPLAN_ASSIGN_OR_RETURN(event.kind, ParseEventKind(parts[2]));
  std::size_t key_at = 3;
  if (v2) {
    try {
      event.span_id = std::stoull(parts[3]);
    } catch (...) {
      return Status::InvalidArgument("journal: bad span id in line");
    }
    key_at = 4;
  }
  event.key = parts[key_at];
  event.fields.assign(parts.begin() + static_cast<std::ptrdiff_t>(key_at) + 1,
                      parts.end());
  return event;
}

EventJournal::~EventJournal() { Close(); }

EventJournal::EventJournal(EventJournal&& other) noexcept
    : path_(std::move(other.path_)), file_(other.file_) {
  other.file_ = nullptr;
}

EventJournal& EventJournal::operator=(EventJournal&& other) noexcept {
  if (this != &other) {
    Close();
    path_ = std::move(other.path_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

Result<EventJournal> EventJournal::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "ab");
  if (f == nullptr) {
    return Status::IoError("journal: cannot open " + path + ": " +
                           std::strerror(errno));
  }
  EventJournal journal;
  journal.path_ = path;
  journal.file_ = f;
  return journal;
}

Status EventJournal::Append(const JournalEvent& event) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("journal: not open");
  }
  CAPPLAN_RETURN_NOT_OK(FaultHit("journal.append"));
  const std::string line = event.Serialize() + "\n";
  if (FaultFires("journal.torn")) {
    // A crash mid-append: a prefix of the line reaches the disk with no
    // newline, and the caller sees the write fail. ReadJournal must treat
    // the torn tail as absent.
    std::fwrite(line.data(), 1, line.size() / 2, file_);
    std::fflush(file_);
    return Status::IoError("journal: torn write to " + path_);
  }
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    return Status::IoError("journal: short write to " + path_);
  }
  if (std::fflush(file_) != 0) {
    return Status::IoError("journal: flush failed for " + path_);
  }
  return Status::OK();
}

void EventJournal::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<std::vector<JournalEvent>> ReadJournal(const std::string& path) {
  std::ifstream in(path);
  std::vector<JournalEvent> events;
  if (!in.is_open()) return events;  // no journal yet: nothing to replay
  std::string line;
  bool saw_garbage = false;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    auto event = JournalEvent::Parse(line);
    if (!event.ok()) {
      // Only the torn tail of a crashed append may be unparseable; malformed
      // lines in the middle mean the file is not a journal.
      saw_garbage = true;
      continue;
    }
    if (saw_garbage) {
      return Status::IoError("journal: malformed interior line in " + path);
    }
    events.push_back(std::move(*event));
  }
  return events;
}

}  // namespace capplan::service
