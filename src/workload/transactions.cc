#include "workload/transactions.h"

namespace capplan::workload {

const char* TransactionClassName(TransactionClass cls) {
  switch (cls) {
    case TransactionClass::kPointSelect:
      return "point-select";
    case TransactionClass::kRangeScan:
      return "range-scan";
    case TransactionClass::kUpdate:
      return "update";
    case TransactionClass::kInsert:
      return "insert";
    case TransactionClass::kReportQuery:
      return "report-query";
    case TransactionClass::kBulkLoad:
      return "bulk-load";
  }
  return "?";
}

double TransactionMix::CpuSecondsPerUserHour() const {
  double total_ms = 0.0;
  for (const auto& p : profiles) {
    total_ms += p.executions_per_user_hour * p.cpu_ms_per_execution;
  }
  return total_ms / 1000.0;
}

double TransactionMix::LogicalIosPerUserHour() const {
  double total = 0.0;
  for (const auto& p : profiles) {
    total += p.executions_per_user_hour * p.logical_ios_per_execution;
  }
  return total;
}

double TransactionMix::SessionMemoryMb() const {
  double total_kb = 0.0;
  for (const auto& p : profiles) total_kb += p.session_memory_kb;
  return total_kb / 1024.0;
}

TransactionMix TransactionMix::TpchLike() {
  TransactionMix mix;
  mix.name = "tpch-like";
  // A decision-support user runs a few long scan-heavy queries per hour
  // plus some medium reports and housekeeping DML. Totals: ~40 CPU-seconds
  // and ~42k logical IOs per active user-hour, ~24 MB session memory.
  mix.profiles = {
      {TransactionClass::kReportQuery, "pricing-summary-report",
       /*rate=*/1.5, /*cpu_ms=*/18000.0, /*ios=*/20000.0, /*mem_kb=*/12288.0},
      {TransactionClass::kRangeScan, "shipping-priority-scan",
       /*rate=*/4.0, /*cpu_ms=*/2700.0, /*ios=*/2200.0, /*mem_kb=*/8192.0},
      {TransactionClass::kPointSelect, "order-status-lookup",
       /*rate=*/20.0, /*cpu_ms=*/90.0, /*ios=*/110.0, /*mem_kb=*/2048.0},
      {TransactionClass::kBulkLoad, "refresh-dml-batch",
       /*rate=*/1.0, /*cpu_ms=*/1000.0, /*ios=*/1000.0, /*mem_kb=*/2048.0},
  };
  return mix;
}

TransactionMix TransactionMix::TpceLike() {
  TransactionMix mix;
  mix.name = "tpce-like";
  // A brokerage OLTP user issues many short transactions. Totals: ~1.26
  // CPU-seconds and ~1800 logical IOs per active user-hour, ~4 MB session
  // memory.
  mix.profiles = {
      {TransactionClass::kUpdate, "trade-order",
       /*rate=*/30.0, /*cpu_ms=*/18.0, /*ios=*/25.0, /*mem_kb=*/1024.0},
      {TransactionClass::kPointSelect, "trade-lookup",
       /*rate=*/60.0, /*cpu_ms=*/6.0, /*ios=*/10.0, /*mem_kb=*/1024.0},
      {TransactionClass::kInsert, "market-feed",
       /*rate=*/120.0, /*cpu_ms=*/2.0, /*ios=*/2.5, /*mem_kb=*/1024.0},
      {TransactionClass::kUpdate, "customer-account-update",
       /*rate=*/10.0, /*cpu_ms=*/12.0, /*ios=*/15.0, /*mem_kb=*/1024.0},
  };
  return mix;
}

}  // namespace capplan::workload
