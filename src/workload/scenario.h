#ifndef CAPPLAN_WORKLOAD_SCENARIO_H_
#define CAPPLAN_WORKLOAD_SCENARIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/events.h"
#include "workload/transactions.h"

namespace capplan::workload {

// Epoch used as day zero for the experiment presets: 2019-06-03 00:00 UTC
// (a Monday, so weekday effects align with calendar weeks).
constexpr std::int64_t kExperimentStartEpoch = 1559520000;

// Describes a synthetic database workload driven against the simulated
// cluster: the substitution for the paper's Swingbench TPC-H / TPC-E drivers
// (Section 6.2). The scenario defines the user population, its activity
// profile over the day/week, per-user resource costs and scheduled shocks.
struct WorkloadScenario {
  std::string name;
  int n_instances = 2;

  // User population.
  double base_users = 40.0;
  double user_growth_per_day = 0.0;  // the OLTP trend: +50 users/day

  // Activity profile: fraction of users active, shaped over the day.
  // activity(t) = base_activity + daily_amplitude * day_shape(hour)
  //                             + weekly_amplitude * week_shape(dow)
  double base_activity = 0.5;
  double daily_amplitude = 0.4;   // business-hours bump (seasonality, C1)
  double weekly_amplitude = 0.0;  // weekday/weekend split (second season, C3)

  // The transaction mix the users execute; per-user resource costs below
  // are derived from it (see ApplyMix).
  TransactionMix mix;

  // Per-active-user resource costs (derived from `mix` by the presets; can
  // be set directly for custom scenarios).
  double cpu_per_user = 0.8;       // CPU percentage points
  double memory_per_user = 8.0;    // MB (sessions, PGA)
  double iops_per_user = 25000.0;  // logical IOs per hour

  // Derives cpu_per_user / memory_per_user / iops_per_user from `m`.
  void ApplyMix(const TransactionMix& m) {
    mix = m;
    cpu_per_user = m.CpuPercentPerUser();
    memory_per_user = m.SessionMemoryMb();
    iops_per_user = m.LogicalIosPerUserHour();
  }

  // Instance baseline consumption (background processes, SGA).
  double cpu_base = 5.0;
  double memory_base = 2048.0;
  double iops_base = 50000.0;

  // Dataset growth: fractional increase of per-user IO cost per day
  // ("the data set becomes bigger and thus code execution times lengthen").
  double io_cost_growth_per_day = 0.0;

  // Relative Gaussian noise applied to CPU/IOPS (memory gets 1/4 of it).
  double noise_level = 0.03;

  // Shocks (C4).
  std::vector<ScheduledEvent> events;

  // Experiment One: simple OLAP workload — 40 users, strong daily
  // seasonality, mild growth, nightly midnight backup on node 1.
  static WorkloadScenario Olap();

  // Experiment Two: complicated OLTP workload — user base growing by 50/day
  // (trend), twice-daily logon surges (multiple seasonality: 1000 users at
  // 07:00 for 4 h, 1000 more at 09:00 for 1 h), 6-hourly backups (shocks).
  static WorkloadScenario Oltp();
};

}  // namespace capplan::workload

#endif  // CAPPLAN_WORKLOAD_SCENARIO_H_
