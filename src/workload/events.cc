#include "workload/events.h"

namespace capplan::workload {

const char* EventKindName(EventKind kind) {
  switch (kind) {
    case EventKind::kBackup:
      return "backup";
    case EventKind::kBatchJob:
      return "batch-job";
    case EventKind::kUserSurge:
      return "user-surge";
    case EventKind::kFailover:
      return "failover";
  }
  return "?";
}

bool ScheduledEvent::IsActiveAt(std::int64_t t) const {
  if (t < first_start_epoch) return false;
  if (period_seconds <= 0) {
    return t < first_start_epoch + duration_seconds;
  }
  const std::int64_t offset = (t - first_start_epoch) % period_seconds;
  return offset < duration_seconds;
}

int ScheduledEvent::OccurrencesIn(std::int64_t from, std::int64_t to) const {
  if (to <= from) return 0;
  if (period_seconds <= 0) {
    return (first_start_epoch >= from && first_start_epoch < to) ? 1 : 0;
  }
  if (to <= first_start_epoch) return 0;
  const std::int64_t lo =
      from > first_start_epoch ? from - first_start_epoch : 0;
  const std::int64_t hi = to - first_start_epoch;
  // Occurrence k starts at k*period; count k with lo <= k*period < hi.
  const std::int64_t k_lo = (lo + period_seconds - 1) / period_seconds;
  const std::int64_t k_hi = (hi + period_seconds - 1) / period_seconds;
  return static_cast<int>(k_hi - k_lo);
}

ScheduledEvent MakeBackup(std::int64_t first_start, int period_hours,
                          int duration_hours, double iops_add, double cpu_add,
                          int target_instance) {
  ScheduledEvent e;
  e.kind = EventKind::kBackup;
  e.name = "rman-backup";
  e.first_start_epoch = first_start;
  e.period_seconds = static_cast<std::int64_t>(period_hours) * 3600;
  e.duration_seconds = static_cast<std::int64_t>(duration_hours) * 3600;
  e.iops_add = iops_add;
  e.cpu_add = cpu_add;
  e.memory_add = 64.0;  // backup buffers
  e.target_instance = target_instance;
  return e;
}

ScheduledEvent MakeFailover(std::int64_t start_epoch, int duration_hours,
                            int target_instance,
                            std::int64_t period_seconds) {
  ScheduledEvent e;
  e.kind = EventKind::kFailover;
  e.name = "failover-" + std::to_string(target_instance);
  e.first_start_epoch = start_epoch;
  e.period_seconds = period_seconds;
  e.duration_seconds = static_cast<std::int64_t>(duration_hours) * 3600;
  e.target_instance = target_instance;
  return e;
}

ScheduledEvent MakeDailySurge(std::int64_t day0_epoch, int hour_of_day,
                              int duration_hours, double users) {
  ScheduledEvent e;
  e.kind = EventKind::kUserSurge;
  e.name = "logon-surge-" + std::to_string(hour_of_day);
  e.first_start_epoch =
      day0_epoch + static_cast<std::int64_t>(hour_of_day) * 3600;
  e.period_seconds = 24 * 3600;
  e.duration_seconds = static_cast<std::int64_t>(duration_hours) * 3600;
  e.users_add = users;
  e.target_instance = -1;
  return e;
}

}  // namespace capplan::workload
