#ifndef CAPPLAN_WORKLOAD_TRANSACTIONS_H_
#define CAPPLAN_WORKLOAD_TRANSACTIONS_H_

#include <string>
#include <vector>

namespace capplan::workload {

// Transaction-level workload description. The paper's testbed drives the
// database with Swingbench TPC-H-like (OLAP) and TPC-E-like (OLTP)
// transaction mixes ("IO is generated via SQL activity and data
// manipulation language ... executed via updates, inserts and deletes",
// Sections 7.1-7.2); the cluster simulator derives its per-user resource
// rates from these mixes instead of opaque constants.

enum class TransactionClass {
  kPointSelect,   // indexed single-row lookup
  kRangeScan,     // multi-row scan
  kUpdate,
  kInsert,
  kReportQuery,   // long-running analytic query
  kBulkLoad,      // batch DML
};

const char* TransactionClassName(TransactionClass cls);

// Cost profile of one transaction type.
struct TransactionProfile {
  TransactionClass cls = TransactionClass::kPointSelect;
  std::string name;
  double executions_per_user_hour = 0.0;  // rate per active user
  double cpu_ms_per_execution = 0.0;
  double logical_ios_per_execution = 0.0;
  double session_memory_kb = 0.0;  // per connected user attributable share
};

// A weighted set of transaction types.
struct TransactionMix {
  std::string name;
  std::vector<TransactionProfile> profiles;

  // Aggregate per-active-user rates implied by the mix.
  double CpuSecondsPerUserHour() const;
  double LogicalIosPerUserHour() const;
  // Per-connected-user session memory in MB.
  double SessionMemoryMb() const;

  // CPU percentage points one active user consumes on one CPU-second/sec
  // host normalization (cpu-seconds per hour / 3600 * 100).
  double CpuPercentPerUser() const {
    return CpuSecondsPerUserHour() / 3600.0 * 100.0;
  }

  // TPC-H-like decision-support mix: few heavy scan queries dominate.
  static TransactionMix TpchLike();
  // TPC-E-like brokerage OLTP mix: many short indexed transactions.
  static TransactionMix TpceLike();
};

}  // namespace capplan::workload

#endif  // CAPPLAN_WORKLOAD_TRANSACTIONS_H_
