#ifndef CAPPLAN_WORKLOAD_EVENTS_H_
#define CAPPLAN_WORKLOAD_EVENTS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace capplan::workload {

// Scheduled operational events — the paper's "shocks": backups, batch jobs
// and failovers that "routinely and sporadically occur in computational
// workloads" (Section 3). Each event contributes additive load to the
// instance(s) it targets while active.
enum class EventKind { kBackup, kBatchJob, kUserSurge, kFailover };

const char* EventKindName(EventKind kind);

struct ScheduledEvent {
  EventKind kind = EventKind::kBackup;
  std::string name;
  std::int64_t first_start_epoch = 0;  // epoch seconds of first occurrence
  std::int64_t period_seconds = 0;     // 0 = one-shot
  std::int64_t duration_seconds = 0;

  // Additive load while active.
  double cpu_add = 0.0;     // CPU percentage points
  double memory_add = 0.0;  // MB
  double iops_add = 0.0;    // logical IOs per hour
  double users_add = 0.0;   // concurrent users (surges)

  // Instance index the event runs on; -1 = every instance.
  int target_instance = -1;

  // True when the event is running at epoch second `t`.
  bool IsActiveAt(std::int64_t t) const;

  // Number of occurrences with start time in [from, to).
  int OccurrencesIn(std::int64_t from, std::int64_t to) const;
};

// Convenience builders used by the experiment presets.

// Recovery-Manager-style backup: heavy IO, some CPU, starting at
// `first_start` and repeating every `period_hours`.
ScheduledEvent MakeBackup(std::int64_t first_start, int period_hours,
                          int duration_hours, double iops_add, double cpu_add,
                          int target_instance);

// Logon surge of `users` extra users at `hour_of_day` (UTC) daily for
// `duration_hours`, across all instances.
ScheduledEvent MakeDailySurge(std::int64_t day0_epoch, int hour_of_day,
                              int duration_hours, double users);

// Failover: while active, `target_instance` serves no load and the
// remaining instances absorb its share (the paper's disaster-recovery
// scenario: "the system fails over to a new site"). One-shot by default
// (period 0); recurring failovers model a crash-looping system, which the
// learning engine treats as behaviour per the >=3-occurrences rule.
ScheduledEvent MakeFailover(std::int64_t start_epoch, int duration_hours,
                            int target_instance,
                            std::int64_t period_seconds = 0);

}  // namespace capplan::workload

#endif  // CAPPLAN_WORKLOAD_EVENTS_H_
