#include "workload/scenario.h"

namespace capplan::workload {

WorkloadScenario WorkloadScenario::Olap() {
  WorkloadScenario s;
  s.name = "olap";
  s.n_instances = 2;
  s.base_users = 40.0;
  s.user_growth_per_day = 0.5;  // modest growth
  s.base_activity = 0.45;
  s.daily_amplitude = 0.45;
  s.weekly_amplitude = 0.0;  // paper: "did not exhibit multiple seasonality"
  // OLAP: the TPC-H-like mix — long scan-heavy queries, high IO per user
  // (~1.13 CPU points, 24 MB, 42k logical IO/h per active user).
  s.ApplyMix(TransactionMix::TpchLike());
  s.cpu_base = 6.0;
  s.memory_base = 4096.0;
  s.iops_base = 120000.0;
  s.io_cost_growth_per_day = 0.004;  // "dataset grew by several GB per hour"
  s.noise_level = 0.04;
  // Midnight archivelog backup on node 1 (instance index 0 = cdbm011):
  // "a backup task (cbdm011) ... executed from Node 1 at midnight every
  // night" — heavy IO plus CPU and memory.
  s.events.push_back(MakeBackup(kExperimentStartEpoch, /*period_hours=*/24,
                                /*duration_hours=*/2, /*iops_add=*/600000.0,
                                /*cpu_add=*/12.0, /*target_instance=*/0));
  return s;
}

WorkloadScenario WorkloadScenario::Oltp() {
  WorkloadScenario s;
  s.name = "oltp";
  s.n_instances = 2;
  s.base_users = 300.0;
  s.user_growth_per_day = 50.0;  // the paper's trend driver
  s.base_activity = 0.35;
  s.daily_amplitude = 0.35;
  s.weekly_amplitude = 0.12;  // weekday/weekend second season
  // OLTP: the TPC-E-like mix — many short indexed transactions (~0.035
  // CPU points, 4 MB, 1.8k logical IO/h per active user).
  s.ApplyMix(TransactionMix::TpceLike());
  s.cpu_base = 4.0;
  s.memory_base = 3072.0;
  s.iops_base = 80000.0;
  s.io_cost_growth_per_day = 0.002;
  s.noise_level = 0.03;
  // Twice-daily logon surges (Section 7.2): 1000 users at 07:00 for 4 h and
  // another 1000 at 09:00 for 1 h.
  s.events.push_back(MakeDailySurge(kExperimentStartEpoch, /*hour_of_day=*/7,
                                    /*duration_hours=*/4, /*users=*/1000.0));
  s.events.push_back(MakeDailySurge(kExperimentStartEpoch, /*hour_of_day=*/9,
                                    /*duration_hours=*/1, /*users=*/1000.0));
  // Recovery Manager backup every 6 hours — the large logical-IOPS spike of
  // Figure 3(c). Runs on both nodes (redo housekeeping).
  s.events.push_back(MakeBackup(kExperimentStartEpoch, /*period_hours=*/6,
                                /*duration_hours=*/1, /*iops_add=*/450000.0,
                                /*cpu_add=*/8.0, /*target_instance=*/-1));
  return s;
}

}  // namespace capplan::workload
