#include "workload/cluster.h"

#include <algorithm>
#include <cmath>

namespace capplan::workload {

namespace {
constexpr double kPi = 3.14159265358979323846;

// SplitMix64: cheap, well-distributed 64-bit mixer.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double UniformFromHash(std::uint64_t h) {
  // 53-bit mantissa into (0, 1).
  return (static_cast<double>(h >> 11) + 0.5) / 9007199254740992.0;
}

}  // namespace

const char* MetricName(Metric metric) {
  switch (metric) {
    case Metric::kCpu:
      return "cpu";
    case Metric::kMemory:
      return "memory";
    case Metric::kLogicalIops:
      return "logical_iops";
  }
  return "?";
}

double MetricSample::Get(Metric metric) const {
  switch (metric) {
    case Metric::kCpu:
      return cpu_pct;
    case Metric::kMemory:
      return memory_mb;
    case Metric::kLogicalIops:
      return logical_iops;
  }
  return 0.0;
}

ClusterSimulator::ClusterSimulator(WorkloadScenario scenario,
                                   std::uint64_t seed,
                                   std::int64_t start_epoch)
    : scenario_(std::move(scenario)), seed_(seed), start_epoch_(start_epoch) {}

std::string ClusterSimulator::InstanceName(int instance) const {
  return "cdbm01" + std::to_string(instance + 1);
}

double ClusterSimulator::ActivityAt(std::int64_t epoch) const {
  const double seconds_in_day =
      static_cast<double>(((epoch % 86400) + 86400) % 86400);
  const double hour = seconds_in_day / 3600.0;
  // Business-hours bump peaking around 13:00, flattened at night.
  const double day_shape =
      0.5 * (1.0 - std::cos(2.0 * kPi * (hour - 5.0) / 24.0));
  double activity =
      scenario_.base_activity + scenario_.daily_amplitude * day_shape;
  if (scenario_.weekly_amplitude > 0.0) {
    // Day 0 of the experiment clock is a Monday; weekends dip.
    const std::int64_t day_index =
        ((epoch - start_epoch_) / 86400 % 7 + 7) % 7;
    const double week_shape = (day_index >= 5) ? -1.0 : 0.25;
    activity += scenario_.weekly_amplitude * week_shape;
  }
  return std::clamp(activity, 0.02, 1.0);
}

double ClusterSimulator::UsersAt(std::int64_t epoch) const {
  const double days =
      static_cast<double>(epoch - start_epoch_) / 86400.0;
  double users = scenario_.base_users +
                 scenario_.user_growth_per_day * std::max(0.0, days);
  for (const auto& e : scenario_.events) {
    if (e.users_add > 0.0 && e.IsActiveAt(epoch)) users += e.users_add;
  }
  return std::max(0.0, users);
}

double ClusterSimulator::Noise(int instance, std::int64_t epoch,
                               int channel) const {
  const std::uint64_t h1 =
      Mix64(seed_ ^ Mix64(static_cast<std::uint64_t>(epoch)) ^
            Mix64(static_cast<std::uint64_t>(instance) * 1000003ULL +
                  static_cast<std::uint64_t>(channel)));
  const std::uint64_t h2 = Mix64(h1 ^ 0xda3e39cb94b95bdbULL);
  // Box-Muller.
  const double u1 = UniformFromHash(h1);
  const double u2 = UniformFromHash(h2);
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * kPi * u2);
}

MetricSample ClusterSimulator::SampleAt(int instance,
                                        std::int64_t epoch) const {
  const double days = static_cast<double>(epoch - start_epoch_) / 86400.0;
  const double activity = ActivityAt(epoch);
  const double users_total = UsersAt(epoch);
  const int n = std::max(1, scenario_.n_instances);

  // Failovers: a downed instance serves nothing and reports only residual
  // background load; the survivors absorb its share.
  std::vector<bool> down(static_cast<std::size_t>(n), false);
  int alive = n;
  for (const auto& e : scenario_.events) {
    if (e.kind != EventKind::kFailover || !e.IsActiveAt(epoch)) continue;
    if (e.target_instance >= 0 && e.target_instance < n &&
        !down[static_cast<std::size_t>(e.target_instance)]) {
      down[static_cast<std::size_t>(e.target_instance)] = true;
      --alive;
    }
  }
  if (down[static_cast<std::size_t>(instance)] || alive <= 0) {
    MetricSample s;
    s.epoch = epoch;
    const double nl = scenario_.noise_level;
    s.cpu_pct = std::clamp(1.0 * (1.0 + nl * Noise(instance, epoch, 0)),
                           0.0, 100.0);
    s.memory_mb = std::max(
        0.0, 128.0 * (1.0 + 0.25 * nl * Noise(instance, epoch, 1)));
    s.logical_iops = 0.0;
    return s;
  }

  // Load balancing with a small static skew (real clusters are never
  // perfectly even; the paper's two instances differ visibly in Figure 2).
  double share = 1.0 / static_cast<double>(alive);
  const double skew = 0.06;
  if (alive > 1) {
    share *= (instance % 2 == 0) ? (1.0 + skew) : (1.0 - skew);
  }
  const double users_here = users_total * share;
  const double active_users = users_here * activity;

  // Dataset growth makes each unit of work cost more IO over time.
  const double io_cost_factor =
      1.0 + scenario_.io_cost_growth_per_day * std::max(0.0, days);

  double cpu = scenario_.cpu_base + active_users * scenario_.cpu_per_user;
  double mem =
      scenario_.memory_base + users_here * scenario_.memory_per_user;
  double iops = scenario_.iops_base +
                active_users * scenario_.iops_per_user * io_cost_factor;

  for (const auto& e : scenario_.events) {
    if (!e.IsActiveAt(epoch)) continue;
    if (e.target_instance >= 0 && e.target_instance != instance) continue;
    cpu += e.cpu_add;
    mem += e.memory_add;
    iops += e.iops_add;
  }

  const double nl = scenario_.noise_level;
  cpu *= 1.0 + nl * Noise(instance, epoch, 0);
  mem *= 1.0 + 0.25 * nl * Noise(instance, epoch, 1);
  iops *= 1.0 + nl * Noise(instance, epoch, 2);

  MetricSample s;
  s.epoch = epoch;
  s.cpu_pct = std::clamp(cpu, 0.0, 100.0);
  s.memory_mb = std::max(0.0, mem);
  s.logical_iops = std::max(0.0, iops);
  return s;
}

}  // namespace capplan::workload
