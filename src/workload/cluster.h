#ifndef CAPPLAN_WORKLOAD_CLUSTER_H_
#define CAPPLAN_WORKLOAD_CLUSTER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/scenario.h"

namespace capplan::workload {

// Which database metric a sample or series refers to.
enum class Metric { kCpu, kMemory, kLogicalIops };
const char* MetricName(Metric metric);

// One agent observation of one instance.
struct MetricSample {
  std::int64_t epoch = 0;
  double cpu_pct = 0.0;
  double memory_mb = 0.0;
  double logical_iops = 0.0;  // logical IOs per hour (rate)

  double Get(Metric metric) const;
};

// Deterministic simulator of an N-node clustered database running a
// WorkloadScenario — the stand-in for the paper's two-node Oracle cluster
// behind an application tier (Figure 5). Load is balanced across instances
// with a small static skew; scheduled events add instance-local load.
//
// SampleAt is a pure function of (scenario, seed, instance, epoch): the
// noise is hash-derived, so any caller observing the same instant sees the
// same value and whole traces are reproducible.
class ClusterSimulator {
 public:
  ClusterSimulator(WorkloadScenario scenario, std::uint64_t seed,
                   std::int64_t start_epoch = kExperimentStartEpoch);

  int n_instances() const { return scenario_.n_instances; }
  std::int64_t start_epoch() const { return start_epoch_; }
  const WorkloadScenario& scenario() const { return scenario_; }

  // "cdbm011", "cdbm012", ... matching the paper's instance names.
  std::string InstanceName(int instance) const;

  // Total (cluster-wide) concurrent users at `epoch`, including surges.
  double UsersAt(std::int64_t epoch) const;

  // Fraction of users active at `epoch` (daily/weekly profile).
  double ActivityAt(std::int64_t epoch) const;

  // The metric sample instance `instance` would report at `epoch`.
  MetricSample SampleAt(int instance, std::int64_t epoch) const;

 private:
  // Standard-normal noise derived from (seed, instance, epoch, channel).
  double Noise(int instance, std::int64_t epoch, int channel) const;

  WorkloadScenario scenario_;
  std::uint64_t seed_;
  std::int64_t start_epoch_;
};

}  // namespace capplan::workload

#endif  // CAPPLAN_WORKLOAD_CLUSTER_H_
