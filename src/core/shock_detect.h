#ifndef CAPPLAN_CORE_SHOCK_DETECT_H_
#define CAPPLAN_CORE_SHOCK_DETECT_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace capplan::core {

// A recurring shock detected in a metric trace: a spike that repeats at the
// same phase of a period (e.g. a backup at midnight every day, or every six
// hours). Becomes an exogenous 0/1 pulse regressor for SARIMAX.
struct DetectedShock {
  std::size_t period = 24;    // recurrence period in observations
  std::size_t phase = 0;      // offset within the period where it starts
  std::size_t duration = 1;   // consecutive observations affected
  int occurrences = 0;        // times observed in the training window
  double magnitude = 0.0;     // mean excess over the local level
};

// Detects recurring spikes and applies the paper's behaviour rule: "the
// event needs to happen more than 3 times for it to be a behaviour"
// (Section 9); spikes seen fewer times are transients (e.g. a one-off crash
// or failover) and are discarded from modelling.
class ShockDetector {
 public:
  struct Options {
    double z_threshold = 2.5;     // robust z-score for spike marking
    int min_occurrences = 3;      // the paper's recurrence rule
    std::size_t period = 24;      // phase grouping period (hour-of-day)
    // A phase counts as recurring when it spikes in at least this fraction
    // of the periods it appears in.
    double min_recurrence_rate = 0.5;
  };

  ShockDetector() : ShockDetector(Options()) {}
  explicit ShockDetector(Options options) : options_(options) {}

  // Returns recurring shocks, strongest first. Also exposes the discarded
  // transient spike indices via `transients` when non-null.
  Result<std::vector<DetectedShock>> Detect(
      const std::vector<double>& x,
      std::vector<std::size_t>* transients = nullptr) const;

  // Builds one 0/1 pulse column per shock over observations
  // [t_begin, t_begin + n) — usable both for the training window (t_begin=0)
  // and for the forecast horizon (t_begin=n_train).
  static std::vector<std::vector<double>> PulseColumns(
      const std::vector<DetectedShock>& shocks, std::size_t t_begin,
      std::size_t n);

  // Replaces the flagged transient observations with the linear
  // interpolation of their non-transient neighbours — the paper's crash
  // rule in data form: "if a system crashes we discard it" so one-off
  // spikes do not contaminate the fitted model.
  static std::vector<double> RemoveTransients(
      const std::vector<double>& x, const std::vector<std::size_t>& transients);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_SHOCK_DETECT_H_
