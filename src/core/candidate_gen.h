#ifndef CAPPLAN_CORE_CANDIDATE_GEN_H_
#define CAPPLAN_CORE_CANDIDATE_GEN_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "core/split.h"
#include "models/arima_spec.h"
#include "tsa/fourier.h"

namespace capplan::core {

// One candidate model configuration in the selection grid.
struct ModelCandidate {
  Technique family = Technique::kArima;
  models::ArimaSpec spec;
  // Number of exogenous pulse columns to attach (prefix of the available
  // shock columns; 0 = none).
  std::size_t n_exog = 0;
  std::vector<tsa::FourierSpec> fourier;
};

// Key identifying a warm-start chain: all candidate fields except the AR
// order p. Candidates sharing a chain differ only in how many autoregressive
// lags they carry, so a converged fit is an excellent simplex seed for its
// chain neighbours (the selector's warm-started fast path walks each chain
// in p order).
std::string WarmChainKey(const ModelCandidate& candidate);

// Reproduces the paper's Section 6.3 model grids:
//   * ARIMA: p in 1..30, d in {0,1}, q in {0,1,2}          -> 180 per instance
//   * SARIMAX: the same 30 lags x 22 seasonal templates    -> 660 per instance
//   * SARIMAX+FFT+Exog: the 660 grid with the shock pulse
//     regressors and Fourier terms attached, plus 4
//     exogenous-subset and 2 Fourier-harmonic variants of
//     the reference spec                                   -> 666 per instance
//
// The 22 per-lag seasonal templates are the (d,q,(P,D,Q)) combinations:
//   d in {0,1} x q in {0,1,2} x (P,D,Q) in {(0,0,1),(1,1,1),(1,0,1)}  (18)
//   d in {0,1} x q in {1,2}   x (P,D,Q) =  (0,1,1)                    (4)
// spanning the paper's quoted range (1,0,0)(0,0,1,24) ... (1,1,2)(1,1,1,24).
class CandidateGenerator {
 public:
  struct Options {
    int max_lag = 30;             // p ranges over 1..max_lag
    std::size_t season = 24;      // F for the seasonal families
    std::size_t n_shock_columns = 4;   // available exogenous pulse columns
    // Fourier periods attached in the FFT family (typically the detected
    // seasons, e.g. {24, 168}); harmonics per period.
    std::vector<double> fourier_periods = {24.0, 168.0};
    std::size_t fourier_harmonics = 2;
  };

  CandidateGenerator() : CandidateGenerator(Options()) {}
  explicit CandidateGenerator(Options options) : options_(std::move(options)) {}

  // The full grid for one family.
  std::vector<ModelCandidate> Generate(Technique family) const;

  // Grid restricted to AR lags the correlogram marks as significant — the
  // paper's tuning step: "looking at where the data points intersect with
  // the shaded areas ... reducing the thousands of potential models
  // considerably". `significant_lags` come from tsa::SignificantLags on the
  // PACF; lags 1..3 are always kept as a safety net.
  std::vector<ModelCandidate> GeneratePruned(
      Technique family, const std::vector<std::size_t>& significant_lags) const;

  // Expected grid size (paper Section 6.3: 180 / 660 / 666).
  static std::size_t ExpectedCount(Technique family);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_CANDIDATE_GEN_H_
