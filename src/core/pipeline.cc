#include "core/pipeline.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault.h"
#include "models/arima.h"
#include "obs/trace.h"
#include "models/baselines.h"
#include "models/ets.h"
#include "models/regression.h"
#include "core/ensemble.h"
#include "models/dshw.h"
#include "models/tbats.h"
#include "tsa/metrics.h"
#include "tsa/acf.h"
#include "tsa/interpolate.h"
#include "tsa/stationarity.h"

namespace capplan::core {

namespace {

// Named HES variants explored by the HES branch.
struct HesCandidate {
  const char* name;
  models::EtsSpec spec;
};

std::vector<HesCandidate> HesCandidates(std::size_t period, bool positive) {
  std::vector<HesCandidate> out;
  out.push_back({"SES", models::SimpleExponentialSmoothing()});
  out.push_back({"Holt", models::HoltLinearTrend(false)});
  out.push_back({"Holt-damped", models::HoltLinearTrend(true)});
  if (period >= 2) {
    out.push_back({"HW-additive", models::HoltWinters(period, false, false)});
    out.push_back(
        {"HW-additive-damped", models::HoltWinters(period, false, true)});
    if (positive) {
      out.push_back(
          {"HW-multiplicative", models::HoltWinters(period, true, false)});
    }
  }
  return out;
}

// Every rung must end in numbers a capacity planner can chart.
bool AllFinite(const std::vector<double>& values) {
  for (double v : values) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

const char* DegradationLevelName(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kFull:
      return "full";
    case DegradationLevel::kHesOnly:
      return "hes";
    case DegradationLevel::kSes:
      return "ses";
    case DegradationLevel::kBaseline:
      return "baseline";
  }
  return "?";
}

Result<PipelineReport> Pipeline::Run(const tsa::TimeSeries& series) const {
  obs::TraceSpan span("pipeline.run", "pipeline");
  Result<PipelineReport> full = RunSelection(series);
  if (full.ok() || !options_.degrade_on_failure) return full;
  span.set_tag("degraded");
  return RunDegraded(series, full.status());
}

Result<PipelineReport> Pipeline::RunSelection(
    const tsa::TimeSeries& series) const {
  CAPPLAN_RETURN_NOT_OK(FaultHit("pipeline.run"));
  PipelineReport report;
  report.series_name = series.name();

  // Stage 1: gap fill.
  report.gaps_filled = series.CountMissing();
  CAPPLAN_ASSIGN_OR_RETURN(tsa::TimeSeries filled,
                           tsa::LinearInterpolate(series));

  // Stage 2: split per Table 1.
  CAPPLAN_ASSIGN_OR_RETURN(report.split, SplitFor(filled.frequency()));
  if (options_.horizon_override > 0) {
    report.split.prediction = options_.horizon_override;
  }
  CAPPLAN_ASSIGN_OR_RETURN(auto split_pair, ApplySplit(filled));
  const tsa::TimeSeries& train = split_pair.first;
  const tsa::TimeSeries& test = split_pair.second;
  // The full policy window (train + test), used for the final refit.
  const std::size_t window_begin = filled.size() - report.split.observations;
  CAPPLAN_ASSIGN_OR_RETURN(
      tsa::TimeSeries full,
      filled.Slice(window_begin, report.split.observations));

  // Stage 3: understand the data.
  const std::size_t default_period =
      tsa::DefaultSeasonalPeriod(filled.frequency());
  if (default_period >= 2 && train.size() >= 2 * default_period) {
    auto traits = tsa::MeasureTraits(train.values(), default_period);
    if (traits.ok()) report.traits = *traits;
  }
  // Seasonality routing: FFT period detection feeding both the SARIMAX
  // Fourier candidates and the TBATS lattice branch. A detection failure
  // degrades to the single-season path here, not to the ladder.
  lattice::RouterOptions router_opts = options_.router;
  router_opts.metrics = options_.metrics;
  const lattice::RoutingDecision routing =
      lattice::PeriodRouter(router_opts).Route(train.values());
  report.seasons = routing.seasons;
  report.multiple_seasonality = routing.multiple_seasonality;
  report.period_detection_fallback = routing.detection_failed;
  auto rec_d = tsa::RecommendDifferencing(train.values());
  if (rec_d.ok()) report.recommended_d = *rec_d;

  // Stage 4: branch and select.
  double best_rmse = std::numeric_limits<double>::infinity();
  PipelineReport best_report = report;
  auto consider = [&](Technique family) -> Status {
    PipelineReport attempt = report;
    Result<double> rmse =
        family == Technique::kHes
            ? RunHesBranch(train, test, full, &attempt)
            : (family == Technique::kTbats
                   ? RunTbatsBranch(train, test, full, &attempt)
                   : (family == Technique::kBaseline
                          ? RunBaselineBranch(train, test, full, &attempt)
                          : RunSarimaxBranch(family, train, test, full,
                                             &attempt)));
    if (!rmse.ok()) return rmse.status();
    if (*rmse < best_rmse) {
      best_rmse = *rmse;
      best_report = attempt;
    }
    return Status::OK();
  };

  Status last_error = Status::OK();
  auto try_family = [&](Technique family) {
    Status st = consider(family);
    if (!st.ok()) last_error = st;
  };
  switch (options_.technique) {
    case Technique::kAuto:
      try_family(Technique::kHes);
      try_family(Technique::kSarimaxFftExog);
      // Multi-seasonal series additionally compete through the TBATS
      // lattice (paper Section 4.3/4.4 routing).
      if (options_.auto_tbats && report.multiple_seasonality) {
        try_family(Technique::kTbats);
      }
      break;
    default:
      try_family(options_.technique);
      break;
  }
  if (!std::isfinite(best_rmse)) {
    if (!last_error.ok()) return last_error;
    return Status::ComputeError("Pipeline: no model could be fitted");
  }
  best_report.forecast_start_epoch = full.EndEpoch();
  if (options_.metrics != nullptr &&
      best_report.chosen_family == Technique::kTbats) {
    options_.metrics
        ->GetCounter("capplan_select_tbats_selected_total", {},
                     "Selections won by the TBATS lattice branch")
        .Inc();
  }

  // Stage 5: record in the central model repository.
  if (options_.model_repository != nullptr) {
    repo::StoredModel stored;
    stored.key = series.name();
    stored.technique = TechniqueName(best_report.chosen_family);
    stored.spec = best_report.chosen_spec;
    stored.test_rmse = best_report.test_accuracy.rmse;
    stored.test_mape = best_report.test_accuracy.mape;
    stored.fitted_at_epoch = full.EndEpoch();
    stored.ar_coef = best_report.chosen_ar;
    stored.ma_coef = best_report.chosen_ma;
    for (const auto& s : best_report.seasons) {
      stored.periods.push_back(static_cast<double>(s.period));
    }
    options_.model_repository->Put(stored);
  }
  return best_report;
}

Result<double> Pipeline::RunHesBranch(const tsa::TimeSeries& train,
                                      const tsa::TimeSeries& test,
                                      const tsa::TimeSeries& full,
                                      PipelineReport* report) const {
  obs::TraceSpan span("pipeline.hes", "pipeline");
  CAPPLAN_RETURN_NOT_OK(FaultHit("pipeline.hes"));
  const std::size_t period = tsa::DefaultSeasonalPeriod(train.frequency());
  bool positive = true;
  for (double v : train.values()) {
    if (v <= 0.0) {
      positive = false;
      break;
    }
  }
  const auto candidates = HesCandidates(period, positive);
  double best_rmse = std::numeric_limits<double>::infinity();
  const HesCandidate* best = nullptr;
  tsa::AccuracyReport best_acc;
  for (const auto& cand : candidates) {
    auto model = models::EtsModel::Fit(train.values(), cand.spec);
    if (!model.ok()) continue;
    auto fc = model->Predict(test.size(), options_.interval_level);
    if (!fc.ok()) continue;
    auto acc = tsa::MeasureAccuracy(test.values(), fc->mean);
    if (!acc.ok()) continue;
    if (acc->rmse < best_rmse) {
      best_rmse = acc->rmse;
      best = &cand;
      best_acc = *acc;
    }
  }
  // Double-seasonal Holt-Winters variant for hourly data with a weekly
  // second cycle (paper challenge C3 within the HES branch).
  bool dshw_wins = false;
  tsa::AccuracyReport dshw_acc;
  const bool dshw_applicable = period == 24 &&
                               train.size() >= 2 * 168 + 24 &&
                               full.size() >= 2 * 168 + 24;
  if (dshw_applicable) {
    auto dshw = models::DshwModel::Fit(train.values(), 24, 168);
    if (dshw.ok()) {
      auto fc = dshw->Predict(test.size(), options_.interval_level);
      if (fc.ok()) {
        auto acc = tsa::MeasureAccuracy(test.values(), fc->mean);
        if (acc.ok() && acc->rmse < best_rmse) {
          best_rmse = acc->rmse;
          dshw_acc = *acc;
          dshw_wins = true;
        }
      }
    }
  }

  if (best == nullptr && !dshw_wins) {
    return Status::ComputeError("HES branch: no variant fitted");
  }
  // Refit the winner on the full window and forecast the horizon.
  models::Forecast fc;
  if (dshw_wins) {
    CAPPLAN_ASSIGN_OR_RETURN(models::DshwModel final_model,
                             models::DshwModel::Fit(full.values(), 24, 168));
    CAPPLAN_ASSIGN_OR_RETURN(
        fc, final_model.Predict(report->split.prediction,
                                options_.interval_level));
    report->chosen_spec = "DSHW(24,168)";
    report->test_accuracy = dshw_acc;
  } else {
    CAPPLAN_ASSIGN_OR_RETURN(
        models::EtsModel final_model,
        models::EtsModel::Fit(full.values(), best->spec));
    CAPPLAN_ASSIGN_OR_RETURN(
        fc, final_model.Predict(report->split.prediction,
                                options_.interval_level));
    report->chosen_spec =
        std::string(best->name) + " " + best->spec.ToString();
    report->test_accuracy = best_acc;
  }
  if (!AllFinite(fc.mean)) {
    return Status::ComputeError("HES branch: non-finite forecast");
  }
  report->chosen_family = Technique::kHes;
  report->candidates_evaluated +=
      candidates.size() + (dshw_applicable ? 1 : 0);
  report->candidates_succeeded += 1;
  report->forecast = std::move(fc);
  return best_rmse;
}

Result<double> Pipeline::RunTbatsBranch(const tsa::TimeSeries& train,
                                        const tsa::TimeSeries& test,
                                        const tsa::TimeSeries& full,
                                        PipelineReport* report) const {
  CAPPLAN_RETURN_NOT_OK(FaultHit("pipeline.tbats"));
  // Seasonal periods for the trigonometric blocks: the routed seasons,
  // falling back to the frequency's conventional period.
  std::vector<double> periods;
  for (const auto& s : report->seasons) {
    periods.push_back(static_cast<double>(s.period));
  }
  if (periods.empty()) {
    const std::size_t p = tsa::DefaultSeasonalPeriod(train.frequency());
    if (p >= 2) periods.push_back(static_cast<double>(p));
  }
  // AIC-pruned option lattice on the training window; survivors are
  // cold-rescored at the oracle budget, so the winning configuration is
  // identical to the exhaustive enumeration (docs/selection.md).
  lattice::TbatsLatticeOptions lat_opts = options_.tbats_lattice;
  lat_opts.n_threads = options_.n_threads;
  lat_opts.metrics = options_.metrics;
  lattice::TbatsLattice tbats_lattice(lat_opts);
  CAPPLAN_ASSIGN_OR_RETURN(lattice::TbatsSelection sel,
                           tbats_lattice.Select(train.values(), periods));
  CAPPLAN_ASSIGN_OR_RETURN(
      models::Forecast test_fc,
      sel.model.Predict(test.size(), options_.interval_level));
  CAPPLAN_ASSIGN_OR_RETURN(tsa::AccuracyReport acc,
                           tsa::MeasureAccuracy(test.values(), test_fc.mean));
  // Refit the selected configuration on the full window.
  CAPPLAN_ASSIGN_OR_RETURN(
      models::TbatsModel final_model,
      models::TbatsModel::FitConfig(full.values(), sel.model.config(),
                                    lat_opts.model.max_fit_iterations));
  CAPPLAN_ASSIGN_OR_RETURN(
      models::Forecast fc,
      final_model.Predict(report->split.prediction,
                          options_.interval_level));
  if (!AllFinite(fc.mean)) {
    return Status::ComputeError("TBATS branch: non-finite forecast");
  }
  report->chosen_family = Technique::kTbats;
  report->chosen_spec = sel.model.config().ToString();
  report->test_accuracy = acc;
  report->candidates_evaluated += sel.profile.evaluated;
  report->candidates_succeeded += 1;
  report->candidates_pruned += sel.profile.pruned;
  report->tbats_profile = sel.profile;
  report->forecast = std::move(fc);
  return acc.rmse;
}

Result<double> Pipeline::RunSarimaxBranch(Technique family,
                                          const tsa::TimeSeries& train,
                                          const tsa::TimeSeries& test,
                                          const tsa::TimeSeries& full,
                                          PipelineReport* report) const {
  obs::TraceSpan span("pipeline.sarimax", "pipeline");
  const std::size_t default_period =
      tsa::DefaultSeasonalPeriod(train.frequency());
  // Primary season: strongest detected, falling back to the conventional
  // period for the frequency.
  std::size_t season = default_period;
  if (!report->seasons.empty()) season = report->seasons.front().period;
  if (season < 2) season = 24;

  // Shocks -> exogenous pulse columns (SARIMAX+FFT+Exog family only), and
  // transient cleanup when requested (the crash rule in data form).
  std::vector<double> train_values = train.values();
  std::vector<double> full_values = full.values();
  std::vector<DetectedShock> shocks;
  std::vector<std::size_t> transients;
  std::size_t n_transients = 0;
  if (family == Technique::kSarimaxFftExog || options_.remove_transients) {
    ShockDetector::Options sd_opts = options_.shock;
    sd_opts.period = season;
    ShockDetector detector(sd_opts);
    auto detected = detector.Detect(train_values, &transients);
    if (detected.ok()) {
      if (family == Technique::kSarimaxFftExog) shocks = *detected;
      n_transients = transients.size();
    }
  }
  if (options_.remove_transients && !transients.empty()) {
    train_values = ShockDetector::RemoveTransients(train_values, transients);
    // The training window is the prefix of the full window, so the indices
    // carry over directly.
    full_values = ShockDetector::RemoveTransients(full_values, transients);
  }
  const std::vector<std::vector<double>> exog_train =
      ShockDetector::PulseColumns(shocks, 0, train.size());
  const std::vector<std::vector<double>> exog_test =
      ShockDetector::PulseColumns(shocks, train.size(), test.size());

  // Candidate grid.
  CandidateGenerator::Options gen_opts;
  gen_opts.max_lag = options_.max_lag;
  gen_opts.season = season;
  gen_opts.n_shock_columns = shocks.size();
  gen_opts.fourier_periods.clear();
  if (family == Technique::kSarimaxFftExog && report->multiple_seasonality) {
    // Fourier terms when multiple seasonality is detected (paper §4.4).
    // The primary season is included too: combined with the D=0 corner of
    // the grid this gives the deterministic-seasonality + ARMA-errors
    // models that the paper's winning "SARIMAX with FFT and Exogenous"
    // family relies on.
    for (const auto& s : report->seasons) {
      gen_opts.fourier_periods.push_back(static_cast<double>(s.period));
    }
  }
  CandidateGenerator generator(gen_opts);
  std::vector<ModelCandidate> candidates;
  if (options_.prune_with_correlogram) {
    const std::size_t max_lag = std::min<std::size_t>(
        static_cast<std::size_t>(options_.max_lag), train.size() / 3);
    auto pacf = tsa::Pacf(train_values, max_lag);
    if (pacf.ok()) {
      const std::vector<std::size_t> lags =
          tsa::SignificantLags(*pacf, train.size());
      candidates = generator.GeneratePruned(family, lags);
    }
  }
  if (candidates.empty()) candidates = generator.Generate(family);

  // Parallel evaluation.
  ModelSelector::Options sel_opts;
  sel_opts.n_threads = options_.n_threads;
  sel_opts.keep_top = std::max<std::size_t>(options_.ensemble_top_k, 5);
  sel_opts.shared_transforms = options_.selector_fast_path;
  sel_opts.warm_start = options_.selector_fast_path;
  sel_opts.early_abort = options_.selector_fast_path;
  sel_opts.hint = options_.selector_hint;
  sel_opts.time_budget_seconds = options_.fit_time_budget_seconds;
  sel_opts.fourier_cache = options_.fourier_cache;
  ModelSelector selector(sel_opts);
  CAPPLAN_ASSIGN_OR_RETURN(
      SelectionResult sel,
      selector.Select(train_values, test.values(), candidates, exog_train,
                      exog_test));

  // Refits a candidate on the full window and forecasts the horizon,
  // projecting exogenous pulses forward.
  const std::size_t horizon = report->split.prediction;
  // The first successful refit (the winner, or the best ensemble member)
  // also records its converged coefficients for warm-starting future fits.
  auto note_coefficients = [&](const std::vector<double>& ar,
                               const std::vector<double>& ma) {
    if (report->chosen_ar.empty() && report->chosen_ma.empty()) {
      report->chosen_ar = ar;
      report->chosen_ma = ma;
    }
  };
  auto refit_and_forecast =
      [&](const ModelCandidate& cand) -> Result<models::Forecast> {
    if (cand.n_exog == 0 && cand.fourier.empty()) {
      CAPPLAN_ASSIGN_OR_RETURN(models::ArimaModel final_model,
                               models::ArimaModel::Fit(full_values,
                                                       cand.spec));
      note_coefficients(final_model.ar_coefficients(),
                        final_model.ma_coefficients());
      return final_model.Predict(horizon, options_.interval_level);
    }
    std::vector<std::vector<double>> exog_full =
        ShockDetector::PulseColumns(shocks, 0, full.size());
    std::vector<std::vector<double>> exog_future =
        ShockDetector::PulseColumns(shocks, full.size(), horizon);
    exog_full.resize(std::min<std::size_t>(cand.n_exog, exog_full.size()));
    exog_future.resize(
        std::min<std::size_t>(cand.n_exog, exog_future.size()));
    CAPPLAN_ASSIGN_OR_RETURN(
        models::SarimaxModel final_model,
        models::SarimaxModel::Fit(full_values, cand.spec, exog_full,
                                  cand.fourier, {}, options_.fourier_cache));
    note_coefficients(final_model.error_model().ar_coefficients(),
                      final_model.error_model().ma_coefficients());
    return final_model.Predict(horizon, exog_future,
                               options_.interval_level);
  };

  const ModelCandidate& win = sel.best.candidate;
  models::Forecast fc;
  const std::size_t ensemble_k =
      std::min(options_.ensemble_top_k, sel.top.size());
  if (ensemble_k > 1) {
    // Inverse-RMSE-weighted combination of the refitted top-k models.
    std::vector<models::Forecast> member_fcs;
    std::vector<double> weights;
    for (std::size_t i = 0; i < ensemble_k; ++i) {
      auto member = refit_and_forecast(sel.top[i].candidate);
      if (!member.ok()) continue;
      member_fcs.push_back(std::move(*member));
      weights.push_back(1.0 / (sel.top[i].accuracy.rmse + 1e-12));
    }
    std::vector<const models::Forecast*> ptrs;
    ptrs.reserve(member_fcs.size());
    for (const auto& f : member_fcs) ptrs.push_back(&f);
    CAPPLAN_ASSIGN_OR_RETURN(fc,
                             CombineForecasts(ptrs, std::move(weights)));
  } else {
    CAPPLAN_ASSIGN_OR_RETURN(fc, refit_and_forecast(win));
  }

  report->chosen_family = family;
  report->chosen_spec = win.spec.ToString();
  if (!win.fourier.empty()) report->chosen_spec += "+FFT";
  if (win.n_exog > 0) {
    report->chosen_spec += "+exog(" + std::to_string(win.n_exog) + ")";
  }
  if (ensemble_k > 1) {
    report->chosen_spec =
        "ensemble(top-" + std::to_string(ensemble_k) + ", best " +
        report->chosen_spec + ")";
  }
  report->test_accuracy = sel.best.accuracy;
  report->candidates_evaluated += sel.evaluated;
  report->candidates_succeeded += sel.succeeded;
  report->candidates_pruned += sel.pruned;
  report->selector_profile = sel.profile;
  report->shocks = shocks;
  report->transient_spikes_discarded = n_transients;
  report->forecast = std::move(fc);
  return sel.best.accuracy.rmse;
}

Result<double> Pipeline::RunBaselineBranch(const tsa::TimeSeries& train,
                                           const tsa::TimeSeries& test,
                                           const tsa::TimeSeries& full,
                                           PipelineReport* report) const {
  const std::size_t period = tsa::DefaultSeasonalPeriod(train.frequency());
  const bool seasonal = period >= 2 && train.size() >= 2 * period;
  auto forecast_from = [&](const std::vector<double>& history,
                           std::size_t horizon) {
    return seasonal ? models::SeasonalNaiveForecast(history, period, horizon,
                                                    options_.interval_level)
                    : models::NaiveForecast(history, horizon,
                                            options_.interval_level);
  };
  CAPPLAN_ASSIGN_OR_RETURN(models::Forecast test_fc,
                           forecast_from(train.values(), test.size()));
  CAPPLAN_ASSIGN_OR_RETURN(tsa::AccuracyReport acc,
                           tsa::MeasureAccuracy(test.values(), test_fc.mean));
  CAPPLAN_ASSIGN_OR_RETURN(
      models::Forecast fc,
      forecast_from(full.values(), report->split.prediction));
  if (!AllFinite(fc.mean)) {
    return Status::ComputeError("baseline branch: non-finite forecast");
  }
  report->chosen_family = Technique::kBaseline;
  report->chosen_spec = seasonal
                            ? "seasonal-naive(" + std::to_string(period) + ")"
                            : "naive";
  report->test_accuracy = acc;
  report->candidates_evaluated += 1;
  report->candidates_succeeded += 1;
  report->forecast = std::move(fc);
  return acc.rmse;
}

Result<PipelineReport> Pipeline::RunDegraded(const tsa::TimeSeries& series,
                                             const Status& cause) const {
  // Rung 1: the exponential-smoothing family through the normal split
  // machinery — still a real model selection, just off the SARIMAX grid.
  if (options_.technique != Technique::kHes) {
    PipelineOptions hes_opts = options_;
    hes_opts.technique = Technique::kHes;
    hes_opts.degrade_on_failure = false;
    Result<PipelineReport> r = Pipeline(hes_opts).RunSelection(series);
    if (r.ok()) {
      r->degradation = DegradationLevel::kHesOnly;
      r->degradation_reason = cause.ToString();
      return r;
    }
  }

  // Splitless rungs: they must work on series the Table-1 policy rejects,
  // so prepare the data by hand.
  const std::size_t gaps = series.CountMissing();
  Result<tsa::TimeSeries> filled_r = tsa::LinearInterpolate(series);
  if (!filled_r.ok()) {
    return Status::ComputeError(
        "Pipeline: degradation ladder exhausted — no finite data (cause: " +
        cause.ToString() + ")");
  }
  const tsa::TimeSeries& filled = *filled_r;
  const std::size_t n = filled.size();
  const std::size_t period = tsa::DefaultSeasonalPeriod(filled.frequency());

  SplitPolicy policy{};
  if (auto p = SplitFor(filled.frequency()); p.ok()) policy = *p;
  std::size_t horizon = options_.horizon_override > 0
                            ? options_.horizon_override
                            : policy.prediction;
  if (horizon == 0) horizon = std::max<std::size_t>(period, 1);

  // Score degraded fits on a small recent holdout when the series affords
  // one; otherwise the accuracy report is honestly empty.
  const std::size_t holdout =
      n >= 3 * horizon ? horizon : (n >= 16 ? n / 4 : 0);

  auto make_report = [&](DegradationLevel level, Technique family,
                         std::string spec, const tsa::AccuracyReport& acc,
                         models::Forecast fc) {
    PipelineReport r;
    r.series_name = series.name();
    r.split = policy;
    r.split.prediction = horizon;
    r.gaps_filled = gaps;
    r.chosen_family = family;
    r.chosen_spec = std::move(spec);
    r.test_accuracy = acc;
    r.candidates_evaluated = 1;
    r.candidates_succeeded = 1;
    r.forecast = std::move(fc);
    r.forecast_start_epoch = filled.EndEpoch();
    r.degradation = level;
    r.degradation_reason = cause.ToString();
    return r;
  };

  // Rung 2: a direct SES fit. No split, no grid — just a smoothed level
  // carried forward, which tracks slow drift far better than a constant.
  auto ses_rung = [&]() -> Result<PipelineReport> {
    obs::TraceSpan span("pipeline.ses", "pipeline");
    CAPPLAN_RETURN_NOT_OK(FaultHit("pipeline.ses"));
    if (n < 8) {
      return Status::ComputeError("SES rung: series too short");
    }
    const std::vector<double>& y = filled.values();
    tsa::AccuracyReport acc{};
    if (holdout > 0) {
      const std::vector<double> head(y.begin(), y.end() - holdout);
      const std::vector<double> tail(y.end() - holdout, y.end());
      CAPPLAN_ASSIGN_OR_RETURN(
          models::EtsModel scored,
          models::EtsModel::Fit(head, models::SimpleExponentialSmoothing()));
      CAPPLAN_ASSIGN_OR_RETURN(
          models::Forecast hf,
          scored.Predict(holdout, options_.interval_level));
      CAPPLAN_ASSIGN_OR_RETURN(acc, tsa::MeasureAccuracy(tail, hf.mean));
    }
    CAPPLAN_ASSIGN_OR_RETURN(
        models::EtsModel model,
        models::EtsModel::Fit(y, models::SimpleExponentialSmoothing()));
    CAPPLAN_ASSIGN_OR_RETURN(models::Forecast fc,
                             model.Predict(horizon, options_.interval_level));
    if (!AllFinite(fc.mean)) {
      return Status::ComputeError("SES rung: non-finite forecast");
    }
    return make_report(DegradationLevel::kSes, Technique::kHes,
                       "SES (degraded)", acc, std::move(fc));
  };
  if (Result<PipelineReport> r = ses_rung(); r.ok()) return r;

  // Rung 3: the seasonal-naive / naive floor. Needs one finite observation.
  auto baseline_rung = [&]() -> Result<PipelineReport> {
    obs::TraceSpan span("pipeline.baseline", "pipeline");
    const std::vector<double>& y = filled.values();
    if (y.empty()) {
      return Status::ComputeError("baseline rung: empty series");
    }
    const bool seasonal = period >= 2 && n >= 2 * period;
    auto forecast_from = [&](const std::vector<double>& history,
                             std::size_t h) {
      return seasonal && history.size() >= 2 * period
                 ? models::SeasonalNaiveForecast(history, period, h,
                                                 options_.interval_level)
                 : models::NaiveForecast(history, h,
                                         options_.interval_level);
    };
    tsa::AccuracyReport acc{};
    if (holdout > 0 && n > holdout) {
      const std::vector<double> head(y.begin(), y.end() - holdout);
      const std::vector<double> tail(y.end() - holdout, y.end());
      auto hf = forecast_from(head, holdout);
      if (hf.ok()) {
        auto scored = tsa::MeasureAccuracy(tail, hf->mean);
        if (scored.ok()) acc = *scored;
      }
    }
    CAPPLAN_ASSIGN_OR_RETURN(models::Forecast fc, forecast_from(y, horizon));
    if (!AllFinite(fc.mean)) {
      return Status::ComputeError("baseline rung: non-finite forecast");
    }
    return make_report(DegradationLevel::kBaseline, Technique::kBaseline,
                       seasonal ? "seasonal-naive(" + std::to_string(period) +
                                      ")"
                                : "naive",
                       acc, std::move(fc));
  };
  if (Result<PipelineReport> r = baseline_rung(); r.ok()) return r;

  return Status::ComputeError(
      "Pipeline: degradation ladder exhausted (cause: " + cause.ToString() +
      ")");
}

}  // namespace capplan::core
