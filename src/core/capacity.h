#ifndef CAPPLAN_CORE_CAPACITY_H_
#define CAPPLAN_CORE_CAPACITY_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "models/model.h"
#include "tsa/timeseries.h"

namespace capplan::core {

// Capacity-planning questions answered from a forecast — the paper's
// proactive-monitoring use case: "Utilising these techniques to predict when
// a threshold is likely to be breached is an advisable way to implement this
// approach" (Section 9).

struct BreachPrediction {
  // Point-forecast breach (the expected path crosses the threshold).
  bool mean_breach = false;
  std::size_t steps_to_mean_breach = 0;   // 1-based forecast step
  std::int64_t mean_breach_epoch = 0;

  // Pessimistic breach: the upper prediction bound crosses the threshold
  // (an earlier early-warning signal).
  bool upper_breach = false;
  std::size_t steps_to_upper_breach = 0;
  std::int64_t upper_breach_epoch = 0;
};

// Error contract (shared by the serving layer, which maps these to HTTP
// 422): malformed inputs — empty forecasts, non-positive step spacing,
// non-finite thresholds/margins/capacities — come back InvalidArgument;
// forecasts that exist but carry non-finite values (a model blow-up
// upstream) come back ComputeError.
class CapacityPlanner {
 public:
  // Scans the forecast for the first crossing of `threshold`.
  // `start_epoch` is the timestamp of forecast step 1 and `step_seconds`
  // the spacing of steps.
  static Result<BreachPrediction> PredictBreach(
      const models::Forecast& forecast, double threshold,
      std::int64_t start_epoch, std::int64_t step_seconds);

  // Capacity to provision so that even the upper forecast bound keeps
  // `safety_margin` fractional headroom (e.g. 0.2 = 20% spare).
  static Result<double> RecommendedCapacity(const models::Forecast& forecast,
                                            double safety_margin = 0.2);

  struct HeadroomReport {
    double current_usage = 0.0;    // last observed value
    double peak_forecast = 0.0;    // max of the forecast mean
    double peak_upper = 0.0;       // max of the upper bound
    double headroom_fraction = 0.0;  // (capacity - peak_upper) / capacity
  };

  // Compares recent usage and the forecast against a fixed capacity.
  static Result<HeadroomReport> Headroom(const tsa::TimeSeries& recent,
                                         const models::Forecast& forecast,
                                         double capacity);

  struct GrowthProjection {
    double current_daily_peak = 0.0;   // peak of the last observed day
    double daily_growth = 0.0;         // fitted trend, units per day
    std::vector<double> monthly_peaks; // projected peak per 30-day month
    // First month (1-based) whose projected peak exceeds the threshold;
    // 0 = no breach within the projection.
    std::size_t breach_month = 0;
  };

  // Long-term sizing (the paper's migration use case: "what resource
  // capacity do I need in the next 6 months to a year?"). Aggregates the
  // hourly history to daily peaks, fits a damped Holt trend and projects
  // `months` months ahead. `threshold` <= 0 disables breach detection.
  static Result<GrowthProjection> ProjectGrowth(const tsa::TimeSeries& hourly,
                                                int months,
                                                double threshold = 0.0);
};

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_CAPACITY_H_
