#ifndef CAPPLAN_CORE_BATCH_REFIT_H_
#define CAPPLAN_CORE_BATCH_REFIT_H_

#include <cstdint>

#include "core/pipeline.h"
#include "tsa/fourier.h"
#include "tsa/timeseries.h"

namespace capplan::core {

// Batched refit entry point: many series drained through the selector in
// one job, sharing the transforms that do not depend on the series values.
// Today that is the Fourier design columns — for an estate of same-cadence
// metrics every series presents the same (specs, window length), so the
// trigonometric evaluation behind each shared-OLS group runs once for the
// whole batch instead of once per series. The per-series transforms
// (differencing, Hannan-Rissanen innovations) stay in ArimaFitCache, scoped
// to one selection as before.
//
// A session is cheap to construct, intended to live for one batch, and
// *not* safe to share across concurrently running batches only in the sense
// that the stats() snapshot would interleave — the cache itself is
// thread-safe, so a pool of workers may drain one session's batch in
// parallel if desired.
class RefitBatchSession {
 public:
  struct Stats {
    std::uint64_t fourier_hits = 0;    // design-column reuses across the batch
    std::uint64_t fourier_misses = 0;  // distinct designs actually computed
    std::uint64_t series_run = 0;
  };

  // Runs the standard Figure-4 pipeline for one series of the batch with
  // the session's shared caches wired into `options`. Selection and
  // forecasts are bitwise-identical to an unbatched Pipeline::Run.
  Result<PipelineReport> Run(const tsa::TimeSeries& series,
                             PipelineOptions options);

  tsa::FourierTermCache* fourier_cache() { return &fourier_cache_; }
  Stats stats() const;

 private:
  tsa::FourierTermCache fourier_cache_;
  std::uint64_t series_run_ = 0;
};

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_BATCH_REFIT_H_
