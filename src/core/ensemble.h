#ifndef CAPPLAN_CORE_ENSEMBLE_H_
#define CAPPLAN_CORE_ENSEMBLE_H_

#include <vector>

#include "common/result.h"
#include "core/selector.h"
#include "models/model.h"

namespace capplan::core {

// Forecast combination. Instead of committing to the single best-RMSE
// model, average the top-k candidates of a selection run — a standard
// M-competition result is that combinations are more robust than any
// individual member, and it hedges the grid search against overfitting the
// one test window (a risk the paper's single-split protocol carries).

// Weighted average of point forecasts and interval bounds. `weights` must
// match `forecasts` in length (empty = equal weights); all forecasts must
// share the same horizon.
Result<models::Forecast> CombineForecasts(
    const std::vector<const models::Forecast*>& forecasts,
    std::vector<double> weights = {});

// Combines the test-window forecasts of the top candidates of a selection.
// `inverse_rmse_weights` weights each member by 1/test-RMSE (better models
// count more); otherwise members are equally weighted.
Result<models::Forecast> CombineTopCandidates(
    const std::vector<EvaluatedCandidate>& top,
    bool inverse_rmse_weights = true);

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_ENSEMBLE_H_
