#include "core/monitor.h"

#include "tsa/timeseries.h"

namespace capplan::core {

MonitoringService::MonitoringService(const repo::MetricsRepository* metrics,
                                     repo::ModelRepository* registry,
                                     PipelineOptions pipeline_options)
    : metrics_(metrics),
      registry_(registry),
      pipeline_options_(pipeline_options) {
  pipeline_options_.model_repository = registry_;
}

Result<std::vector<WatchResult>> MonitoringService::Evaluate(
    const std::vector<WatchSpec>& watches, std::int64_t now_epoch) {
  if (watches.empty()) {
    return Status::InvalidArgument("MonitoringService: no watches");
  }
  if (metrics_ == nullptr || registry_ == nullptr) {
    return Status::FailedPrecondition(
        "MonitoringService: repositories not attached");
  }
  std::vector<WatchResult> results;
  results.reserve(watches.size());
  Pipeline pipeline(pipeline_options_);
  for (const auto& watch : watches) {
    WatchResult r;
    r.key = watch.key;
    auto hourly = metrics_->Hourly(watch.key);
    if (!hourly.ok()) {
      r.status = hourly.status();
      results.push_back(std::move(r));
      continue;
    }
    const bool have_cache = cache_.count(watch.key) > 0;
    const bool stale = registry_->IsStale(watch.key, now_epoch);
    if (stale || !have_cache) {
      auto report = pipeline.Run(*hourly);
      if (!report.ok()) {
        r.status = report.status();
        results.push_back(std::move(r));
        continue;
      }
      CachedForecast cached;
      cached.forecast = report->forecast;
      cached.start_epoch = report->forecast_start_epoch;
      cached.step_seconds = tsa::FrequencySeconds(hourly->frequency());
      cached.spec = std::string(TechniqueName(report->chosen_family)) + " " +
                    report->chosen_spec;
      cached.test_mape = report->test_accuracy.mape;
      cache_[watch.key] = std::move(cached);
      r.refitted = true;
      r.selector_profile = report->selector_profile;
    }
    const CachedForecast& active = cache_.at(watch.key);
    r.model_spec = active.spec;
    r.test_mape = active.test_mape;
    auto breach = CapacityPlanner::PredictBreach(
        active.forecast, watch.threshold, active.start_epoch,
        active.step_seconds);
    if (!breach.ok()) {
      r.status = breach.status();
      results.push_back(std::move(r));
      continue;
    }
    r.breach = *std::move(breach);
    r.status = Status::OK();
    results.push_back(std::move(r));
  }
  return results;
}

}  // namespace capplan::core
