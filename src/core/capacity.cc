#include "core/capacity.h"

#include <algorithm>
#include <cmath>

#include "models/ets.h"

namespace capplan::core {

namespace {

// Forecast values must be finite for any threshold comparison to mean
// anything; a NaN upstream would otherwise silently report "no breach".
Status CheckFinite(const std::vector<double>& values, const char* what) {
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::ComputeError(std::string("non-finite value in ") + what);
    }
  }
  return Status::OK();
}

}  // namespace

Result<BreachPrediction> CapacityPlanner::PredictBreach(
    const models::Forecast& forecast, double threshold,
    std::int64_t start_epoch, std::int64_t step_seconds) {
  if (forecast.mean.empty()) {
    return Status::InvalidArgument("PredictBreach: empty forecast");
  }
  if (step_seconds <= 0) {
    return Status::InvalidArgument(
        "PredictBreach: step_seconds must be positive");
  }
  if (!std::isfinite(threshold)) {
    return Status::InvalidArgument("PredictBreach: non-finite threshold");
  }
  CAPPLAN_RETURN_NOT_OK(CheckFinite(forecast.mean, "forecast mean"));
  CAPPLAN_RETURN_NOT_OK(CheckFinite(forecast.upper, "forecast upper bound"));
  BreachPrediction out;
  for (std::size_t h = 0; h < forecast.mean.size(); ++h) {
    if (!out.mean_breach && forecast.mean[h] >= threshold) {
      out.mean_breach = true;
      out.steps_to_mean_breach = h + 1;
      out.mean_breach_epoch =
          start_epoch + static_cast<std::int64_t>(h) * step_seconds;
    }
    if (!out.upper_breach && h < forecast.upper.size() &&
        forecast.upper[h] >= threshold) {
      out.upper_breach = true;
      out.steps_to_upper_breach = h + 1;
      out.upper_breach_epoch =
          start_epoch + static_cast<std::int64_t>(h) * step_seconds;
    }
    if (out.mean_breach && out.upper_breach) break;
  }
  return out;
}

Result<double> CapacityPlanner::RecommendedCapacity(
    const models::Forecast& forecast, double safety_margin) {
  if (forecast.upper.empty()) {
    return Status::InvalidArgument(
        "RecommendedCapacity: forecast has no upper bound");
  }
  if (!std::isfinite(safety_margin)) {
    return Status::InvalidArgument(
        "RecommendedCapacity: non-finite safety margin");
  }
  CAPPLAN_RETURN_NOT_OK(CheckFinite(forecast.upper, "forecast upper bound"));
  double peak_upper = 0.0;
  for (std::size_t h = 0; h < forecast.upper.size(); ++h) {
    peak_upper = std::max(peak_upper, forecast.upper[h]);
  }
  return peak_upper * (1.0 + std::max(0.0, safety_margin));
}

Result<CapacityPlanner::GrowthProjection> CapacityPlanner::ProjectGrowth(
    const tsa::TimeSeries& hourly, int months, double threshold) {
  if (months < 1 || months > 36) {
    return Status::InvalidArgument("ProjectGrowth: months in [1, 36]");
  }
  if (!std::isfinite(threshold)) {
    return Status::InvalidArgument("ProjectGrowth: non-finite threshold");
  }
  if (hourly.frequency() != tsa::Frequency::kHourly) {
    return Status::InvalidArgument("ProjectGrowth: needs an hourly series");
  }
  const std::size_t n_days = hourly.size() / 24;
  if (n_days < 14) {
    return Status::InvalidArgument(
        "ProjectGrowth: need at least 14 days of history");
  }
  // Daily peaks — capacity is sized to peaks, not means.
  std::vector<double> daily_peak(n_days, 0.0);
  for (std::size_t d = 0; d < n_days; ++d) {
    double peak = hourly[d * 24];
    for (std::size_t h = 1; h < 24; ++h) {
      peak = std::max(peak, hourly[d * 24 + h]);
    }
    daily_peak[d] = peak;
  }
  // Damped Holt trend on the daily-peak series, projected month by month.
  CAPPLAN_ASSIGN_OR_RETURN(
      models::EtsModel model,
      models::EtsModel::Fit(daily_peak, models::HoltLinearTrend(true)));
  const std::size_t horizon_days = static_cast<std::size_t>(months) * 30;
  CAPPLAN_ASSIGN_OR_RETURN(models::Forecast fc,
                           model.Predict(horizon_days));
  GrowthProjection out;
  out.current_daily_peak = daily_peak.back();
  out.daily_growth = model.trend_state();
  out.monthly_peaks.resize(static_cast<std::size_t>(months), 0.0);
  for (std::size_t d = 0; d < horizon_days; ++d) {
    const std::size_t month = d / 30;
    out.monthly_peaks[month] =
        std::max(out.monthly_peaks[month], fc.mean[d]);
  }
  if (threshold > 0.0) {
    for (std::size_t m = 0; m < out.monthly_peaks.size(); ++m) {
      if (out.monthly_peaks[m] >= threshold) {
        out.breach_month = m + 1;
        break;
      }
    }
  }
  return out;
}

Result<CapacityPlanner::HeadroomReport> CapacityPlanner::Headroom(
    const tsa::TimeSeries& recent, const models::Forecast& forecast,
    double capacity) {
  if (recent.empty()) {
    return Status::InvalidArgument("Headroom: empty recent series");
  }
  if (forecast.mean.empty() || forecast.upper.empty()) {
    return Status::InvalidArgument("Headroom: empty forecast");
  }
  if (!std::isfinite(capacity) || capacity <= 0.0) {
    return Status::InvalidArgument(
        "Headroom: capacity must be positive and finite");
  }
  CAPPLAN_RETURN_NOT_OK(CheckFinite(forecast.mean, "forecast mean"));
  CAPPLAN_RETURN_NOT_OK(CheckFinite(forecast.upper, "forecast upper bound"));
  HeadroomReport rep;
  rep.current_usage = recent[recent.size() - 1];
  rep.peak_forecast =
      *std::max_element(forecast.mean.begin(), forecast.mean.end());
  rep.peak_upper =
      *std::max_element(forecast.upper.begin(), forecast.upper.end());
  rep.headroom_fraction = (capacity - rep.peak_upper) / capacity;
  return rep;
}

}  // namespace capplan::core
