#include "core/shock_detect.h"

#include <algorithm>
#include <cmath>

#include "math/vec.h"
#include "tsa/decompose.h"
#include "tsa/interpolate.h"

namespace capplan::core {

namespace {

// Circular running median of `values` with a window of +/- half_window.
// Used as the shock-free seasonal baseline: a shock of duration <=
// half_window occupies a minority of any window and is filtered out, while
// the smooth seasonal profile passes through.
std::vector<double> CircularRunningMedian(const std::vector<double>& values,
                                          std::size_t half_window) {
  const std::size_t m = values.size();
  std::vector<double> out(m);
  for (std::size_t p = 0; p < m; ++p) {
    std::vector<double> window;
    window.reserve(2 * half_window + 1);
    for (std::size_t d = 0; d <= 2 * half_window; ++d) {
      const std::size_t idx = (p + m - half_window + d) % m;
      window.push_back(values[idx]);
    }
    out[p] = math::Median(window);
  }
  return out;
}

}  // namespace

Result<std::vector<DetectedShock>> ShockDetector::Detect(
    const std::vector<double>& x,
    std::vector<std::size_t>* transients) const {
  const std::size_t n = x.size();
  const std::size_t m = options_.period;
  if (m < 2 || n < 3 * m) {
    return Status::InvalidArgument(
        "ShockDetector: need at least three periods of data");
  }

  // Detrend first: a growing workload (the paper's +50 users/day trend)
  // would otherwise inflate the within-phase spread and mask the shocks.
  // The centered period-length moving average removes trend while leaving
  // the within-period pattern (and any spikes riding on it) intact; the
  // NaN half-window margins are excluded from the statistics.
  const std::vector<double> trend = tsa::CenteredMovingAverage(x, m);
  std::vector<double> detr(n, std::nan(""));
  for (std::size_t t = 0; t < n; ++t) {
    if (!std::isnan(trend[t])) detr[t] = x[t] - trend[t];
  }

  // Per-phase robust location/scale. Shocks are judged against what is
  // normal *for that phase's neighbourhood*, so ordinary seasonality is not
  // flagged.
  std::vector<std::vector<double>> by_phase(m);
  for (std::size_t t = 0; t < n; ++t) {
    if (!std::isnan(detr[t])) by_phase[t % m].push_back(detr[t]);
  }
  for (std::size_t p = 0; p < m; ++p) {
    if (by_phase[p].empty()) {
      return Status::ComputeError("ShockDetector: empty phase bucket");
    }
  }
  std::vector<double> phase_med(m);
  for (std::size_t p = 0; p < m; ++p) phase_med[p] = math::Median(by_phase[p]);

  // Within-phase residual scale: the series' noise level with trend,
  // seasonality and recurring shocks removed.
  std::vector<double> abs_residuals;
  abs_residuals.reserve(n);
  for (std::size_t t = 0; t < n; ++t) {
    if (std::isnan(detr[t])) continue;
    abs_residuals.push_back(std::fabs(detr[t] - phase_med[t % m]));
  }
  const double noise = std::max(1.4826 * math::Median(abs_residuals), 1e-9);

  // Shock-free seasonal baseline: circular running median over ~11 phases
  // filters out spike runs of up to ~5 consecutive phases.
  const std::size_t half_window = std::min<std::size_t>(5, (m - 1) / 2);
  const std::vector<double> baseline =
      CircularRunningMedian(phase_med, half_window);
  const double baseline_range =
      math::Max(baseline) - math::Min(baseline);

  // A phase is shock-affected when its median sits well above the local
  // seasonal baseline, both in noise units and relative to the seasonal
  // swing (so smooth peaks of low-noise seasonal series are not flagged).
  std::vector<bool> phase_hot(m, false);
  std::vector<double> phase_excess(m, 0.0);
  for (std::size_t p = 0; p < m; ++p) {
    const double excess = phase_med[p] - baseline[p];
    phase_excess[p] = excess;
    if (excess > options_.z_threshold * noise &&
        excess > 0.3 * std::max(baseline_range, noise)) {
      phase_hot[p] = true;
    }
  }

  // Point-level spikes (for the transient report): observations far above
  // their own phase's median.
  std::vector<bool> spike(n, false);
  for (std::size_t t = 0; t < n; ++t) {
    if (std::isnan(detr[t])) continue;
    if (detr[t] - phase_med[t % m] > options_.z_threshold * noise &&
        detr[t] - phase_med[t % m] > 0.3 * std::max(baseline_range, noise)) {
      spike[t] = true;
    }
  }

  // Group consecutive hot phases into (phase, duration) runs and apply the
  // paper's recurrence rule.
  std::vector<DetectedShock> shocks;
  std::size_t p = 0;
  while (p < m) {
    if (!phase_hot[p]) {
      ++p;
      continue;
    }
    std::size_t dur = 1;
    while (p + dur < m && phase_hot[p + dur]) ++dur;
    // Count actual occurrences: periods where the run's first phase clearly
    // exceeds the baseline (on the detrended scale).
    int occ = 0;
    double mag = 0.0;
    const double occurrence_cut =
        baseline[p] + 0.5 * phase_excess[p];
    for (std::size_t t = p; t < n; t += m) {
      if (std::isnan(detr[t])) continue;
      if (detr[t] > occurrence_cut) {
        ++occ;
        mag += detr[t] - baseline[p];
      }
    }
    const std::size_t periods_seen = (n - p + m - 1) / m;
    if (occ >= options_.min_occurrences &&
        static_cast<double>(occ) >=
            options_.min_recurrence_rate * static_cast<double>(periods_seen)) {
      DetectedShock s;
      s.period = m;
      s.phase = p;
      s.duration = dur;
      s.occurrences = occ;
      s.magnitude = occ > 0 ? mag / occ : 0.0;
      shocks.push_back(s);
    }
    p += dur;
  }
  std::sort(shocks.begin(), shocks.end(),
            [](const DetectedShock& a, const DetectedShock& b) {
              return a.magnitude > b.magnitude;
            });

  if (transients != nullptr) {
    transients->clear();
    for (std::size_t t = 0; t < n; ++t) {
      if (!spike[t]) continue;
      // A spike inside a recurring shock window is the behaviour itself,
      // not a transient.
      bool covered = false;
      for (const auto& s : shocks) {
        const std::size_t ph = t % m;
        if (ph >= s.phase && ph < s.phase + s.duration) {
          covered = true;
          break;
        }
      }
      if (!covered) transients->push_back(t);
    }
  }
  return shocks;
}

std::vector<double> ShockDetector::RemoveTransients(
    const std::vector<double>& x,
    const std::vector<std::size_t>& transients) {
  if (transients.empty()) return x;
  std::vector<double> work = x;
  for (std::size_t idx : transients) {
    if (idx < work.size()) work[idx] = std::nan("");
  }
  auto filled = tsa::LinearInterpolate(work);
  // All-NaN cannot happen unless every point was flagged; fall back to the
  // original in that degenerate case.
  return filled.ok() ? *filled : x;
}

std::vector<std::vector<double>> ShockDetector::PulseColumns(
    const std::vector<DetectedShock>& shocks, std::size_t t_begin,
    std::size_t n) {
  std::vector<std::vector<double>> cols;
  cols.reserve(shocks.size());
  for (const auto& s : shocks) {
    std::vector<double> col(n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t ph = (t_begin + i) % s.period;
      if (ph >= s.phase && ph < s.phase + s.duration) col[i] = 1.0;
    }
    cols.push_back(std::move(col));
  }
  return cols;
}

}  // namespace capplan::core
