#ifndef CAPPLAN_CORE_REPORT_JSON_H_
#define CAPPLAN_CORE_REPORT_JSON_H_

#include <string>

#include "common/json_writer.h"
#include "core/capacity.h"
#include "core/pipeline.h"

namespace capplan::core {

// Serializes a PipelineReport to a self-contained JSON document — the
// integration surface for dashboards like the paper's Figure 8 UI. Strings
// are escaped per RFC 8259; doubles use shortest round-trip formatting;
// NaN (possible in MAPE on all-zero windows) is emitted as null.
std::string ReportToJson(const PipelineReport& report, bool pretty = false);

// Serializes just a forecast (mean/lower/upper/level).
std::string ForecastToJson(const models::Forecast& forecast,
                           bool pretty = false);

// Field-level writers for composing these payloads into larger documents
// (the serving layer embeds them inside endpoint response envelopes). Each
// streams its fields into an already-open JSON object.
void WriteForecastFields(JsonWriter* w, const models::Forecast& forecast);
void WriteBreachFields(JsonWriter* w, const BreachPrediction& breach);
void WriteHeadroomFields(JsonWriter* w,
                         const CapacityPlanner::HeadroomReport& report);

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_REPORT_JSON_H_
