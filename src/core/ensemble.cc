#include "core/ensemble.h"

namespace capplan::core {

Result<models::Forecast> CombineForecasts(
    const std::vector<const models::Forecast*>& forecasts,
    std::vector<double> weights) {
  if (forecasts.empty()) {
    return Status::InvalidArgument("CombineForecasts: no members");
  }
  for (const auto* f : forecasts) {
    if (f == nullptr) {
      return Status::InvalidArgument("CombineForecasts: null member");
    }
  }
  const std::size_t h = forecasts[0]->horizon();
  if (h == 0) {
    return Status::InvalidArgument("CombineForecasts: empty forecasts");
  }
  for (const auto* f : forecasts) {
    if (f->horizon() != h || f->lower.size() != h || f->upper.size() != h) {
      return Status::InvalidArgument(
          "CombineForecasts: horizon/interval mismatch between members");
    }
  }
  if (weights.empty()) {
    weights.assign(forecasts.size(), 1.0);
  }
  if (weights.size() != forecasts.size()) {
    return Status::InvalidArgument("CombineForecasts: weight count mismatch");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) {
      return Status::InvalidArgument(
          "CombineForecasts: negative weight");
    }
    total += w;
  }
  if (total <= 0.0) {
    return Status::InvalidArgument("CombineForecasts: zero total weight");
  }

  models::Forecast out;
  out.level = forecasts[0]->level;
  out.mean.assign(h, 0.0);
  out.lower.assign(h, 0.0);
  out.upper.assign(h, 0.0);
  for (std::size_t m = 0; m < forecasts.size(); ++m) {
    const double w = weights[m] / total;
    for (std::size_t t = 0; t < h; ++t) {
      out.mean[t] += w * forecasts[m]->mean[t];
      out.lower[t] += w * forecasts[m]->lower[t];
      out.upper[t] += w * forecasts[m]->upper[t];
    }
  }
  return out;
}

Result<models::Forecast> CombineTopCandidates(
    const std::vector<EvaluatedCandidate>& top, bool inverse_rmse_weights) {
  std::vector<const models::Forecast*> members;
  std::vector<double> weights;
  for (const auto& c : top) {
    if (!c.ok) continue;
    members.push_back(&c.test_forecast);
    if (inverse_rmse_weights) {
      weights.push_back(1.0 / (c.accuracy.rmse + 1e-12));
    }
  }
  if (members.empty()) {
    return Status::InvalidArgument(
        "CombineTopCandidates: no successful candidates");
  }
  return CombineForecasts(members, std::move(weights));
}

}  // namespace capplan::core
