#include "core/batch_refit.h"

namespace capplan::core {

Result<PipelineReport> RefitBatchSession::Run(const tsa::TimeSeries& series,
                                              PipelineOptions options) {
  options.fourier_cache = &fourier_cache_;
  Pipeline pipeline(options);
  auto report = pipeline.Run(series);
  ++series_run_;
  return report;
}

RefitBatchSession::Stats RefitBatchSession::stats() const {
  Stats s;
  s.fourier_hits = fourier_cache_.hits();
  s.fourier_misses = fourier_cache_.misses();
  s.series_run = series_run_;
  return s;
}

}  // namespace capplan::core
