#include "core/drift.h"

#include <algorithm>
#include <cmath>

namespace capplan::core {

bool PageHinkleyDetector::Update(double value) {
  ++n_;
  // Running mean (Welford-style single pass).
  mean_ += (value - mean_) / static_cast<double>(n_);
  mt_ += value - mean_ - options_.delta;
  min_mt_ = std::min(min_mt_, mt_);
  if (n_ < options_.min_samples) return false;
  if (mt_ - min_mt_ > options_.threshold) {
    Reset();
    return true;
  }
  return false;
}

void PageHinkleyDetector::Reset() {
  n_ = 0;
  mean_ = 0.0;
  mt_ = 0.0;
  min_mt_ = 0.0;
}

bool CusumDetector::Update(double value) {
  const double z = (value - mean_) / sigma_;
  pos_ = std::max(0.0, pos_ + z - options_.k);
  neg_ = std::max(0.0, neg_ - z - options_.k);
  if (pos_ > options_.threshold || neg_ > options_.threshold) {
    Reset();
    return true;
  }
  return false;
}

void CusumDetector::Reset() {
  pos_ = 0.0;
  neg_ = 0.0;
}

std::vector<std::size_t> DetectChanges(
    const std::vector<double>& values,
    const PageHinkleyDetector::Options& options) {
  PageHinkleyDetector detector(options);
  std::vector<std::size_t> alarms;
  for (std::size_t t = 0; t < values.size(); ++t) {
    if (detector.Update(values[t])) alarms.push_back(t);
  }
  return alarms;
}

}  // namespace capplan::core
