#ifndef CAPPLAN_CORE_SPLIT_H_
#define CAPPLAN_CORE_SPLIT_H_

#include <cstddef>
#include <string>

#include "common/result.h"
#include "tsa/timeseries.h"

namespace capplan::core {

// The forecasting technique branch of the Figure 4 workflow.
enum class Technique {
  kArima,           // plain ARIMA(p,d,q)
  kSarimax,         // SARIMA(p,d,q)(P,D,Q,F)
  kSarimaxFftExog,  // SARIMAX + Fourier terms + exogenous shocks
  kHes,             // Holt-Winters exponential smoothing
  kTbats,           // TBATS (extension beyond the paper's two UI choices)
  kBaseline,        // seasonal-naive floor (bottom rung of the ladder)
  kAuto,            // pipeline picks between HES and SARIMAX families
};

const char* TechniqueName(Technique technique);

// Train/test/prediction breakdown per forecast granularity — paper Table 1,
// derived from the Makridakis competition guidance (e.g. ~700+ hourly points
// for an effective hourly forecast).
struct SplitPolicy {
  std::size_t observations = 0;  // total observations required
  std::size_t train = 0;
  std::size_t test = 0;
  std::size_t prediction = 0;    // forecast horizon
  const char* unit = "";
};

// The Table 1 row for `freq` (hourly/daily/weekly). Fails for frequencies
// the paper does not forecast at (quarter-hourly, monthly).
Result<SplitPolicy> SplitFor(tsa::Frequency freq);

// Splits `series` into (train, test) according to the policy for its
// frequency. When the series is longer than policy.observations, the most
// recent policy.observations are used; shorter series fail.
Result<std::pair<tsa::TimeSeries, tsa::TimeSeries>> ApplySplit(
    const tsa::TimeSeries& series);

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_SPLIT_H_
