#include "core/candidate_gen.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

namespace capplan::core {

namespace {

struct SeasonalTemplate {
  int d, q, P, D, Q;
};

// Builds aliasing-safe, non-collinear Fourier specs from a period list:
// harmonics are clamped below the Nyquist limit (2k < period) and any
// harmonic whose frequency duplicates one already emitted by an earlier
// period is dropped (e.g. period 3's fundamental equals period 6's second
// harmonic, which would make the regression rank-deficient).
std::vector<tsa::FourierSpec> BuildFourierSpecs(
    const std::vector<double>& periods, std::size_t harmonics) {
  std::vector<tsa::FourierSpec> out;
  std::vector<double> used_freqs;
  for (double period : periods) {
    if (period <= 2.0) continue;
    const auto nyquist =
        static_cast<std::size_t>((period - 1.0) / 2.0);
    const std::size_t k_max = std::min(harmonics, std::max<std::size_t>(
                                                      1, nyquist));
    std::size_t k = 0;
    for (std::size_t j = 1; j <= k_max; ++j) {
      const double f = static_cast<double>(j) / period;
      if (2.0 * static_cast<double>(j) >= period) break;
      bool dup = false;
      for (double u : used_freqs) {
        if (std::fabs(u - f) < 1e-9) {
          dup = true;
          break;
        }
      }
      if (dup) break;
      k = j;
    }
    if (k == 0) continue;
    for (std::size_t j = 1; j <= k; ++j) {
      used_freqs.push_back(static_cast<double>(j) / period);
    }
    out.push_back({period, k});
  }
  return out;
}

// The 22 per-lag seasonal templates (see header).
std::vector<SeasonalTemplate> SeasonalTemplates() {
  std::vector<SeasonalTemplate> out;
  const int pdq[][3] = {{0, 0, 1}, {1, 1, 1}, {1, 0, 1}};
  for (int d = 0; d <= 1; ++d) {
    for (int q = 0; q <= 2; ++q) {
      for (const auto& s : pdq) {
        out.push_back({d, q, s[0], s[1], s[2]});
      }
    }
  }
  for (int d = 0; d <= 1; ++d) {
    for (int q = 1; q <= 2; ++q) {
      out.push_back({d, q, 0, 1, 1});
    }
  }
  return out;  // 18 + 4 = 22
}

}  // namespace

std::string WarmChainKey(const ModelCandidate& c) {
  std::ostringstream os;
  os << static_cast<int>(c.family) << '|' << c.spec.d << ',' << c.spec.q
     << ',' << c.spec.P << ',' << c.spec.D << ',' << c.spec.Q << ','
     << c.spec.season << '|' << c.n_exog << '|'
     << tsa::FourierCacheKey(c.fourier);
  return os.str();
}

std::size_t CandidateGenerator::ExpectedCount(Technique family) {
  switch (family) {
    case Technique::kArima:
      return 180;
    case Technique::kSarimax:
      return 660;
    case Technique::kSarimaxFftExog:
      return 666;
    default:
      return 0;
  }
}

std::vector<ModelCandidate> CandidateGenerator::Generate(
    Technique family) const {
  std::vector<ModelCandidate> out;
  const int max_lag = options_.max_lag;
  switch (family) {
    case Technique::kArima: {
      // p in 1..30, d in {0,1}, q in {0,1,2}: 180 models.
      for (int p = 1; p <= max_lag; ++p) {
        for (int d = 0; d <= 1; ++d) {
          for (int q = 0; q <= 2; ++q) {
            ModelCandidate c;
            c.family = family;
            c.spec = models::ArimaSpec{p, d, q, 0, 0, 0, 0};
            out.push_back(c);
          }
        }
      }
      break;
    }
    case Technique::kSarimax: {
      const auto templates = SeasonalTemplates();
      for (int p = 1; p <= max_lag; ++p) {
        for (const auto& t : templates) {
          ModelCandidate c;
          c.family = family;
          c.spec = models::ArimaSpec{p,   t.d, t.q, t.P,
                                     t.D, t.Q, options_.season};
          out.push_back(c);
        }
      }
      break;
    }
    case Technique::kSarimaxFftExog: {
      // The 660 grid with shocks + Fourier attached ...
      const std::vector<tsa::FourierSpec> fourier = BuildFourierSpecs(
          options_.fourier_periods, options_.fourier_harmonics);
      const auto templates = SeasonalTemplates();
      for (int p = 1; p <= max_lag; ++p) {
        for (const auto& t : templates) {
          ModelCandidate c;
          c.family = family;
          c.spec = models::ArimaSpec{p,   t.d, t.q, t.P,
                                     t.D, t.Q, options_.season};
          c.n_exog = options_.n_shock_columns;
          c.fourier = fourier;
          out.push_back(c);
        }
      }
      // ... plus 4 exogenous-subset variants of the reference spec ...
      const models::ArimaSpec ref{1, 1, 1, 1, 1, 1, options_.season};
      for (std::size_t k = 1; k <= 4; ++k) {
        ModelCandidate c;
        c.family = family;
        c.spec = ref;
        c.n_exog = std::min(k, options_.n_shock_columns);
        out.push_back(c);
      }
      // ... plus 2 Fourier-harmonic variants (K = 1 and K = 2).
      for (std::size_t k = 1; k <= 2; ++k) {
        ModelCandidate c;
        c.family = family;
        c.spec = ref;
        c.n_exog = options_.n_shock_columns;
        c.fourier = BuildFourierSpecs(options_.fourier_periods, k);
        out.push_back(c);
      }
      break;
    }
    default:
      break;
  }
  return out;
}

std::vector<ModelCandidate> CandidateGenerator::GeneratePruned(
    Technique family, const std::vector<std::size_t>& significant_lags) const {
  std::set<std::size_t> keep(significant_lags.begin(),
                             significant_lags.end());
  // Safety net: always explore the short lags.
  keep.insert(1);
  keep.insert(2);
  keep.insert(3);
  std::vector<ModelCandidate> full = Generate(family);
  std::vector<ModelCandidate> pruned;
  for (const auto& c : full) {
    if (keep.count(static_cast<std::size_t>(c.spec.p)) > 0) {
      pruned.push_back(c);
    }
  }
  return pruned;
}

}  // namespace capplan::core
