#ifndef CAPPLAN_CORE_MONITOR_H_
#define CAPPLAN_CORE_MONITOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/capacity.h"
#include "core/pipeline.h"
#include "repo/model_store.h"
#include "repo/repository.h"

namespace capplan::core {

// Estate-wide proactive monitoring — the paper's production deployment
// (Section 8): keep one model per watched metric in the central registry,
// refit only when the staleness policy demands (one week or RMSE
// degradation), and raise an early warning whenever the active forecast
// predicts a threshold breach.

// One metric under watch.
struct WatchSpec {
  std::string key;          // repository series key, e.g. "cdbm011/cpu"
  double threshold = 0.0;   // breach level
};

// Outcome of evaluating one watch.
struct WatchResult {
  std::string key;
  bool refitted = false;         // model was stale and was refitted
  std::string model_spec;        // active model description
  double test_mape = 0.0;        // active model's held-out error (MAPE, %)
  BreachPrediction breach;       // threshold prognosis
  Status status;                 // non-OK when this watch failed
  // Selector profile of the refit that produced the active model; all-zero
  // when the cached forecast was reused or no SARIMAX grid ran.
  SelectorProfile selector_profile;
};

class MonitoringService {
 public:
  // Neither repository is owned; both must outlive the service.
  MonitoringService(const repo::MetricsRepository* metrics,
                    repo::ModelRepository* registry,
                    PipelineOptions pipeline_options);

  // Evaluates every watch at wall-clock `now_epoch`: stale (or never
  // fitted) models are refitted via the pipeline; the cached forecast of a
  // fresh model is reused. Always returns one WatchResult per watch (with
  // per-watch status), failing only on empty input.
  Result<std::vector<WatchResult>> Evaluate(
      const std::vector<WatchSpec>& watches, std::int64_t now_epoch);

  // Number of cached forecasts held.
  std::size_t cached_forecasts() const { return cache_.size(); }

 private:
  struct CachedForecast {
    models::Forecast forecast;
    std::int64_t start_epoch = 0;
    std::int64_t step_seconds = 3600;
    std::string spec;
    double test_mape = 0.0;
  };

  const repo::MetricsRepository* metrics_;  // not owned
  repo::ModelRepository* registry_;         // not owned
  PipelineOptions pipeline_options_;
  std::map<std::string, CachedForecast> cache_;
};

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_MONITOR_H_
