#ifndef CAPPLAN_CORE_DRIFT_H_
#define CAPPLAN_CORE_DRIFT_H_

#include <cstddef>
#include <vector>

#include "common/result.h"

namespace capplan::core {

// Online change detection for model-health monitoring. The paper retires a
// stored model "until the model's RMSE drops to a point where it is
// rendered useless" and relearns when "the system (data) has changed
// significantly (shocks or new behaviours)" (Sections 5.1, 9). These
// detectors watch the live one-step forecast errors and signal when their
// distribution shifts, driving the ModelRepository staleness decision
// without waiting for the weekly refit.

// Page-Hinkley test: detects a sustained increase in the mean of a stream.
// Feed it the absolute (or squared) forecast errors; it alarms when the
// cumulative deviation from the running mean exceeds `threshold`.
class PageHinkleyDetector {
 public:
  struct Options {
    double delta = 0.005;     // magnitude tolerance (fraction of mean scale)
    double threshold = 50.0;  // alarm level (in accumulated error units)
    std::size_t min_samples = 30;
  };

  PageHinkleyDetector() : PageHinkleyDetector(Options()) {}
  explicit PageHinkleyDetector(Options options) : options_(options) {}

  // Consumes one observation; returns true when a change is signalled.
  // After an alarm the detector resets automatically.
  bool Update(double value);

  void Reset();
  std::size_t samples_seen() const { return n_; }
  double running_mean() const { return mean_; }
  // Current cumulative statistic (for inspection/telemetry).
  double statistic() const { return mt_ - min_mt_; }

 private:
  Options options_;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double mt_ = 0.0;
  double min_mt_ = 0.0;
};

// Two-sided CUSUM on standardized values: alarms when the positive or
// negative cumulative sum exceeds `threshold` sigmas.
class CusumDetector {
 public:
  struct Options {
    double k = 0.5;          // slack, in sigmas
    double threshold = 8.0;  // alarm level, in sigmas
  };

  // `mean` and `sigma` describe the in-control distribution (e.g. from the
  // model's training residuals). sigma must be positive.
  CusumDetector(double mean, double sigma)
      : CusumDetector(mean, sigma, Options()) {}
  CusumDetector(double mean, double sigma, Options options)
      : options_(options), mean_(mean), sigma_(sigma > 0.0 ? sigma : 1.0) {}

  // Consumes one observation; returns true on alarm (then resets).
  bool Update(double value);

  void Reset();
  double positive_sum() const { return pos_; }
  double negative_sum() const { return neg_; }

 private:
  Options options_;
  double mean_;
  double sigma_;
  double pos_ = 0.0;
  double neg_ = 0.0;
};

// Offline convenience: runs Page-Hinkley over a whole residual trace and
// returns the indices where changes were signalled.
std::vector<std::size_t> DetectChanges(
    const std::vector<double>& values,
    const PageHinkleyDetector::Options& options = {});

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_DRIFT_H_
