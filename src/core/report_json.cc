#include "core/report_json.h"

#include "common/json_writer.h"

namespace capplan::core {

void WriteForecastFields(JsonWriter* w, const models::Forecast& fc) {
  w->Number("level", fc.level);
  w->BeginArray("mean");
  for (double v : fc.mean) w->ArrayNumber(v);
  w->EndArray();
  w->BeginArray("lower");
  for (double v : fc.lower) w->ArrayNumber(v);
  w->EndArray();
  w->BeginArray("upper");
  for (double v : fc.upper) w->ArrayNumber(v);
  w->EndArray();
}

void WriteBreachFields(JsonWriter* w, const BreachPrediction& breach) {
  w->Bool("mean_breach", breach.mean_breach);
  w->Integer("steps_to_mean_breach",
             static_cast<long long>(breach.steps_to_mean_breach));
  w->Integer("mean_breach_epoch", breach.mean_breach_epoch);
  w->Bool("upper_breach", breach.upper_breach);
  w->Integer("steps_to_upper_breach",
             static_cast<long long>(breach.steps_to_upper_breach));
  w->Integer("upper_breach_epoch", breach.upper_breach_epoch);
}

void WriteHeadroomFields(JsonWriter* w,
                         const CapacityPlanner::HeadroomReport& report) {
  w->Number("current_usage", report.current_usage);
  w->Number("peak_forecast", report.peak_forecast);
  w->Number("peak_upper", report.peak_upper);
  w->Number("headroom_fraction", report.headroom_fraction);
}

std::string ForecastToJson(const models::Forecast& forecast, bool pretty) {
  JsonWriter w(pretty);
  w.BeginObject();
  WriteForecastFields(&w, forecast);
  w.EndObject();
  return w.Take();
}

std::string ReportToJson(const PipelineReport& report, bool pretty) {
  JsonWriter w(pretty);
  w.BeginObject();
  w.String("series", report.series_name);
  w.String("technique", TechniqueName(report.chosen_family));
  w.String("model", report.chosen_spec);
  w.Integer("gaps_filled", static_cast<long long>(report.gaps_filled));
  w.Number("trend_strength", report.traits.trend_strength);
  w.Number("seasonal_strength", report.traits.seasonal_strength);
  w.Bool("multiple_seasonality", report.multiple_seasonality);
  w.Integer("recommended_d", report.recommended_d);
  w.BeginArray("seasons");
  for (const auto& s : report.seasons) {
    w.ArrayNumber(static_cast<double>(s.period));
  }
  w.EndArray();
  w.BeginArray("shocks");
  for (const auto& s : report.shocks) {
    w.BeginObject();
    w.Integer("phase", static_cast<long long>(s.phase));
    w.Integer("period", static_cast<long long>(s.period));
    w.Integer("duration", static_cast<long long>(s.duration));
    w.Integer("occurrences", s.occurrences);
    w.Number("magnitude", s.magnitude);
    w.EndObject();
  }
  w.EndArray();
  w.Integer("transients_discarded",
            static_cast<long long>(report.transient_spikes_discarded));
  w.Number("test_rmse", report.test_accuracy.rmse);
  w.Number("test_mape", report.test_accuracy.mape);
  w.Number("test_mapa", report.test_accuracy.mapa);
  w.Integer("candidates_evaluated",
            static_cast<long long>(report.candidates_evaluated));
  w.Integer("candidates_succeeded",
            static_cast<long long>(report.candidates_succeeded));
  w.Integer("forecast_start_epoch", report.forecast_start_epoch);
  w.Key("forecast");
  w.BeginObject();
  WriteForecastFields(&w, report.forecast);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace capplan::core
