#include "core/report_json.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace capplan::core {

namespace {

// Minimal JSON writer: supports objects, arrays, strings, numbers, bools.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  void BeginObject() {
    Prefix();
    out_ << '{';
    stack_.push_back('}');
    first_ = true;
    pending_key_ = false;
  }
  void EndObject() { End(); }
  void BeginArray(const std::string& key) {
    Key(key);
    out_ << '[';
    stack_.push_back(']');
    first_ = true;
    pending_key_ = false;
  }
  void EndArray() { End(); }

  void Key(const std::string& key) {
    Prefix();
    WriteString(key);
    out_ << (pretty_ ? ": " : ":");
    pending_key_ = true;
  }

  void String(const std::string& key, const std::string& value) {
    Key(key);
    WriteString(value);
    pending_key_ = false;
  }
  void Number(const std::string& key, double value) {
    Key(key);
    WriteNumber(value);
    pending_key_ = false;
  }
  void Integer(const std::string& key, long long value) {
    Key(key);
    out_ << value;
    pending_key_ = false;
  }
  void Bool(const std::string& key, bool value) {
    Key(key);
    out_ << (value ? "true" : "false");
    pending_key_ = false;
  }
  void ArrayNumber(double value) {
    Prefix();
    WriteNumber(value);
  }

  std::string Take() { return out_.str(); }

 private:
  void Prefix() {
    if (pending_key_) return;  // value follows its key directly
    if (!stack_.empty()) {
      if (!first_) out_ << ',';
      if (pretty_) {
        out_ << '\n' << std::string(2 * stack_.size(), ' ');
      }
    }
    first_ = false;
  }
  void End() {
    const char close = stack_.back();
    stack_.pop_back();
    if (pretty_) {
      out_ << '\n' << std::string(2 * stack_.size(), ' ');
    }
    out_ << close;
    first_ = false;
    pending_key_ = false;
  }
  void WriteString(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\r':
          out_ << "\\r";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }
  void WriteNumber(double v) {
    if (std::isnan(v) || std::isinf(v)) {
      out_ << "null";
      return;
    }
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Trim to shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
      char probe[40];
      std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
      double back = 0.0;
      std::sscanf(probe, "%lf", &back);
      if (back == v) {
        out_ << probe;
        return;
      }
    }
    out_ << buf;
  }

  std::ostringstream out_;
  std::vector<char> stack_;
  bool first_ = true;
  bool pending_key_ = false;
  bool pretty_;
};

void WriteForecastFields(JsonWriter* w, const models::Forecast& fc) {
  w->Number("level", fc.level);
  w->BeginArray("mean");
  for (double v : fc.mean) w->ArrayNumber(v);
  w->EndArray();
  w->BeginArray("lower");
  for (double v : fc.lower) w->ArrayNumber(v);
  w->EndArray();
  w->BeginArray("upper");
  for (double v : fc.upper) w->ArrayNumber(v);
  w->EndArray();
}

}  // namespace

std::string ForecastToJson(const models::Forecast& forecast, bool pretty) {
  JsonWriter w(pretty);
  w.BeginObject();
  WriteForecastFields(&w, forecast);
  w.EndObject();
  return w.Take();
}

std::string ReportToJson(const PipelineReport& report, bool pretty) {
  JsonWriter w(pretty);
  w.BeginObject();
  w.String("series", report.series_name);
  w.String("technique", TechniqueName(report.chosen_family));
  w.String("model", report.chosen_spec);
  w.Integer("gaps_filled", static_cast<long long>(report.gaps_filled));
  w.Number("trend_strength", report.traits.trend_strength);
  w.Number("seasonal_strength", report.traits.seasonal_strength);
  w.Bool("multiple_seasonality", report.multiple_seasonality);
  w.Integer("recommended_d", report.recommended_d);
  w.BeginArray("seasons");
  for (const auto& s : report.seasons) {
    w.ArrayNumber(static_cast<double>(s.period));
  }
  w.EndArray();
  w.BeginArray("shocks");
  for (const auto& s : report.shocks) {
    w.BeginObject();
    w.Integer("phase", static_cast<long long>(s.phase));
    w.Integer("period", static_cast<long long>(s.period));
    w.Integer("duration", static_cast<long long>(s.duration));
    w.Integer("occurrences", s.occurrences);
    w.Number("magnitude", s.magnitude);
    w.EndObject();
  }
  w.EndArray();
  w.Integer("transients_discarded",
            static_cast<long long>(report.transient_spikes_discarded));
  w.Number("test_rmse", report.test_accuracy.rmse);
  w.Number("test_mape", report.test_accuracy.mape);
  w.Number("test_mapa", report.test_accuracy.mapa);
  w.Integer("candidates_evaluated",
            static_cast<long long>(report.candidates_evaluated));
  w.Integer("candidates_succeeded",
            static_cast<long long>(report.candidates_succeeded));
  w.Integer("forecast_start_epoch", report.forecast_start_epoch);
  w.Key("forecast");
  w.BeginObject();
  WriteForecastFields(&w, report.forecast);
  w.EndObject();
  w.EndObject();
  return w.Take();
}

}  // namespace capplan::core
