#ifndef CAPPLAN_CORE_SELECTOR_H_
#define CAPPLAN_CORE_SELECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/candidate_gen.h"
#include "models/model.h"
#include "tsa/metrics.h"

namespace capplan::core {

// Outcome of evaluating one candidate on the held-out test window.
struct EvaluatedCandidate {
  ModelCandidate candidate;
  bool ok = false;
  std::string error;             // set when !ok
  tsa::AccuracyReport accuracy;  // test-window accuracy
  double aic = 0.0;
  models::Forecast test_forecast;
};

// Result of a full grid selection.
struct SelectionResult {
  EvaluatedCandidate best;                 // lowest test RMSE
  std::size_t evaluated = 0;               // candidates attempted
  std::size_t succeeded = 0;               // candidates that fitted
  std::vector<EvaluatedCandidate> top;     // best few, RMSE ascending
};

// Evaluates candidate grids in parallel and picks the best test-RMSE model:
// "each model is then computed to obtain an RMSE. The model with the best
// RMSE is the most accurate" (paper Section 5.1); parallel processing per
// Section 9.
class ModelSelector {
 public:
  struct Options {
    std::size_t n_threads = 4;
    std::size_t keep_top = 5;
  };

  ModelSelector() : ModelSelector(Options()) {}
  explicit ModelSelector(Options options) : options_(options) {}

  // Fits every candidate on `train`, forecasts test.size() steps and scores
  // against `test`. `exog_train` are the available shock pulse columns over
  // the training window and `exog_test` their continuation over the test
  // window; candidates use the first candidate.n_exog of them.
  Result<SelectionResult> Select(
      const std::vector<double>& train, const std::vector<double>& test,
      const std::vector<ModelCandidate>& candidates,
      const std::vector<std::vector<double>>& exog_train = {},
      const std::vector<std::vector<double>>& exog_test = {}) const;

  // Evaluates one candidate (exposed for tests and ablations).
  static EvaluatedCandidate Evaluate(
      const ModelCandidate& candidate, const std::vector<double>& train,
      const std::vector<double>& test,
      const std::vector<std::vector<double>>& exog_train,
      const std::vector<std::vector<double>>& exog_test);

 private:
  Options options_;
};

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_SELECTOR_H_
