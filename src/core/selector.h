#ifndef CAPPLAN_CORE_SELECTOR_H_
#define CAPPLAN_CORE_SELECTOR_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "core/candidate_gen.h"
#include "models/model.h"
#include "tsa/metrics.h"

namespace capplan::core {

// Outcome of evaluating one candidate on the held-out test window.
struct EvaluatedCandidate {
  ModelCandidate candidate;
  bool ok = false;
  // Fast path only: the candidate fitted, but its running test squared-error
  // sum provably exceeded the current top-k bound, so scoring stopped early.
  // Pruned candidates are never ok and never appear in `top`.
  bool pruned = false;
  // The selection deadline expired before this candidate was attempted; it
  // was skipped without fitting (never ok, never in `top`).
  bool deadline_skipped = false;
  std::string error;             // set when !ok
  tsa::AccuracyReport accuracy;  // test-window accuracy
  double aic = 0.0;
  models::Forecast test_forecast;
};

// Where one grid selection spent its effort: per-stage wall time plus
// candidate outcome counts. Surfaced through SelectionResult ->
// PipelineReport -> MonitoringService::WatchResult so operators (and the
// fig8 dashboard bench) can see prune/warm-start effectiveness per refit
// instead of only in offline ablations.
struct SelectorProfile {
  std::size_t candidates = 0;        // grid size handed to Select()
  std::size_t succeeded = 0;         // fitted and fully scored
  std::size_t pruned = 0;            // cut off by the early-abort bound
  std::size_t failed = 0;            // fit or scoring errors
  std::size_t deadline_skipped = 0;  // never attempted: budget ran out
  std::size_t warm_hits = 0;         // fits seeded from a prior fit or hint
  std::size_t transform_groups = 0;  // shared-transform (exog, fourier) groups
  std::size_t rescored = 0;          // survivors re-scored by the oracle
  double prepare_ms = 0.0;           // grouping + shared transform builds
  double grid_ms = 0.0;              // parallel candidate evaluation
  double rescore_ms = 0.0;           // cold oracle re-score of survivors
  double total_ms = 0.0;             // the whole Select() call
};

// Result of a full grid selection.
struct SelectionResult {
  EvaluatedCandidate best;                 // lowest test RMSE
  std::size_t evaluated = 0;               // candidates attempted
  std::size_t succeeded = 0;               // candidates that fitted + scored
  std::size_t pruned = 0;                  // cut off by the early-abort bound
  std::size_t deadline_skipped = 0;        // never attempted: budget ran out
  bool deadline_hit = false;               // the time budget expired mid-grid
  std::vector<EvaluatedCandidate> top;     // best few, RMSE ascending
  SelectorProfile profile;                 // where the grid time went
};

// Default evaluation parallelism: the hardware concurrency, clamped to
// [1, 32] (hardware_concurrency() may report 0 when unknown).
std::size_t DefaultThreadCount();

// Evaluates candidate grids in parallel and picks the best test-RMSE model:
// "each model is then computed to obtain an RMSE. The model with the best
// RMSE is the most accurate" (paper Section 5.1); parallel processing per
// Section 9.
//
// Two evaluation paths share the public interface:
//   * Oracle path (all three fast-path flags false): every candidate is
//     evaluated independently by the static Evaluate(), exactly as a serial
//     loop would. This is the correctness reference.
//   * Fast path (default): shared-transform caching, warm-started
//     refinement, and early-abort pruning (see Options). The final
//     keep_top survivors are re-scored with the un-cached, un-warmed
//     Evaluate(), so the selected model and its reported accuracy are
//     identical to the oracle path whenever the oracle's top keep_top
//     candidates land inside the fast path's slightly wider rescoring pool
//     — which holds unless two models' test RMSEs differ by less than the
//     warm-start perturbation (~1e-6, far below real inter-model gaps).
class ModelSelector {
 public:
  // Converged coefficients from a previous fit over the same (or a slightly
  // grown) training window — e.g. the stored model an EstateService refit
  // starts from. Chains whose (d, D, season) match `spec` seed their first
  // fit from these vectors (dense, index i -> lag i+1).
  struct WarmHint {
    models::ArimaSpec spec;
    std::vector<double> ar;
    std::vector<double> ma;
  };

  struct Options {
    std::size_t n_threads = DefaultThreadCount();
    std::size_t keep_top = 5;
    // Layer 1: compute each distinct differencing/demeaning transform and
    // Hannan-Rissanen long-autoregression once per grid (ArimaFitCache),
    // and the OLS stage once per (exog, fourier) group (FitWithSharedOls).
    // Bitwise-identical to the uncached path.
    bool shared_transforms = true;
    // Layer 2: seed each candidate's simplex refinement from the converged
    // coefficients of the previously fitted candidate in its warm chain
    // (same spec except p, walked in input order). Chains are split into
    // fixed-length segments so results do not depend on thread count.
    bool warm_start = true;
    // Layer 3: stop scoring a candidate as soon as its running test-window
    // squared-error sum provably exceeds the current top-k bound; pruned
    // candidates skip the psi-weight interval expansion entirely.
    bool early_abort = true;
    // Optional cross-run warm start applied at the head of matching chains;
    // ignored when both coefficient vectors are empty.
    WarmHint hint;
    // Cooperative wall-clock budget for the whole grid (0 = unlimited).
    // Checked between candidates, never mid-fit: once the budget expires,
    // remaining candidates are skipped (deadline_skipped) and the ones
    // already scored compete as usual. An expired budget with zero scored
    // candidates fails the selection like any empty grid.
    double time_budget_seconds = 0.0;
    // Cross-series shared transform for batched refits: when set, the
    // Fourier design columns of every shared-OLS group are taken from (and
    // inserted into) this cache instead of being recomputed per selection.
    // The columns depend only on (specs, window length), so every series of
    // a batch with the same window reuses them. Selection is bitwise
    // identical either way. Not owned; must outlive the Select call.
    tsa::FourierTermCache* fourier_cache = nullptr;
  };

  ModelSelector() : ModelSelector(Options()) {}
  explicit ModelSelector(Options options) : options_(options) {}

  // Fits every candidate on `train`, forecasts test.size() steps and scores
  // against `test`. `exog_train` are the available shock pulse columns over
  // the training window and `exog_test` their continuation over the test
  // window; candidates use the first candidate.n_exog of them.
  Result<SelectionResult> Select(
      const std::vector<double>& train, const std::vector<double>& test,
      const std::vector<ModelCandidate>& candidates,
      const std::vector<std::vector<double>>& exog_train = {},
      const std::vector<std::vector<double>>& exog_test = {}) const;

  // Evaluates one candidate with no cache, warm start, or pruning — the
  // oracle the fast path's winners are re-scored against (also exposed for
  // tests and ablations).
  static EvaluatedCandidate Evaluate(
      const ModelCandidate& candidate, const std::vector<double>& train,
      const std::vector<double>& test,
      const std::vector<std::vector<double>>& exog_train,
      const std::vector<std::vector<double>>& exog_test);

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_SELECTOR_H_
