#include "core/selector.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <mutex>

#include "models/arima.h"
#include "models/regression.h"

namespace capplan::core {

namespace {

std::vector<std::vector<double>> TakeColumns(
    const std::vector<std::vector<double>>& cols, std::size_t k) {
  std::vector<std::vector<double>> out;
  out.reserve(std::min(k, cols.size()));
  for (std::size_t i = 0; i < k && i < cols.size(); ++i) {
    out.push_back(cols[i]);
  }
  return out;
}

}  // namespace

EvaluatedCandidate ModelSelector::Evaluate(
    const ModelCandidate& candidate, const std::vector<double>& train,
    const std::vector<double>& test,
    const std::vector<std::vector<double>>& exog_train,
    const std::vector<std::vector<double>>& exog_test) {
  EvaluatedCandidate ev;
  ev.candidate = candidate;
  const std::size_t horizon = test.size();

  auto fail = [&](const Status& st) {
    ev.ok = false;
    ev.error = st.ToString();
    return ev;
  };

  models::Forecast fc;
  double aic = 0.0;
  if (candidate.n_exog == 0 && candidate.fourier.empty()) {
    // Plain (S)ARIMA.
    auto model = models::ArimaModel::Fit(train, candidate.spec);
    if (!model.ok()) return fail(model.status());
    auto f = model->Predict(horizon);
    if (!f.ok()) return fail(f.status());
    fc = std::move(*f);
    aic = model->summary().aic;
  } else {
    auto model = models::SarimaxModel::Fit(
        train, candidate.spec, TakeColumns(exog_train, candidate.n_exog),
        candidate.fourier);
    if (!model.ok()) return fail(model.status());
    auto f = model->Predict(horizon, TakeColumns(exog_test, candidate.n_exog));
    if (!f.ok()) return fail(f.status());
    fc = std::move(*f);
    aic = model->summary().aic;
  }
  for (double v : fc.mean) {
    if (!std::isfinite(v)) {
      return fail(Status::ComputeError("non-finite forecast"));
    }
  }
  auto acc = tsa::MeasureAccuracy(test, fc.mean);
  if (!acc.ok()) return fail(acc.status());
  ev.ok = true;
  ev.accuracy = *acc;
  ev.aic = aic;
  ev.test_forecast = std::move(fc);
  return ev;
}

Result<SelectionResult> ModelSelector::Select(
    const std::vector<double>& train, const std::vector<double>& test,
    const std::vector<ModelCandidate>& candidates,
    const std::vector<std::vector<double>>& exog_train,
    const std::vector<std::vector<double>>& exog_test) const {
  if (candidates.empty()) {
    return Status::InvalidArgument("ModelSelector: no candidates");
  }
  if (train.empty() || test.empty()) {
    return Status::InvalidArgument("ModelSelector: empty train/test window");
  }
  for (const auto& col : exog_train) {
    if (col.size() != train.size()) {
      return Status::InvalidArgument(
          "ModelSelector: exog_train column length mismatch");
    }
  }
  for (const auto& col : exog_test) {
    if (col.size() != test.size()) {
      return Status::InvalidArgument(
          "ModelSelector: exog_test column length mismatch");
    }
  }

  std::vector<EvaluatedCandidate> results(candidates.size());
  ThreadPool pool(options_.n_threads);
  pool.ParallelFor(candidates.size(), [&](std::size_t i) {
    results[i] =
        Evaluate(candidates[i], train, test, exog_train, exog_test);
  });

  SelectionResult sel;
  sel.evaluated = results.size();
  std::vector<const EvaluatedCandidate*> ok_results;
  for (const auto& r : results) {
    if (r.ok) ok_results.push_back(&r);
  }
  sel.succeeded = ok_results.size();
  if (ok_results.empty()) {
    return Status::ComputeError(
        "ModelSelector: no candidate fitted successfully (first error: " +
        results.front().error + ")");
  }
  std::sort(ok_results.begin(), ok_results.end(),
            [](const EvaluatedCandidate* a, const EvaluatedCandidate* b) {
              return a->accuracy.rmse < b->accuracy.rmse;
            });
  sel.best = *ok_results.front();
  const std::size_t keep = std::min(options_.keep_top, ok_results.size());
  sel.top.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) sel.top.push_back(*ok_results[i]);
  return sel;
}

}  // namespace capplan::core
