#include "core/selector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <tuple>
#include <utility>

#include "common/fault.h"
#include "models/arima.h"
#include "models/regression.h"
#include "obs/trace.h"

namespace capplan::core {

namespace {

// Warm chains are split into segments of this many candidates; warm-start
// propagation is strictly sequential within a segment and never crosses
// segments, so the set of (seed, candidate) pairs — and with it every fitted
// coefficient — is independent of thread count and scheduling.
constexpr std::size_t kWarmSegment = 8;

// The fast path re-scores this many candidates beyond keep_top with the
// oracle Evaluate, absorbing warm-start rank noise (~1e-6 in RMSE) near the
// keep boundary. The early-abort bound protects the same widened pool.
constexpr std::size_t kRescoreMargin = 3;

std::vector<std::vector<double>> TakeColumns(
    const std::vector<std::vector<double>>& cols, std::size_t k) {
  std::vector<std::vector<double>> out;
  out.reserve(std::min(k, cols.size()));
  for (std::size_t i = 0; i < k && i < cols.size(); ++i) {
    out.push_back(cols[i]);
  }
  return out;
}

// Shared per-(exog, fourier) state: the OLS stage computed once and a
// transform cache over the residual series every candidate in the group
// fits its SARIMA error model on. Plain-ARIMA candidates form a group with
// sarimax == false whose cache is built over the raw training series.
struct OlsGroup {
  bool sarimax = false;
  std::size_t n_exog = 0;  // effective column count (capped by availability)
  std::vector<tsa::FourierSpec> fourier;
  Status ols_status = Status::OK();
  models::OlsFit ols;
  std::unique_ptr<models::ArimaFitCache> cache;
};

// Thread-safe, monotonically tightening bound on the K-th best test SSE seen
// so far. A candidate whose running SSE exceeds Current() at any moment is
// provably outside the final top K, because the bound only ever decreases.
class PruneBound {
 public:
  explicit PruneBound(std::size_t k) : k_(std::max<std::size_t>(1, k)) {}

  double Current() {
    std::lock_guard<std::mutex> lock(mu_);
    if (heap_.size() < k_) return std::numeric_limits<double>::infinity();
    return heap_.front();
  }

  void Offer(double sse) {
    std::lock_guard<std::mutex> lock(mu_);
    if (heap_.size() < k_) {
      heap_.push_back(sse);
      std::push_heap(heap_.begin(), heap_.end());
    } else if (sse < heap_.front()) {
      std::pop_heap(heap_.begin(), heap_.end());
      heap_.back() = sse;
      std::push_heap(heap_.begin(), heap_.end());
    }
  }

 private:
  const std::size_t k_;
  std::mutex mu_;
  std::vector<double> heap_;  // max-heap of the K smallest SSEs
};

struct FastOutcome {
  EvaluatedCandidate ev;
  bool fitted = false;       // fit succeeded (even if scoring was pruned)
  std::vector<double> ar;    // converged dense coefficients, for propagation
  std::vector<double> ma;
};

// One candidate through the fast path: cached/warm fit, mean-only scoring
// with the early-abort bound, full intervals only for survivors.
FastOutcome EvaluateFast(const ModelCandidate& candidate,
                         const std::vector<double>& train,
                         const std::vector<double>& test,
                         const std::vector<std::vector<double>>& exog_train,
                         const std::vector<std::vector<double>>& exog_test,
                         OlsGroup* group, const ModelSelector::Options& opts,
                         const std::vector<double>& warm_ar,
                         const std::vector<double>& warm_ma,
                         PruneBound* bound) {
  obs::TraceSpan span("selector.candidate", "selector");
  FastOutcome out;
  out.ev.candidate = candidate;
  const std::size_t horizon = test.size();

  auto fail = [&](const Status& st) {
    span.set_tag("error");
    out.ev.ok = false;
    out.ev.error = st.ToString();
    return out;
  };

  models::ArimaModel::Options fit_opts;
  if (opts.warm_start) {
    fit_opts.init_ar = warm_ar;
    fit_opts.init_ma = warm_ma;
  }

  models::ArimaModel arima;                     // fitted (when !sarimax)
  std::optional<models::SarimaxModel> sarimax;  // fitted (when sarimax)
  double aic = 0.0;
  if (!group->sarimax) {
    if (opts.shared_transforms) fit_opts.cache = group->cache.get();
    auto model = models::ArimaModel::Fit(train, candidate.spec, fit_opts);
    if (!model.ok()) return fail(model.status());
    arima = std::move(*model);
    out.fitted = true;
    out.ar = arima.ar_coefficients();
    out.ma = arima.ma_coefficients();
    aic = arima.summary().aic;
  } else {
    auto model = [&]() -> Result<models::SarimaxModel> {
      if (!opts.shared_transforms) {
        return models::SarimaxModel::Fit(
            train, candidate.spec, TakeColumns(exog_train, candidate.n_exog),
            candidate.fourier, fit_opts);
      }
      if (!group->ols_status.ok()) return group->ols_status;
      fit_opts.cache = group->cache.get();
      return models::SarimaxModel::FitWithSharedOls(
          train.size(), group->ols, group->n_exog, candidate.fourier,
          candidate.spec, fit_opts);
    }();
    if (!model.ok()) return fail(model.status());
    sarimax = std::move(*model);
    out.fitted = true;
    out.ar = sarimax->error_model().ar_coefficients();
    out.ma = sarimax->error_model().ma_coefficients();
    aic = sarimax->summary().aic;
  }

  const std::vector<std::vector<double>> exog_cols =
      group->sarimax ? TakeColumns(exog_test, candidate.n_exog)
                     : std::vector<std::vector<double>>();

  if (opts.early_abort) {
    // Score the mean forecast first; the psi-weight interval expansion is
    // deferred until the candidate has survived the bound.
    auto mean = group->sarimax ? sarimax->PredictMean(horizon, exog_cols)
                               : arima.PredictMean(horizon);
    if (!mean.ok()) return fail(mean.status());
    for (double v : *mean) {
      if (!std::isfinite(v)) {
        return fail(Status::ComputeError("non-finite forecast"));
      }
    }
    const double limit = bound->Current() * (1.0 + 1e-9);
    double running = 0.0;
    for (std::size_t t = 0; t < horizon; ++t) {
      const double e = test[t] - (*mean)[t];
      running += e * e;
      if (running > limit) {
        span.set_tag("pruned");
        out.ev.pruned = true;
        out.ev.error = "pruned: partial test SSE exceeded the top-k bound";
        return out;
      }
    }
    bound->Offer(running);
  }

  auto f = group->sarimax ? sarimax->Predict(horizon, exog_cols)
                          : arima.Predict(horizon);
  if (!f.ok()) return fail(f.status());
  models::Forecast fc = std::move(*f);
  for (double v : fc.mean) {
    if (!std::isfinite(v)) {
      return fail(Status::ComputeError("non-finite forecast"));
    }
  }
  auto acc = tsa::MeasureAccuracy(test, fc.mean);
  if (!acc.ok()) return fail(acc.status());
  span.set_tag("ok");
  out.ev.ok = true;
  out.ev.accuracy = *acc;
  out.ev.aic = aic;
  out.ev.test_forecast = std::move(fc);
  return out;
}

double MsBetween(std::chrono::steady_clock::time_point t0,
                 std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

std::size_t DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  const std::size_t n = hw == 0 ? 1 : static_cast<std::size_t>(hw);
  return std::clamp<std::size_t>(n, 1, 32);
}

EvaluatedCandidate ModelSelector::Evaluate(
    const ModelCandidate& candidate, const std::vector<double>& train,
    const std::vector<double>& test,
    const std::vector<std::vector<double>>& exog_train,
    const std::vector<std::vector<double>>& exog_test) {
  obs::TraceSpan span("selector.candidate", "selector");
  EvaluatedCandidate ev;
  ev.candidate = candidate;
  const std::size_t horizon = test.size();

  auto fail = [&](const Status& st) {
    span.set_tag("error");
    ev.ok = false;
    ev.error = st.ToString();
    return ev;
  };

  models::Forecast fc;
  double aic = 0.0;
  if (candidate.n_exog == 0 && candidate.fourier.empty()) {
    // Plain (S)ARIMA.
    auto model = models::ArimaModel::Fit(train, candidate.spec);
    if (!model.ok()) return fail(model.status());
    auto f = model->Predict(horizon);
    if (!f.ok()) return fail(f.status());
    fc = std::move(*f);
    aic = model->summary().aic;
  } else {
    auto model = models::SarimaxModel::Fit(
        train, candidate.spec, TakeColumns(exog_train, candidate.n_exog),
        candidate.fourier);
    if (!model.ok()) return fail(model.status());
    auto f = model->Predict(horizon, TakeColumns(exog_test, candidate.n_exog));
    if (!f.ok()) return fail(f.status());
    fc = std::move(*f);
    aic = model->summary().aic;
  }
  for (double v : fc.mean) {
    if (!std::isfinite(v)) {
      return fail(Status::ComputeError("non-finite forecast"));
    }
  }
  auto acc = tsa::MeasureAccuracy(test, fc.mean);
  if (!acc.ok()) return fail(acc.status());
  span.set_tag("ok");
  ev.ok = true;
  ev.accuracy = *acc;
  ev.aic = aic;
  ev.test_forecast = std::move(fc);
  return ev;
}

Result<SelectionResult> ModelSelector::Select(
    const std::vector<double>& train, const std::vector<double>& test,
    const std::vector<ModelCandidate>& candidates,
    const std::vector<std::vector<double>>& exog_train,
    const std::vector<std::vector<double>>& exog_test) const {
  CAPPLAN_RETURN_NOT_OK(FaultHit("selector.grid"));
  if (candidates.empty()) {
    return Status::InvalidArgument("ModelSelector: no candidates");
  }
  if (train.empty() || test.empty()) {
    return Status::InvalidArgument("ModelSelector: empty train/test window");
  }
  for (const auto& col : exog_train) {
    if (col.size() != train.size()) {
      return Status::InvalidArgument(
          "ModelSelector: exog_train column length mismatch");
    }
  }
  for (const auto& col : exog_test) {
    if (col.size() != test.size()) {
      return Status::InvalidArgument(
          "ModelSelector: exog_test column length mismatch");
    }
  }

  obs::TraceSpan select_span("selector.select", "selector");
  const auto t_select0 = std::chrono::steady_clock::now();
  SelectorProfile prof;
  prof.candidates = candidates.size();
  std::atomic<std::size_t> warm_hits{0};

  const bool fast_path = options_.shared_transforms || options_.warm_start ||
                         options_.early_abort;
  ThreadPool pool(options_.n_threads);
  std::vector<EvaluatedCandidate> results(candidates.size());

  // Cooperative deadline, consulted between candidates. The sticky flag
  // makes the answer monotone: once the budget expires every later check
  // skips, independent of clock resolution.
  const bool has_deadline = options_.time_budget_seconds > 0.0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(options_.time_budget_seconds));
  std::atomic<bool> deadline_expired{false};
  auto past_deadline = [&] {
    if (!has_deadline) return false;
    if (deadline_expired.load(std::memory_order_relaxed)) return true;
    if (std::chrono::steady_clock::now() >= deadline) {
      deadline_expired.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  };
  auto skip_for_deadline = [&](std::size_t i) {
    results[i].candidate = candidates[i];
    results[i].deadline_skipped = true;
    results[i].error = "skipped: selection time budget exceeded";
  };

  if (!fast_path) {
    // Oracle path: independent, un-cached evaluations.
    obs::TraceSpan grid_span("selector.grid", "selector");
    const auto t_grid0 = std::chrono::steady_clock::now();
    pool.ParallelFor(candidates.size(), [&](std::size_t i) {
      if (past_deadline()) {
        skip_for_deadline(i);
        return;
      }
      results[i] = Evaluate(candidates[i], train, test, exog_train, exog_test);
    });
    prof.grid_ms = MsBetween(t_grid0, std::chrono::steady_clock::now());
  } else {
    obs::TraceSpan prepare_span("selector.prepare", "selector");
    const auto t_prep0 = std::chrono::steady_clock::now();
    // --- Layer 1: shared transforms, grouped by (exog, fourier). ---
    std::vector<std::unique_ptr<OlsGroup>> groups;
    std::map<std::pair<std::size_t, std::string>, std::size_t> group_index;
    std::vector<std::size_t> candidate_group(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const auto& c = candidates[i];
      const bool sarimax = c.n_exog > 0 || !c.fourier.empty();
      const std::size_t eff_exog =
          sarimax ? std::min(c.n_exog, exog_train.size()) : 0;
      const std::string fkey =
          sarimax ? tsa::FourierCacheKey(c.fourier) : std::string("arima");
      auto [it, inserted] =
          group_index.try_emplace({eff_exog, fkey}, groups.size());
      if (inserted) {
        auto g = std::make_unique<OlsGroup>();
        g->sarimax = sarimax;
        g->n_exog = eff_exog;
        g->fourier = c.fourier;
        groups.push_back(std::move(g));
      }
      candidate_group[i] = it->second;
    }
    if (options_.shared_transforms) {
      for (auto& g : groups) {
        if (!g->sarimax) {
          g->cache = std::make_unique<models::ArimaFitCache>(train);
          continue;
        }
        auto ols = models::SarimaxModel::FitOls(
            train, TakeColumns(exog_train, g->n_exog), g->fourier,
            options_.fourier_cache);
        if (!ols.ok()) {
          g->ols_status = ols.status();
          continue;
        }
        g->ols = std::move(*ols);
        g->cache = std::make_unique<models::ArimaFitCache>(g->ols.residuals);
      }
    }

    // --- Layer 2: warm chains split into fixed-length segments. ---
    std::map<std::string, std::vector<std::size_t>> chains;
    std::vector<std::string> chain_order;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const std::string key = WarmChainKey(candidates[i]);
      auto [it, inserted] = chains.try_emplace(key);
      if (inserted) chain_order.push_back(key);
      it->second.push_back(i);
    }
    const std::size_t segment_len = options_.warm_start ? kWarmSegment : 1;
    std::vector<std::vector<std::size_t>> segments;
    for (const auto& key : chain_order) {
      const auto& chain = chains[key];
      for (std::size_t off = 0; off < chain.size(); off += segment_len) {
        const std::size_t end = std::min(off + segment_len, chain.size());
        segments.emplace_back(chain.begin() + off, chain.begin() + end);
      }
    }

    // --- Layer 3: shared early-abort bound over the rescoring pool. ---
    PruneBound bound(options_.keep_top + kRescoreMargin);

    prof.transform_groups = groups.size();
    prepare_span.End();
    prof.prepare_ms = MsBetween(t_prep0, std::chrono::steady_clock::now());
    obs::TraceSpan grid_span("selector.grid", "selector");
    const auto t_grid0 = std::chrono::steady_clock::now();
    pool.ParallelFor(segments.size(), [&](std::size_t s) {
      std::vector<double> warm_ar;
      std::vector<double> warm_ma;
      const auto& hint = options_.hint;
      if (options_.warm_start && (!hint.ar.empty() || !hint.ma.empty())) {
        const auto& spec = candidates[segments[s].front()].spec;
        if (hint.spec.d == spec.d && hint.spec.D == spec.D &&
            hint.spec.season == spec.season) {
          warm_ar = hint.ar;
          warm_ma = hint.ma;
        }
      }
      for (std::size_t idx : segments[s]) {
        if (past_deadline()) {
          skip_for_deadline(idx);
          continue;
        }
        if (options_.warm_start && (!warm_ar.empty() || !warm_ma.empty())) {
          warm_hits.fetch_add(1, std::memory_order_relaxed);
        }
        FastOutcome out = EvaluateFast(
            candidates[idx], train, test, exog_train, exog_test,
            groups[candidate_group[idx]].get(), options_, warm_ar, warm_ma,
            &bound);
        if (out.fitted) {
          warm_ar = std::move(out.ar);
          warm_ma = std::move(out.ma);
        }
        results[idx] = std::move(out.ev);
      }
    });
    prof.grid_ms = MsBetween(t_grid0, std::chrono::steady_clock::now());
  }

  SelectionResult sel;
  sel.evaluated = results.size();
  sel.deadline_hit = deadline_expired.load(std::memory_order_relaxed);
  std::vector<const EvaluatedCandidate*> ok_results;
  for (const auto& r : results) {
    if (r.ok) ok_results.push_back(&r);
    if (r.pruned) ++sel.pruned;
    if (r.deadline_skipped) ++sel.deadline_skipped;
  }
  sel.succeeded = ok_results.size();
  auto finalize_profile = [&] {
    prof.succeeded = sel.succeeded;
    prof.pruned = sel.pruned;
    prof.deadline_skipped = sel.deadline_skipped;
    prof.failed =
        prof.candidates - prof.succeeded - prof.pruned - prof.deadline_skipped;
    prof.warm_hits = warm_hits.load(std::memory_order_relaxed);
    prof.total_ms = MsBetween(t_select0, std::chrono::steady_clock::now());
    sel.profile = prof;
  };
  if (ok_results.empty()) {
    return Status::ComputeError(
        "ModelSelector: no candidate fitted successfully (first error: " +
        results.front().error + ")");
  }
  std::sort(ok_results.begin(), ok_results.end(),
            [](const EvaluatedCandidate* a, const EvaluatedCandidate* b) {
              return a->accuracy.rmse < b->accuracy.rmse;
            });

  if (fast_path) {
    // Cold re-score: the ranked survivors are re-evaluated with the oracle
    // Evaluate so the reported winner and its accuracy are bitwise-identical
    // to the un-cached serial path (warm-started refinement perturbs RMSE by
    // ~1e-6, which must not leak into the selection output).
    obs::TraceSpan rescore_span("selector.rescore", "selector");
    const auto t_rescore0 = std::chrono::steady_clock::now();
    const std::size_t pool_size = std::min(
        options_.keep_top + kRescoreMargin, ok_results.size());
    prof.rescored = pool_size;
    std::vector<EvaluatedCandidate> rescored(pool_size);
    pool.ParallelFor(pool_size, [&](std::size_t i) {
      rescored[i] = Evaluate(ok_results[i]->candidate, train, test,
                             exog_train, exog_test);
    });
    rescore_span.End();
    prof.rescore_ms = MsBetween(t_rescore0, std::chrono::steady_clock::now());
    std::vector<EvaluatedCandidate> ok_rescored;
    for (auto& r : rescored) {
      if (r.ok) ok_rescored.push_back(std::move(r));
    }
    if (ok_rescored.empty()) {
      return Status::ComputeError(
          "ModelSelector: no rescored candidate fitted successfully");
    }
    std::sort(ok_rescored.begin(), ok_rescored.end(),
              [](const EvaluatedCandidate& a, const EvaluatedCandidate& b) {
                return a.accuracy.rmse < b.accuracy.rmse;
              });
    sel.best = ok_rescored.front();
    const std::size_t keep = std::min(options_.keep_top, ok_rescored.size());
    sel.top.assign(ok_rescored.begin(), ok_rescored.begin() + keep);
    finalize_profile();
    return sel;
  }

  sel.best = *ok_results.front();
  const std::size_t keep = std::min(options_.keep_top, ok_results.size());
  sel.top.reserve(keep);
  for (std::size_t i = 0; i < keep; ++i) sel.top.push_back(*ok_results[i]);
  finalize_profile();
  return sel;
}

}  // namespace capplan::core
