#ifndef CAPPLAN_CORE_PIPELINE_H_
#define CAPPLAN_CORE_PIPELINE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/candidate_gen.h"
#include "core/lattice/period_router.h"
#include "core/lattice/tbats_lattice.h"
#include "core/selector.h"
#include "core/shock_detect.h"
#include "core/split.h"
#include "models/model.h"
#include "repo/model_store.h"
#include "tsa/decompose.h"
#include "tsa/seasonality.h"
#include "tsa/timeseries.h"

namespace capplan::core {

// End-to-end forecast pipeline implementing the paper's Figure 4 workflow:
//
//   gather data -> fill gaps (linear interpolation) -> train/test split
//   (Table 1) -> branch on technique:
//     HES:      fit the exponential-smoothing family, pick best test RMSE
//     SARIMAX:  analyse ACF/PACF -> detect seasonality, multiple seasonality
//               and shocks -> generate the candidate grid (optionally pruned
//               by the correlogram) -> evaluate in parallel -> best RMSE
//   -> refit the winner on the full window -> forecast the Table-1 horizon
//   -> record the model in the central repository (one-week staleness).

// How far down the degradation ladder a forecast came from. When the
// configured selection fails (grid error, fit timeout, too little clean
// data) and degrade_on_failure is set, the pipeline walks down one rung at a
// time until something produces a finite forecast — a degraded estate still
// needs *a* capacity number for every instance, and a seasonal-naive
// projection labelled as such beats a silent hole in the plan.
enum class DegradationLevel {
  kFull = 0,      // the configured technique selection succeeded
  kHesOnly = 1,   // fell back to the exponential-smoothing family
  kSes = 2,       // direct SES fit, no Table-1 split required
  kBaseline = 3,  // seasonal-naive / naive floor
};

const char* DegradationLevelName(DegradationLevel level);

struct PipelineOptions {
  // Which branch to run. kAuto evaluates both the HES family and the
  // SARIMAX families and returns the overall best.
  Technique technique = Technique::kAuto;

  // Prune AR lag candidates with the PACF correlogram (paper Section 6.3's
  // tuning step). Exhaustive grids reproduce the full §6.3 counts.
  bool prune_with_correlogram = true;

  // Grid breadth: AR lags range over 1..max_lag (30 in the paper).
  int max_lag = 30;

  std::size_t n_threads = DefaultThreadCount();
  double interval_level = 0.95;

  // Selector fast path (shared transforms + warm-started fits + early-abort
  // scoring). Off = the serial-equivalent oracle evaluation; the selected
  // model is identical either way (the fast path cold re-scores its
  // winners), so this exists for ablation and debugging.
  bool selector_fast_path = true;

  // Optional warm-start hint forwarded to the selector — typically the
  // stored coefficients of the previous fit of the same series (see
  // ModelSelector::WarmHint; ignored when empty).
  ModelSelector::WarmHint selector_hint;

  // When > 0, replaces the Table-1 prediction horizon (in observations at
  // the series frequency). The service layer uses this to make one fit's
  // cached forecast span a whole staleness period between refits.
  std::size_t horizon_override = 0;

  // When > 1, the SARIMAX-family forecast is an inverse-RMSE-weighted
  // combination of the top-k selected models (refitted on the full window)
  // instead of the single winner — more robust to the single test split.
  std::size_t ensemble_top_k = 1;

  // Replace non-recurring transient spikes (crash rule) with interpolated
  // values before fitting.
  bool remove_transients = false;

  // Shock handling (the paper's ">3 occurrences is a behaviour" rule).
  ShockDetector::Options shock;

  // Walk the degradation ladder instead of failing when the configured
  // selection cannot produce a forecast. The ladder itself can still fail —
  // only a series with no finite observation defeats every rung.
  bool degrade_on_failure = false;

  // Cooperative wall-clock budget for the SARIMAX grid selection, forwarded
  // to ModelSelector::Options::time_budget_seconds (0 = unlimited). When the
  // budget expires mid-grid the candidates evaluated so far still compete;
  // an empty result degrades like any other selection failure.
  double fit_time_budget_seconds = 0.0;

  // Multi-seasonality selection subsystem (docs/selection.md): FFT period
  // routing plus the TBATS option lattice. `router` configures detection;
  // `tbats_lattice` configures the AIC-pruned lattice behind kTbats (its
  // n_threads/metrics fields are overridden from this struct's).
  lattice::RouterOptions router;
  lattice::TbatsLatticeOptions tbats_lattice;

  // In kAuto, additionally route multi-seasonal series (two or more
  // detected periods) through the TBATS lattice branch.
  bool auto_tbats = true;

  // Optional metrics sink for the capplan_select_* family; may be null.
  // Not owned; must outlive every Run call.
  obs::MetricsRegistry* metrics = nullptr;

  // Optional central model registry; when set, the chosen model is recorded
  // under the series name with the fit timestamp.
  repo::ModelRepository* model_repository = nullptr;

  // Cross-series shared-transform cache for batched refits (see
  // core::RefitBatchSession): memoizes the Fourier design columns across
  // every selection and final refit that runs with these options. Results
  // are bitwise-identical with or without it. Not owned; must outlive every
  // Run call.
  tsa::FourierTermCache* fourier_cache = nullptr;
};

struct PipelineReport {
  std::string series_name;
  SplitPolicy split;

  // Data understanding stage.
  std::size_t gaps_filled = 0;
  tsa::SeriesTraits traits;
  std::vector<tsa::DetectedSeason> seasons;
  bool multiple_seasonality = false;
  // Period detection degraded to the single-season path (selector.periods
  // fault or a detection error); selection proceeded without routing.
  bool period_detection_fallback = false;
  std::vector<DetectedShock> shocks;
  std::size_t transient_spikes_discarded = 0;
  int recommended_d = 0;

  // Selection stage.
  Technique chosen_family = Technique::kArima;
  std::string chosen_spec;
  tsa::AccuracyReport test_accuracy;
  std::size_t candidates_evaluated = 0;
  std::size_t candidates_succeeded = 0;
  std::size_t candidates_pruned = 0;  // cut off by the early-abort bound

  // Stage timings and fast-path effectiveness of the SARIMAX grid selection
  // (all-zero when no grid ran, e.g. a pure HES win or a degraded rung).
  SelectorProfile selector_profile;

  // TBATS lattice counters when the TBATS branch ran (all-zero otherwise).
  lattice::LatticeProfile tbats_profile;

  // Dense converged coefficients of the winning (S)ARIMA(X) error model,
  // refitted on the full window (index i -> lag i+1). Persisted with the
  // stored model so the next refit of this series can warm-start its grid.
  std::vector<double> chosen_ar;
  std::vector<double> chosen_ma;

  // Forecast of the Table-1 prediction horizon, made from the full window.
  models::Forecast forecast;
  std::int64_t forecast_start_epoch = 0;

  // Which ladder rung produced the forecast (kFull unless
  // degrade_on_failure kicked in) and, when degraded, why the full
  // selection was abandoned.
  DegradationLevel degradation = DegradationLevel::kFull;
  std::string degradation_reason;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {}) : options_(options) {}

  // Runs the full workflow on an hourly/daily/weekly series.
  Result<PipelineReport> Run(const tsa::TimeSeries& series) const;

  const PipelineOptions& options() const { return options_; }

 private:
  // The configured selection (the pre-ladder Run body): interpolate, split,
  // understand, branch, refit, record.
  Result<PipelineReport> RunSelection(const tsa::TimeSeries& series) const;

  // Walks rungs kHesOnly -> kSes -> kBaseline after RunSelection failed
  // with `cause`. Fails only when no rung can produce a finite forecast.
  Result<PipelineReport> RunDegraded(const tsa::TimeSeries& series,
                                     const Status& cause) const;

  // Branch implementations; both fill the selection/forecast fields of the
  // report and return the achieved test RMSE.
  Result<double> RunHesBranch(const tsa::TimeSeries& train,
                              const tsa::TimeSeries& test,
                              const tsa::TimeSeries& full,
                              PipelineReport* report) const;
  Result<double> RunSarimaxBranch(Technique family,
                                  const tsa::TimeSeries& train,
                                  const tsa::TimeSeries& test,
                                  const tsa::TimeSeries& full,
                                  PipelineReport* report) const;
  Result<double> RunTbatsBranch(const tsa::TimeSeries& train,
                                const tsa::TimeSeries& test,
                                const tsa::TimeSeries& full,
                                PipelineReport* report) const;
  Result<double> RunBaselineBranch(const tsa::TimeSeries& train,
                                   const tsa::TimeSeries& test,
                                   const tsa::TimeSeries& full,
                                   PipelineReport* report) const;

  PipelineOptions options_;
};

}  // namespace capplan::core

#endif  // CAPPLAN_CORE_PIPELINE_H_
