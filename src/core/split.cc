#include "core/split.h"

namespace capplan::core {

const char* TechniqueName(Technique technique) {
  switch (technique) {
    case Technique::kArima:
      return "ARIMA";
    case Technique::kSarimax:
      return "SARIMAX";
    case Technique::kSarimaxFftExog:
      return "SARIMAX_FFT_EXOG";
    case Technique::kHes:
      return "HES";
    case Technique::kTbats:
      return "TBATS";
    case Technique::kBaseline:
      return "BASELINE";
    case Technique::kAuto:
      return "AUTO";
  }
  return "?";
}

Result<SplitPolicy> SplitFor(tsa::Frequency freq) {
  SplitPolicy p;
  switch (freq) {
    case tsa::Frequency::kHourly:
      p = {1008, 984, 24, 24, "hours"};
      return p;
    case tsa::Frequency::kDaily:
      p = {90, 83, 7, 7, "days"};
      return p;
    case tsa::Frequency::kWeekly:
      p = {92, 88, 4, 4, "weeks"};
      return p;
    case tsa::Frequency::kQuarterHourly:
    case tsa::Frequency::kMonthly:
      break;
  }
  return Status::InvalidArgument(
      "SplitFor: no Table-1 policy for this frequency (aggregate first)");
}

Result<std::pair<tsa::TimeSeries, tsa::TimeSeries>> ApplySplit(
    const tsa::TimeSeries& series) {
  CAPPLAN_ASSIGN_OR_RETURN(SplitPolicy policy, SplitFor(series.frequency()));
  if (series.size() < policy.observations) {
    return Status::InvalidArgument(
        "ApplySplit: need " + std::to_string(policy.observations) +
        " observations, have " + std::to_string(series.size()));
  }
  // Use the most recent window.
  const std::size_t begin = series.size() - policy.observations;
  CAPPLAN_ASSIGN_OR_RETURN(tsa::TimeSeries window,
                           series.Slice(begin, policy.observations));
  return window.SplitAt(policy.train);
}

}  // namespace capplan::core
