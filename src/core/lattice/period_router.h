#ifndef CAPPLAN_CORE_LATTICE_PERIOD_ROUTER_H_
#define CAPPLAN_CORE_LATTICE_PERIOD_ROUTER_H_

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "tsa/seasonality.h"

namespace capplan::core::lattice {

// Per-series seasonality router — the front half of the multi-seasonality
// selection subsystem (paper Section 4.4: "we apply Fourier analysis if we
// detect time series data with multiple seasonality"). It runs the
// FFT/periodogram period detection (harmonics of an accepted season are
// suppressed, so daily + weekly reports as {24, 168}) on the
// trainability-gated series and hands the detected periods to both the
// SARIMAX Fourier candidate generation and the TBATS option lattice.
//
// Routing never fails: a detection error (or an armed `selector.periods`
// fault) degrades to the single-season decision — no detected periods, so
// the selection stays on the plain single-season SARIMAX/HES path. That is
// deliberately NOT the degradation ladder: losing period detection costs
// model richness, not the forecast itself.

struct RouterOptions {
  tsa::SeasonalityOptions seasonality;
  // Optional metrics sink for the capplan_select_* family; may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

struct RoutingDecision {
  // Detected seasonal periods, strongest first; empty on fallback.
  std::vector<tsa::DetectedSeason> seasons;
  // At least two distinct periods detected — the multi-seasonal trigger for
  // the TBATS branch and SARIMAX Fourier terms.
  bool multiple_seasonality = false;
  // Detection failed (fault or compute error) and the router degraded to
  // the single-season path.
  bool detection_failed = false;
  std::string failure_reason;
  double routing_ms = 0.0;
};

class PeriodRouter {
 public:
  explicit PeriodRouter(RouterOptions options = {}) : options_(options) {}

  // Emits the `select.periods` span and the router metrics; honours the
  // `selector.periods` fault site.
  RoutingDecision Route(const std::vector<double>& values) const;

 private:
  RouterOptions options_;
};

}  // namespace capplan::core::lattice

#endif  // CAPPLAN_CORE_LATTICE_PERIOD_ROUTER_H_
