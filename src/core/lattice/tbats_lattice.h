#ifndef CAPPLAN_CORE_LATTICE_TBATS_LATTICE_H_
#define CAPPLAN_CORE_LATTICE_TBATS_LATTICE_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "models/tbats.h"
#include "obs/metrics.h"

namespace capplan::core::lattice {

// TBATS option lattice with AIC pruning — the back half of the
// multi-seasonality selection subsystem (paper Section 4.3: the TBATS
// configuration is "chosen by AIC over the option lattice").
//
// Candidate enumeration is deterministic and shared by both paths: a greedy
// per-season harmonic selection (k = 1..max_harmonics under the base
// configuration, stop when AIC stops improving) fixes the trigonometric
// term counts, then the option lattice expands Box-Cox on/off x trend
// on/off x damping on/off x ARMA error orders in a fixed order.
//
// Two scoring paths over that shared candidate list:
//   * oracle (prune = false): every configuration is fitted at the full
//     optimizer budget; the winner is the minimum AIC, ties broken by
//     lattice order.
//   * pruned (prune = true): every configuration gets a short-budget
//     prefit; dominated branches (everything outside the top `keep_top` by
//     prefit AIC) are cut, and the survivors are cold-rescored with exactly
//     the oracle's full-budget fit. Because the rescore is the oracle
//     evaluation and the tie-break order is the lattice order, the pruned
//     selection is deterministic and oracle-equal whenever the oracle's
//     winner survives the prefit cut — the same contract as the PR 2
//     selector fast path, enforced by tests/core/tbats_lattice_test.cc.
//
// Fits are independent, so evaluation parallelises over a thread pool;
// results land in a per-candidate slot and the reduction is sequential, so
// the selection is identical at any thread count.

struct TbatsLatticeOptions {
  TbatsLatticeOptions() {
    model.max_harmonics = 3;
    model.max_fit_iterations = 300;
  }

  // Option-lattice switches and the full (oracle) optimizer budget.
  models::TbatsModel::Options model;

  // Pruned path on/off. Off = the exhaustive oracle; selection is identical
  // either way when the winner survives the cut, so this exists for the
  // equality tests, the bench gate and ablation.
  bool prune = true;

  // Survivors cold-rescored at full budget. Everything below this rank by
  // prefit AIC is pruned.
  std::size_t keep_top = 6;

  // Optimizer budget for the prefit pass; 0 derives max_fit_iterations / 8
  // (clamped to >= 20).
  int prefit_iterations = 0;

  std::size_t n_threads = 1;

  // Optional metrics sink for the capplan_select_* family; may be null.
  obs::MetricsRegistry* metrics = nullptr;
};

struct LatticeProfile {
  std::size_t enumerated = 0;  // configurations in the option lattice
  std::size_t evaluated = 0;   // fits run (greedy + prefits + full rescores)
  std::size_t pruned = 0;      // configurations cut before the full rescore
  std::size_t rescored = 0;    // survivors cold-rescored at full budget
  double total_ms = 0.0;
};

struct TbatsSelection {
  models::TbatsModel model;  // AIC-best configuration at full budget
  double aic = 0.0;
  LatticeProfile profile;
};

class TbatsLattice {
 public:
  explicit TbatsLattice(TbatsLatticeOptions options = {})
      : options_(options) {}

  // Selects the AIC-best TBATS configuration for `y` over the given
  // seasonal periods. Emits the `select.tbats_lattice` span and the lattice
  // metrics. Fails when no configuration fits.
  Result<TbatsSelection> Select(const std::vector<double>& y,
                                const std::vector<double>& periods) const;

  // The shared deterministic candidate list (greedy harmonics already
  // fixed), in lattice order. Exposed for the equality tests.
  std::vector<models::TbatsConfig> EnumerateConfigs(
      const std::vector<double>& y,
      const std::vector<double>& periods) const;

  const TbatsLatticeOptions& options() const { return options_; }

 private:
  int PrefitBudget() const;

  TbatsLatticeOptions options_;
};

}  // namespace capplan::core::lattice

#endif  // CAPPLAN_CORE_LATTICE_TBATS_LATTICE_H_
