#include "core/lattice/tbats_lattice.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <optional>
#include <utility>

#include "common/thread_pool.h"
#include "obs/trace.h"

namespace capplan::core::lattice {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

double AicOrInf(const Result<models::TbatsModel>& r) {
  return r.ok() ? r->summary().aic : kInf;
}

}  // namespace

int TbatsLattice::PrefitBudget() const {
  if (options_.prefit_iterations > 0) return options_.prefit_iterations;
  return std::max(20, options_.model.max_fit_iterations / 8);
}

std::vector<models::TbatsConfig> TbatsLattice::EnumerateConfigs(
    const std::vector<double>& y, const std::vector<double>& periods) const {
  const models::TbatsModel::Options& mo = options_.model;
  bool positive = true;
  for (double v : y) {
    if (v <= 0.0) {
      positive = false;
      break;
    }
  }

  // Greedy per-season harmonic selection under the base configuration
  // (trend on, everything else off). The short prefit budget is enough to
  // rank harmonic counts, and because both scoring paths share this stage
  // verbatim they enumerate identical candidate lists.
  const int greedy_budget = PrefitBudget();
  models::TbatsConfig base;
  base.use_trend = true;
  for (double period : periods) {
    models::TbatsSeason s;
    s.period = period;
    s.harmonics = 1;
    base.seasons.push_back(s);
    // Viability screen: a routed period the base configuration cannot even
    // seed (non-finite objective at the optimiser's start point) is dropped
    // here, before the lattice is built — otherwise one bad season poisons
    // every cell, since all cells share the season set.
    if (!std::isfinite(
            AicOrInf(models::TbatsModel::FitConfig(y, base, greedy_budget)))) {
      base.seasons.pop_back();
    }
  }
  for (std::size_t s = 0; s < base.seasons.size(); ++s) {
    double best_aic = kInf;
    std::size_t best_k = 1;
    for (std::size_t k = 1; k <= mo.max_harmonics; ++k) {
      if (2.0 * static_cast<double>(k) >= base.seasons[s].period) break;
      base.seasons[s].harmonics = k;
      const double aic =
          AicOrInf(models::TbatsModel::FitConfig(y, base, greedy_budget));
      if (aic < best_aic - 1e-9) {
        best_aic = aic;
        best_k = k;
      } else if (k > best_k) {
        break;  // AIC stopped improving; keep the best found
      }
    }
    base.seasons[s].harmonics = best_k;
  }

  // The option lattice, in fixed order: Box-Cox x trend x damping x ARMA.
  std::vector<models::TbatsConfig> lattice;
  std::vector<bool> boxcox_opts{false};
  if (mo.try_boxcox && positive) boxcox_opts.push_back(true);
  std::vector<bool> trend_opts{true};
  if (mo.try_trend) trend_opts.push_back(false);
  std::vector<std::pair<int, int>> arma_opts{{0, 0}};
  if (mo.try_arma) {
    arma_opts.push_back({1, 0});
    arma_opts.push_back({0, 1});
    arma_opts.push_back({1, 1});
  }
  for (bool bc : boxcox_opts) {
    for (bool tr : trend_opts) {
      std::vector<bool> damp_opts{false};
      if (mo.try_damping && tr) damp_opts.push_back(true);
      for (bool dp : damp_opts) {
        for (const auto& [ap, aq] : arma_opts) {
          models::TbatsConfig cfg = base;
          cfg.use_boxcox = bc;
          cfg.use_trend = tr;
          cfg.use_damping = dp;
          cfg.arma_p = ap;
          cfg.arma_q = aq;
          lattice.push_back(cfg);
        }
      }
    }
  }
  return lattice;
}

Result<TbatsSelection> TbatsLattice::Select(
    const std::vector<double>& y, const std::vector<double>& periods) const {
  obs::TraceSpan span("select.tbats_lattice", "select");
  const auto t0 = std::chrono::steady_clock::now();

  const std::vector<models::TbatsConfig> lattice =
      EnumerateConfigs(y, periods);
  if (lattice.empty()) {
    return Status::InvalidArgument("TbatsLattice: empty option lattice");
  }

  LatticeProfile profile;
  profile.enumerated = lattice.size();

  // Fits a subset of candidates at the given budget, results landing in
  // per-candidate slots so the reduction below is order-independent of the
  // execution schedule.
  auto fit_many = [&](const std::vector<std::size_t>& indices, int budget)
      -> std::vector<std::optional<Result<models::TbatsModel>>> {
    std::vector<std::optional<Result<models::TbatsModel>>> slots(
        lattice.size());
    profile.evaluated += indices.size();
    if (options_.n_threads > 1 && indices.size() > 1) {
      ThreadPool pool(std::min(options_.n_threads, indices.size()));
      std::vector<std::future<void>> futures;
      futures.reserve(indices.size());
      for (std::size_t idx : indices) {
        futures.push_back(pool.Submit([&, idx] {
          slots[idx].emplace(
              models::TbatsModel::FitConfig(y, lattice[idx], budget));
        }));
      }
      for (auto& f : futures) f.get();
    } else {
      for (std::size_t idx : indices) {
        slots[idx].emplace(
            models::TbatsModel::FitConfig(y, lattice[idx], budget));
      }
    }
    return slots;
  };

  std::vector<std::size_t> all(lattice.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = i;

  // The pruned path: short-budget prefits rank the lattice, dominated
  // branches are cut, and the survivors get the oracle's full-budget fit.
  std::vector<std::size_t> rescore = all;
  if (options_.prune && options_.keep_top < lattice.size()) {
    const auto prefits = fit_many(all, PrefitBudget());
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(lattice.size());
    for (std::size_t i = 0; i < lattice.size(); ++i) {
      const double aic = AicOrInf(*prefits[i]);
      if (std::isfinite(aic)) ranked.emplace_back(aic, i);
    }
    std::stable_sort(ranked.begin(), ranked.end());
    if (!ranked.empty()) {
      rescore.clear();
      for (std::size_t r = 0; r < ranked.size() && r < options_.keep_top;
           ++r) {
        rescore.push_back(ranked[r].second);
      }
      // Rescore (and tie-break) in lattice order, exactly like the oracle.
      std::sort(rescore.begin(), rescore.end());
    }
    // When every prefit diverged, `rescore` stays the full lattice: the
    // pruned path collapses to the oracle instead of failing differently.
    profile.pruned = lattice.size() - rescore.size();
  }
  profile.rescored = rescore.size();

  const auto fits = fit_many(rescore, options_.model.max_fit_iterations);
  double best_aic = kInf;
  std::optional<std::size_t> best_idx;
  for (std::size_t idx : rescore) {
    const double aic = AicOrInf(*fits[idx]);
    if (aic < best_aic) {
      best_aic = aic;
      best_idx = idx;
    }
  }
  profile.total_ms = MsSince(t0);

  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetCounter("capplan_select_lattice_evaluated_total", {},
                     "TBATS lattice candidate fits run")
        .Inc(profile.evaluated);
    options_.metrics
        ->GetCounter("capplan_select_lattice_pruned_total", {},
                     "TBATS lattice candidates cut before the full rescore")
        .Inc(profile.pruned);
  }

  if (!best_idx.has_value()) {
    return Status::ComputeError("TbatsLattice: no configuration fitted");
  }
  TbatsSelection selection{std::move(**fits[*best_idx]), best_aic, profile};
  return selection;
}

}  // namespace capplan::core::lattice
