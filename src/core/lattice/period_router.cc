#include "core/lattice/period_router.h"

#include <chrono>

#include "common/fault.h"
#include "obs/trace.h"

namespace capplan::core::lattice {

namespace {

double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

RoutingDecision PeriodRouter::Route(const std::vector<double>& values) const {
  obs::TraceSpan span("select.periods", "select");
  const auto t0 = std::chrono::steady_clock::now();
  RoutingDecision decision;

  auto detect = [&]() -> Status {
    CAPPLAN_RETURN_NOT_OK(FaultHit("selector.periods"));
    CAPPLAN_ASSIGN_OR_RETURN(decision.seasons,
                             tsa::DetectSeasonality(values,
                                                    options_.seasonality));
    return Status::OK();
  };
  if (Status st = detect(); !st.ok()) {
    // Single-season fallback: the selection proceeds without detected
    // periods instead of walking the degradation ladder.
    decision.seasons.clear();
    decision.detection_failed = true;
    decision.failure_reason = st.ToString();
    span.set_tag("fallback");
  }
  decision.multiple_seasonality = decision.seasons.size() >= 2;
  decision.routing_ms = MsSince(t0);

  if (options_.metrics != nullptr) {
    options_.metrics
        ->GetCounter("capplan_select_periods_detected_total", {},
                     "Seasonal periods detected by the FFT period router")
        .Inc(decision.seasons.size());
    if (decision.detection_failed) {
      options_.metrics
          ->GetCounter("capplan_select_period_fallback_total", {},
                       "Period detections that degraded to the "
                       "single-season path")
          .Inc();
    }
    options_.metrics
        ->GetHistogram("capplan_select_routing_latency_ms", {}, {},
                       "FFT period-routing latency per series")
        .Observe(decision.routing_ms);
  }
  return decision;
}

}  // namespace capplan::core::lattice
