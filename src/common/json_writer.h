#ifndef CAPPLAN_COMMON_JSON_WRITER_H_
#define CAPPLAN_COMMON_JSON_WRITER_H_

#include <cmath>
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

namespace capplan {

// Minimal JSON writer shared by the report and telemetry serializers:
// supports objects, arrays, strings, numbers, bools. Strings are escaped per
// RFC 8259; doubles use shortest round-trip formatting; NaN/Inf are emitted
// as null.
class JsonWriter {
 public:
  explicit JsonWriter(bool pretty) : pretty_(pretty) {}

  void BeginObject() {
    Prefix();
    out_ << '{';
    stack_.push_back('}');
    first_ = true;
    pending_key_ = false;
  }
  void EndObject() { End(); }
  void BeginArray(const std::string& key) {
    Key(key);
    out_ << '[';
    stack_.push_back(']');
    first_ = true;
    pending_key_ = false;
  }
  void EndArray() { End(); }

  void Key(const std::string& key) {
    Prefix();
    WriteString(key);
    out_ << (pretty_ ? ": " : ":");
    pending_key_ = true;
  }

  void String(const std::string& key, const std::string& value) {
    Key(key);
    WriteString(value);
    pending_key_ = false;
  }
  void Number(const std::string& key, double value) {
    Key(key);
    WriteNumber(value);
    pending_key_ = false;
  }
  void Integer(const std::string& key, long long value) {
    Key(key);
    out_ << value;
    pending_key_ = false;
  }
  void Bool(const std::string& key, bool value) {
    Key(key);
    out_ << (value ? "true" : "false");
    pending_key_ = false;
  }
  void ArrayNumber(double value) {
    Prefix();
    WriteNumber(value);
  }

  std::string Take() { return out_.str(); }

 private:
  void Prefix() {
    if (pending_key_) return;  // value follows its key directly
    if (!stack_.empty()) {
      if (!first_) out_ << ',';
      if (pretty_) {
        out_ << '\n' << std::string(2 * stack_.size(), ' ');
      }
    }
    first_ = false;
  }
  void End() {
    const char close = stack_.back();
    stack_.pop_back();
    if (pretty_) {
      out_ << '\n' << std::string(2 * stack_.size(), ' ');
    }
    out_ << close;
    first_ = false;
    pending_key_ = false;
  }
  void WriteString(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"':
          out_ << "\\\"";
          break;
        case '\\':
          out_ << "\\\\";
          break;
        case '\n':
          out_ << "\\n";
          break;
        case '\r':
          out_ << "\\r";
          break;
        case '\t':
          out_ << "\\t";
          break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }
  void WriteNumber(double v) {
    if (std::isnan(v) || std::isinf(v)) {
      out_ << "null";
      return;
    }
    char buf[40];
    if (v == std::floor(v) && std::fabs(v) < 1e15) {
      // Integral values print as integers ("10", not "1e+01").
      std::snprintf(buf, sizeof(buf), "%.0f", v);
      out_ << buf;
      return;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    // Trim to shortest representation that round-trips.
    for (int prec = 1; prec < 17; ++prec) {
      char probe[40];
      std::snprintf(probe, sizeof(probe), "%.*g", prec, v);
      double back = 0.0;
      std::sscanf(probe, "%lf", &back);
      if (back == v) {
        out_ << probe;
        return;
      }
    }
    out_ << buf;
  }

  std::ostringstream out_;
  std::vector<char> stack_;
  bool first_ = true;
  bool pending_key_ = false;
  bool pretty_;
};

}  // namespace capplan

#endif  // CAPPLAN_COMMON_JSON_WRITER_H_
