#ifndef CAPPLAN_COMMON_RESULT_H_
#define CAPPLAN_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace capplan {

// Either a value of type T or a non-OK Status explaining why the value could
// not be produced. Analogous to arrow::Result / absl::StatusOr.
template <typename T>
class Result {
 public:
  // Implicit from value and from Status so that `return value;` and
  // `return Status::...;` both work in functions returning Result<T>.
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  // Precondition: ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  // Returns the value or `fallback` if this Result holds an error.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace capplan

// Evaluates an expression returning Result<T>; on success binds the value to
// `lhs`, otherwise returns the error Status to the caller.
#define CAPPLAN_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define CAPPLAN_ASSIGN_OR_RETURN(lhs, expr) \
  CAPPLAN_ASSIGN_OR_RETURN_IMPL(            \
      CAPPLAN_CONCAT_(_capplan_result_, __LINE__), lhs, expr)

#define CAPPLAN_CONCAT_INNER_(a, b) a##b
#define CAPPLAN_CONCAT_(a, b) CAPPLAN_CONCAT_INNER_(a, b)

#endif  // CAPPLAN_COMMON_RESULT_H_
