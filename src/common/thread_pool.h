#ifndef CAPPLAN_COMMON_THREAD_POOL_H_
#define CAPPLAN_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace capplan {

// Fixed-size worker pool used by the model selector to evaluate candidate
// models in parallel (the paper reports "gains achieved by parallel
// processing the models", Section 9).
class ThreadPool {
 public:
  // Starts `num_threads` workers (>= 1; 0 is clamped to 1).
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn` for execution; returns a future for its result.
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<decltype(fn())> {
    using R = decltype(fn());
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  std::size_t num_threads() const { return workers_.size(); }

  // Runs fn(i) for i in [0, n) across the pool and blocks until all complete.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace capplan

#endif  // CAPPLAN_COMMON_THREAD_POOL_H_
