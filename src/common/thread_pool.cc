#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace capplan {

ThreadPool::ThreadPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace capplan
