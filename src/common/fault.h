#ifndef CAPPLAN_COMMON_FAULT_H_
#define CAPPLAN_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace capplan {

// Deterministic fault-injection registry. Production code paths that touch
// the outside world (journal appends, CSV/snapshot writes, model fits, agent
// polls) consult a named *site* before doing their work; tests arm a site
// with a plan describing which calls fail, run a chaos scenario, and assert
// the recovery invariants. Everything is deterministic: whether call #n at a
// site fires depends only on (plan, seed, site name, n), never on wall time
// or thread scheduling, so a failing scenario replays exactly.
//
// When no site is armed the per-call cost is one relaxed atomic load; the
// harness is compiled into release builds and safe to leave in hot paths.
//
// Wired sites (grep for FaultHit/FaultFires to find the exact points):
//   journal.append      EventJournal::Append fails before writing
//   journal.torn        EventJournal::Append writes a partial line (torn
//                       tail, as a crash mid-append would leave) and fails
//   csv.write           repo::WriteCsv fails before creating the file
//                       (snapshots, registry, schedule, alert tables)
//   csv.write_series    repo::WriteSeriesCsv fails (repository SaveAll)
//   model_store.save    ModelRepository::Save fails
//   agent.collect       MonitoringAgent::Collect fails outright
//   agent.poison        one collected sample is replaced with garbage
//   pipeline.run        core::Pipeline::Run fails before doing anything
//                       (a refit worker dying, in service terms)
//   selector.grid       the SARIMAX grid-selection stage fails, which
//                       drives the degradation ladder to the HES rung
//   selector.periods    FFT period detection fails; the router degrades to
//                       the single-season path (no detected periods, so no
//                       TBATS/Fourier routing) WITHOUT entering the ladder
//   pipeline.tbats      the TBATS lattice branch fails; under
//                       degrade_on_failure a kTbats selection rides the
//                       normal full -> HES -> SES -> naive ladder
//   pipeline.hes        the HES selection rung fails (ladder -> SES)
//   pipeline.ses        the SES rung fails (ladder -> seasonal-naive)
//   pipeline.poison_fit a refit "succeeds" with ruined held-out accuracy
//                       (exercises the champion/challenger promotion gate)
//   pipeline.poison_forecast
//                       a refit succeeds with clean reported accuracy but a
//                       ruined forecast (exercises the live-accuracy
//                       guardrail and automatic rollback)
//   serve.accept        the HTTP server drops a freshly accepted connection
//   serve.read          an HTTP socket read fails (client torn mid-request)
//   serve.write         an HTTP socket write fails mid-response
//   store.seal          SeriesStore fails to compress a hot run (absorbed:
//                       the samples stay hot and sealing retries)
//   store.flush         TieredStore::Flush fails before writing its segment
//                       file (snapshot retries at the next interval)
//   store.reopen        TieredStore::Open fails before reading (recovery
//                       falls back to a full agent re-poll)

// Which calls at an armed site fail. Counting starts at the moment the site
// is armed; `skip` calls pass, then `fail` calls fire, then the site is
// exhausted and passes everything (but stays registered for its counters).
// When `probability` > 0 it replaces the skip/fail window: each call fires
// independently with that probability, decided by a counter-based hash of
// (seed, site, call index).
struct FaultPlan {
  int skip = 0;               // calls to let through before failing
  int fail = 1;               // calls that fail; -1 = every call forever
  double probability = 0.0;   // when > 0: seeded per-call coin instead
  StatusCode code = StatusCode::kIoError;
  std::string message;        // optional detail appended to the site name

  // Factories for the common shapes, so call sites read as intent.
  static FaultPlan FailN(int n) {
    FaultPlan p;
    p.fail = n;
    return p;
  }
  static FaultPlan FailForever() { return FailN(-1); }
  static FaultPlan FailAfter(int skip, int n) {
    FaultPlan p;
    p.skip = skip;
    p.fail = n;
    return p;
  }
  static FaultPlan WithProbability(double prob) {
    FaultPlan p;
    p.probability = prob;
    return p;
  }
};

class FaultInjector {
 public:
  // Process-wide instance used by all wired sites.
  static FaultInjector& Global();

  void Arm(const std::string& site, FaultPlan plan);
  void Disarm(const std::string& site);
  // Disarms every site and zeroes all counters and the seed.
  void Reset();

  void set_seed(std::uint64_t seed);

  // Advances the site's call counter and reports whether this call fails.
  // Disarmed sites return false without taking the registry lock.
  bool Fires(const char* site);

  // Fires() wrapped in a Status built from the plan (OK when passing).
  Status Hit(const char* site);

  // Introspection for tests: calls seen / failures fired since arming.
  std::uint64_t CallCount(const std::string& site) const;
  std::uint64_t FireCount(const std::string& site) const;

 private:
  struct SiteState {
    FaultPlan plan;
    bool armed = false;
    std::uint64_t calls = 0;
    std::uint64_t fires = 0;
  };

  FaultInjector() = default;

  std::atomic<int> armed_sites_{0};
  mutable std::mutex mu_;
  std::map<std::string, SiteState> sites_;
  std::uint64_t seed_ = 1;
};

// Call-site helpers: `CAPPLAN_RETURN_NOT_OK(FaultHit("journal.append"))`.
inline Status FaultHit(const char* site) {
  return FaultInjector::Global().Hit(site);
}
inline bool FaultFires(const char* site) {
  return FaultInjector::Global().Fires(site);
}

// RAII arm/disarm for tests; disarms its site on scope exit.
class ScopedFault {
 public:
  ScopedFault(std::string site, FaultPlan plan) : site_(std::move(site)) {
    FaultInjector::Global().Arm(site_, std::move(plan));
  }
  ~ScopedFault() { FaultInjector::Global().Disarm(site_); }
  ScopedFault(const ScopedFault&) = delete;
  ScopedFault& operator=(const ScopedFault&) = delete;

  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

}  // namespace capplan

#endif  // CAPPLAN_COMMON_FAULT_H_
