#ifndef CAPPLAN_COMMON_STATUS_H_
#define CAPPLAN_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace capplan {

// Machine-readable classification of a failure. Mirrors the Arrow/RocksDB
// convention of a small closed enum plus a free-form message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kComputeError,   // numerical failure: non-convergence, singular matrix, ...
  kIoError,
  kInternal,
};

// Returns a stable, human-readable name for `code` ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

// Outcome of an operation that can fail. Cheap to copy in the OK case
// (single enum); carries a message otherwise. The library does not throw:
// every fallible public entry point returns Status or Result<T>.
class Status {
 public:
  // Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ComputeError(std::string msg) {
    return Status(StatusCode::kComputeError, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace capplan

// Propagates a non-OK Status from an expression to the caller.
#define CAPPLAN_RETURN_NOT_OK(expr)                   \
  do {                                                \
    ::capplan::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                        \
  } while (false)

#endif  // CAPPLAN_COMMON_STATUS_H_
