#include "common/fault.h"

namespace capplan {

namespace {

std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t HashSite(const char* site) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a
  for (const char* p = site; *p != '\0'; ++p) {
    h = (h ^ static_cast<std::uint64_t>(*p)) * 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* instance = new FaultInjector();
  return *instance;
}

void FaultInjector::Arm(const std::string& site, FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mu_);
  SiteState& state = sites_[site];
  if (!state.armed) armed_sites_.fetch_add(1, std::memory_order_relaxed);
  state.plan = std::move(plan);
  state.armed = true;
  state.calls = 0;
  state.fires = 0;
}

void FaultInjector::Disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end() && it->second.armed) {
    it->second.armed = false;
    armed_sites_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_sites_.store(0, std::memory_order_relaxed);
  seed_ = 1;
}

void FaultInjector::set_seed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

bool FaultInjector::Fires(const char* site) {
  if (armed_sites_.load(std::memory_order_relaxed) == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it == sites_.end() || !it->second.armed) return false;
  SiteState& state = it->second;
  const std::uint64_t index = state.calls++;
  bool fires = false;
  if (state.plan.probability > 0.0) {
    const std::uint64_t h = Mix64(seed_ ^ HashSite(site) ^ Mix64(index));
    const double u = (static_cast<double>(h >> 11) + 0.5) / 9007199254740992.0;
    fires = u < state.plan.probability;
  } else if (index >= static_cast<std::uint64_t>(state.plan.skip)) {
    fires = state.plan.fail < 0 ||
            index < static_cast<std::uint64_t>(state.plan.skip) +
                        static_cast<std::uint64_t>(state.plan.fail);
  }
  if (fires) ++state.fires;
  return fires;
}

Status FaultInjector::Hit(const char* site) {
  if (!Fires(site)) return Status::OK();
  std::string message = std::string("injected fault at ") + site;
  StatusCode code = StatusCode::kIoError;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it != sites_.end()) {
      code = it->second.plan.code;
      if (!it->second.plan.message.empty()) {
        message += ": " + it->second.plan.message;
      }
    }
  }
  return Status(code, std::move(message));
}

std::uint64_t FaultInjector::CallCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.calls;
}

std::uint64_t FaultInjector::FireCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fires;
}

}  // namespace capplan
