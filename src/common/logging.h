#ifndef CAPPLAN_COMMON_LOGGING_H_
#define CAPPLAN_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace capplan {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (enabled_) stream_ << v;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace capplan

#define CAPPLAN_LOG(level)                                      \
  ::capplan::internal::LogMessage(::capplan::LogLevel::level,   \
                                  __FILE__, __LINE__)

#endif  // CAPPLAN_COMMON_LOGGING_H_
