#include "serve/handlers.h"

#include <chrono>
#include <cmath>
#include <cstdlib>

#include <algorithm>
#include <vector>

#include "common/json_writer.h"
#include "core/capacity.h"
#include "core/report_json.h"
#include "obs/event_log.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "tsa/mstl.h"
#include "tsa/seasonality.h"
#include "tsa/timeseries.h"

namespace capplan::serve {

namespace {

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

HttpResponse ErrorResponse(int status, const char* code,
                           const std::string& message) {
  JsonWriter w(false);
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.Integer("status", status);
  w.String("code", code);
  w.String("message", message);
  w.EndObject();
  w.EndObject();
  return HttpResponse::Json(status, w.Take());
}

// Planner Result errors surface as 422: the request was well-formed HTTP
// but the estate's data cannot answer it (empty forecast, NaN bounds, ...).
HttpResponse UnprocessableResponse(const Status& status) {
  return ErrorResponse(422, StatusCodeToString(status.code()),
                       status.message());
}

// Strict double parse for query parameters; rejects trailing junk and
// non-finite spellings ("nan", "inf") so they cannot smuggle past the
// planner's own finiteness checks as literal NaN thresholds.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseLong(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

// Canonical cache key: the query map is sorted and percent-decoded, so two
// spellings of the same query collapse to one entry.
std::string CacheKey(const HttpRequest& request) {
  std::string key = request.path;
  char sep = '?';
  for (const auto& [k, v] : request.query) {
    key += sep;
    key += k;
    key += '=';
    key += v;
    sep = '&';
  }
  return key;
}

}  // namespace

EstateQueryHandler::EstateQueryHandler(
    const ViewChannel* channel, std::shared_ptr<obs::MetricsRegistry> registry,
    Options options)
    : channel_(channel),
      registry_(std::move(registry)),
      options_(options),
      cache_(options.cache, registry_) {
  if (registry_ != nullptr) {
    obs::MetricsRegistry& reg = *registry_;
    const auto endpoint = [&reg](const char* name) {
      EndpointMetrics m;
      m.requests = reg.GetCounter("capplan_serve_endpoint_requests_total",
                                  {{"endpoint", name}},
                                  "Requests routed per endpoint");
      m.latency = reg.GetHistogram("capplan_serve_handler_latency_ms", {},
                                   {{"endpoint", name}},
                                   "Handler render latency per endpoint");
      return m;
    };
    m_forecast_ = endpoint("forecast");
    m_breach_ = endpoint("breach");
    m_headroom_ = endpoint("headroom");
    m_decompose_ = endpoint("decompose");
    m_estate_ = endpoint("estate");
    m_health_ = endpoint("health");
    m_slo_ = endpoint("slo");
    m_debug_events_ = endpoint("debug_events");
    m_debug_slow_ = endpoint("debug_slow");
    m_errors_ = reg.GetCounter("capplan_serve_handler_errors_total", {},
                               "Responses with status >= 400");
    m_trace_dropped_ =
        reg.GetCounter("capplan_obs_trace_dropped_total", {},
                       "Trace ring events overwritten because a ring was full");
    m_events_dropped_ = reg.GetCounter(
        "capplan_obs_events_dropped_total", {},
        "Wide events overwritten because an event-log ring was full");
  }
}

bool EstateQueryHandler::CacheExempt(const std::string& path) {
  return path == "/metrics" || path == "/v1/slo" ||
         path.rfind("/v1/debug/", 0) == 0;
}

HttpResponse EstateQueryHandler::Handle(const HttpRequest& request) {
  const std::shared_ptr<const EstateView> view = channel_->Get();
  HttpResponse response = Dispatch(request, view);
  if (response.status >= 400) m_errors_.Inc();
  return response;
}

HttpResponse EstateQueryHandler::Dispatch(
    const HttpRequest& request,
    const std::shared_ptr<const EstateView>& view) {
  if (request.method != "GET" && request.method != "HEAD") {
    HttpResponse resp = ErrorResponse(405, "MethodNotAllowed",
                                      "only GET and HEAD are supported");
    resp.headers.emplace_back("Allow", "GET, HEAD");
    return resp;
  }
  if (request.path == "/healthz") {
    if (view == nullptr) return ServiceUnavailable("no view published yet");
    // Liveness ("is the daemon up and publishing?") answers 200 the moment
    // a view exists. The readiness variant (?deep=1) additionally consults
    // the per-shard health-state machines carried on the view: any critical
    // shard fails the probe so load balancers stop routing to this replica,
    // while degraded shards stay in rotation.
    const auto deep = request.query.find("deep");
    if (deep != request.query.end() && deep->second == "1") {
      for (const ShardHealthStatus& sh : view->shard_health) {
        if (sh.state >= 2) {
          return ServiceUnavailable("shard " + std::to_string(sh.shard) +
                                    " critical: " + sh.reason);
        }
      }
    }
    return HttpResponse::Text(200, "ok\n");
  }
  if (request.path == "/metrics") return HandleMetrics(request);

  const bool is_v1 = request.path.rfind("/v1/", 0) == 0;
  if (!is_v1) {
    return ErrorResponse(404, "NotFound", "no such endpoint: " + request.path);
  }

  const auto start = std::chrono::steady_clock::now();
  obs::TraceSpan span("serve.request", "serve");
  HttpResponse response;
  EndpointMetrics* metrics = nullptr;

  // The debug/SLO surface reads live recorder state and needs no view, so
  // it routes before the view gate and never consults the answer cache.
  if (request.path == "/v1/slo") {
    response = HandleSlo();
    metrics = &m_slo_;
  } else if (request.path == "/v1/debug/events") {
    response = HandleDebugEvents(request);
    metrics = &m_debug_events_;
  } else if (request.path == "/v1/debug/slow") {
    response = HandleDebugSlow(request);
    metrics = &m_debug_slow_;
  }

  std::string cache_key;
  if (metrics == nullptr) {
    if (view == nullptr) return ServiceUnavailable("no view published yet");

    // Cache probe: every cacheable /v1/* answer is deterministic given
    // (view version, canonical query), so a hit skips rendering entirely.
    cache_key = CacheKey(request);
    if (!CacheExempt(request.path)) {
      if (auto cached = cache_.Get(cache_key, view->version, NowSeconds())) {
        return *std::move(cached);
      }
    }

    if (request.path == "/v1/estate") {
      response = HandleEstate(*view);
      metrics = &m_estate_;
    } else if (request.path == "/v1/health") {
      response = HandleHealth(*view);
      metrics = &m_health_;
    } else if (request.path == "/v1/forecast") {
      response = HandleForecast(request, *view);
      metrics = &m_forecast_;
    } else if (request.path == "/v1/breach") {
      response = HandleBreach(request, *view);
      metrics = &m_breach_;
    } else if (request.path == "/v1/headroom") {
      response = HandleHeadroom(request, *view);
      metrics = &m_headroom_;
    } else if (request.path == "/v1/decompose") {
      response = HandleDecompose(request, *view);
      metrics = &m_decompose_;
    } else {
      return ErrorResponse(404, "NotFound",
                           "no such endpoint: " + request.path);
    }
  }

  span.End();
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  // One wide event per rendered request; its id plus the request span id
  // become the latency histogram's exemplar for the bucket this request
  // landed in, so a p99 spike links straight back to the evidence.
  obs::EventLog& events = obs::EventLog::Instance();
  std::uint64_t event_id = 0;
  if (events.enabled()) {
    obs::WideEvent ev;
    ev.kind = obs::WideEventKind::kHttpRequest;
    ev.set_key(request.path);
    ev.span_id = span.id();
    ev.outcome = response.status < 400 ? "ok" : "error";
    ev.dur_ns = static_cast<std::uint64_t>(elapsed_ms * 1e6);
    const std::uint64_t now_ns = events.NowNs();
    ev.start_ns = now_ns >= ev.dur_ns ? now_ns - ev.dur_ns : 0;
    ev.AddAttr("status", static_cast<double>(response.status));
    event_id = events.Emit(ev);
  }
  metrics->requests.Inc();
  metrics->latency.ObserveWithExemplar(elapsed_ms, span.id(), event_id);
  if (options_.slos != nullptr) {
    if (obs::SloTracker* slo = options_.slos->Find("serve_latency")) {
      slo->Record(elapsed_ms <= options_.latency_slo_threshold_ms,
                  NowSeconds());
    }
  }

  if (response.status == 200 && !cache_key.empty() &&
      !CacheExempt(request.path)) {
    cache_.Put(cache_key, view->version, NowSeconds(), response);
  }
  return response;
}

HttpResponse EstateQueryHandler::ServiceUnavailable(
    const std::string& message) const {
  HttpResponse resp = ErrorResponse(503, "Unavailable", message);
  resp.headers.emplace_back("Retry-After",
                            std::to_string(options_.retry_after_seconds));
  return resp;
}

const InstanceStatus* EstateQueryHandler::ResolveInstance(
    const HttpRequest& request, const EstateView& view, bool require_forecast,
    HttpResponse* error) {
  const auto instance = request.query.find("instance");
  const auto metric = request.query.find("metric");
  if (instance == request.query.end() || metric == request.query.end() ||
      instance->second.empty() || metric->second.empty()) {
    *error = ErrorResponse(
        400, "InvalidArgument",
        "required query parameters: instance=<name>&metric=<name>");
    return nullptr;
  }
  const std::string key = instance->second + "/" + metric->second;
  const InstanceStatus* status = view.Find(key);
  if (status == nullptr) {
    *error = ErrorResponse(404, "NotFound", "no such watch: " + key);
    return nullptr;
  }
  if (require_forecast && !status->has_forecast) {
    *error = ServiceUnavailable("no forecast cached yet for " + key);
    return nullptr;
  }
  return status;
}

HttpResponse EstateQueryHandler::HandleEstate(const EstateView& view) {
  obs::TraceSpan span("serve.estate", "serve");
  JsonWriter w(false);
  w.BeginObject();
  w.Integer("version", static_cast<long long>(view.version));
  w.Integer("now_epoch", view.now_epoch);
  w.Integer("tick", static_cast<long long>(view.tick));
  w.BeginArray("instances");
  for (const InstanceStatus& s : view.instances) {
    w.BeginObject();
    w.String("key", s.key);
    w.String("instance", s.instance);
    w.String("metric", s.metric);
    w.Number("threshold", s.threshold);
    w.Bool("has_forecast", s.has_forecast);
    w.String("spec", s.spec);
    w.String("degradation", core::DegradationLevelName(s.degradation));
    w.Number("quality_score", s.quality_score);
    w.Bool("trainable", s.trainable);
    w.String("quality_verdict", s.quality_verdict);
    w.Bool("alert_active", s.alert_active);
    w.Bool("alert_upper_only", s.alert_upper_only);
    w.Integer("predicted_breach_epoch", s.predicted_breach_epoch);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleHealth(const EstateView& view) {
  obs::TraceSpan span("serve.health", "serve");
  // Deep introspection, not a probe: always 200 with the full picture (the
  // 503-on-critical behavior belongs to /healthz?deep=1), so a dashboard
  // can still read *why* an estate is unhealthy.
  const char* kStateNames[] = {"healthy", "degraded", "critical"};
  JsonWriter w(false);
  w.BeginObject();
  w.Integer("version", static_cast<long long>(view.version));
  w.Integer("now_epoch", view.now_epoch);
  const int overall =
      view.overall_health >= 0 && view.overall_health <= 2
          ? view.overall_health
          : 2;
  w.String("overall", kStateNames[overall]);
  w.BeginArray("shards");
  for (const ShardHealthStatus& sh : view.shard_health) {
    w.BeginObject();
    w.Integer("shard", static_cast<long long>(sh.shard));
    w.String("state", sh.state_name);
    w.String("reason", sh.reason);
    w.Integer("refit_queue_depth",
              static_cast<long long>(sh.refit_queue_depth));
    w.Integer("quarantined", static_cast<long long>(sh.quarantined));
    w.Integer("tick_overruns", static_cast<long long>(sh.tick_overruns));
    w.Integer("rollbacks", static_cast<long long>(sh.rollbacks));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleForecast(const HttpRequest& request,
                                                const EstateView& view) {
  obs::TraceSpan span("serve.forecast", "serve");
  HttpResponse error;
  const InstanceStatus* s =
      ResolveInstance(request, view, /*require_forecast=*/true, &error);
  if (s == nullptr) return error;

  std::size_t horizon = s->forecast.mean.size();
  const auto h = request.query.find("horizon");
  if (h != request.query.end()) {
    long parsed = 0;
    if (!ParseLong(h->second, &parsed) || parsed < 1) {
      return ErrorResponse(400, "InvalidArgument",
                           "horizon must be a positive integer");
    }
    horizon = std::min(horizon, static_cast<std::size_t>(parsed));
  }
  models::Forecast fc = s->forecast;
  fc.mean.resize(std::min(fc.mean.size(), horizon));
  fc.lower.resize(std::min(fc.lower.size(), horizon));
  fc.upper.resize(std::min(fc.upper.size(), horizon));

  JsonWriter w(false);
  w.BeginObject();
  w.String("key", s->key);
  w.Integer("view_version", static_cast<long long>(view.version));
  w.Integer("start_epoch", s->forecast_start_epoch);
  w.Integer("step_seconds", s->forecast_step_seconds);
  w.String("spec", s->spec);
  w.String("degradation", core::DegradationLevelName(s->degradation));
  w.Key("forecast");
  w.BeginObject();
  core::WriteForecastFields(&w, fc);
  w.EndObject();
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleBreach(const HttpRequest& request,
                                              const EstateView& view) {
  obs::TraceSpan span("serve.breach", "serve");
  HttpResponse error;
  const InstanceStatus* s =
      ResolveInstance(request, view, /*require_forecast=*/true, &error);
  if (s == nullptr) return error;

  double threshold = s->threshold;
  const auto t = request.query.find("threshold");
  if (t != request.query.end() && !ParseDouble(t->second, &threshold)) {
    return ErrorResponse(400, "InvalidArgument",
                         "threshold must be a finite number");
  }
  auto breach = core::CapacityPlanner::PredictBreach(
      s->forecast, threshold, s->forecast_start_epoch,
      s->forecast_step_seconds);
  if (!breach.ok()) return UnprocessableResponse(breach.status());

  JsonWriter w(false);
  w.BeginObject();
  w.String("key", s->key);
  w.Integer("view_version", static_cast<long long>(view.version));
  w.Number("threshold", threshold);
  core::WriteBreachFields(&w, *breach);
  w.Bool("alert_active", s->alert_active);
  w.Bool("alert_upper_only", s->alert_upper_only);
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleHeadroom(const HttpRequest& request,
                                                const EstateView& view) {
  obs::TraceSpan span("serve.headroom", "serve");
  HttpResponse error;
  const InstanceStatus* s =
      ResolveInstance(request, view, /*require_forecast=*/true, &error);
  if (s == nullptr) return error;

  const auto c = request.query.find("capacity");
  double capacity = 0.0;
  if (c == request.query.end() || !ParseDouble(c->second, &capacity)) {
    return ErrorResponse(400, "InvalidArgument",
                         "required query parameter: capacity=<number>");
  }
  if (s->recent.empty()) {
    return ServiceUnavailable("no recent observations for " + s->key);
  }
  const tsa::TimeSeries recent(s->key, s->recent_start_epoch,
                               tsa::Frequency::kHourly, s->recent);
  auto report =
      core::CapacityPlanner::Headroom(recent, s->forecast, capacity);
  if (!report.ok()) return UnprocessableResponse(report.status());

  JsonWriter w(false);
  w.BeginObject();
  w.String("key", s->key);
  w.Integer("view_version", static_cast<long long>(view.version));
  w.Number("capacity", capacity);
  core::WriteHeadroomFields(&w, *report);
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleDecompose(const HttpRequest& request,
                                                 const EstateView& view) {
  obs::TraceSpan span("serve.decompose", "serve");
  const auto key_it = request.query.find("key");
  if (key_it == request.query.end() || key_it->second.empty()) {
    return ErrorResponse(400, "InvalidArgument",
                         "required query parameter: key=<instance>/<metric>");
  }
  double band = 3.0;
  const auto band_it = request.query.find("band");
  if (band_it != request.query.end() &&
      (!ParseDouble(band_it->second, &band) || band <= 0.0)) {
    return ErrorResponse(400, "InvalidArgument",
                         "band must be a positive number");
  }
  const std::string& key = key_it->second;
  const InstanceStatus* s = view.Find(key);
  if (s == nullptr) {
    return ErrorResponse(404, "NotFound", "no such watch: " + key);
  }
  if (s->history.empty()) {
    return UnprocessableResponse(Status::FailedPrecondition(
        "no observed history published yet for " + key));
  }

  // Prefer the periods the selector routed at fit time; fall back to live
  // detection on the published history when no fit has landed yet (or the
  // router degraded to the single-season path).
  std::vector<std::size_t> periods;
  const char* periods_source = "selector";
  for (double p : s->periods) {
    if (p >= 2.0) periods.push_back(static_cast<std::size_t>(p));
  }
  if (periods.empty()) {
    periods_source = "detected";
    auto detected = tsa::DetectSeasonality(s->history);
    if (detected.ok()) {
      for (const tsa::DetectedSeason& season : *detected) {
        periods.push_back(season.period);
      }
    }
  }
  if (periods.empty()) {
    return UnprocessableResponse(Status::FailedPrecondition(
        "no seasonal period detected for " + key +
        "; decomposition needs at least one season"));
  }

  auto decomp = tsa::MstlDecompose(s->history, periods);
  if (!decomp.ok()) return UnprocessableResponse(decomp.status());

  const double sigma = tsa::RobustSigma(decomp->remainder);
  const std::vector<std::size_t> anomalies =
      tsa::FlagAnomalies(decomp->remainder, band);

  JsonWriter w(false);
  w.BeginObject();
  w.String("key", s->key);
  w.Integer("view_version", static_cast<long long>(view.version));
  w.Integer("start_epoch", s->history_start_epoch);
  w.Integer("step_seconds", 3600);
  w.Integer("n", static_cast<long long>(s->history.size()));
  w.String("periods_source", periods_source);
  w.BeginArray("periods");
  for (std::size_t p : decomp->periods) {
    w.ArrayNumber(static_cast<double>(p));
  }
  w.EndArray();
  w.BeginArray("trend");
  for (double v : decomp->trend) w.ArrayNumber(v);
  w.EndArray();
  // One seasonal component per period, same order as "periods"; the
  // components satisfy x[t] = trend[t] + sum_i seasonal[i][t] + residual[t]
  // exactly, so clients can reconstruct the input from this payload.
  w.BeginArray("seasonal");
  for (std::size_t i = 0; i < decomp->seasonal.size(); ++i) {
    w.BeginObject();
    w.Integer("period", static_cast<long long>(decomp->periods[i]));
    w.BeginArray("values");
    for (double v : decomp->seasonal[i]) w.ArrayNumber(v);
    w.EndArray();
    w.EndObject();
  }
  w.EndArray();
  w.BeginArray("residual");
  for (double v : decomp->remainder) w.ArrayNumber(v);
  w.EndArray();
  w.Number("robust_sigma", sigma);
  w.Number("band", band);
  w.BeginArray("anomalies");
  for (std::size_t idx : anomalies) {
    w.ArrayNumber(static_cast<double>(idx));
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleMetrics(const HttpRequest& request) {
  if (registry_ == nullptr) {
    return ErrorResponse(404, "NotFound", "metrics registry not wired");
  }
  // Pull-model metrics are refreshed at the scrape edge: ring drop totals
  // and SLO burn gauges are computed now so the exposition is current.
  m_trace_dropped_ = obs::Tracer::Instance().total_dropped();
  m_events_dropped_ = obs::EventLog::Instance().total_dropped();
  if (options_.slos != nullptr) {
    obs::ExportSloMetrics(*options_.slos, registry_.get(), NowSeconds());
  }
  // Content negotiation: the 0.0.4 text grammar cannot carry exemplars (a
  // vanilla Prometheus scraper errors on the `#` token and fails the whole
  // scrape), so exemplars are served only to scrapers that ask for
  // OpenMetrics via Accept.
  const std::string* accept = request.FindHeader("accept");
  const bool openmetrics =
      accept != nullptr &&
      accept->find("application/openmetrics-text") != std::string::npos;
  HttpResponse resp;
  resp.status = 200;
  if (openmetrics) {
    resp.content_type = "application/openmetrics-text; version=1.0.0; charset=utf-8";
    resp.body = obs::ToPrometheusText(registry_->Collect(),
                                      obs::ExpositionFormat::kOpenMetrics);
  } else {
    resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
    resp.body = obs::ToPrometheusText(registry_->Collect());
  }
  return resp;
}

HttpResponse EstateQueryHandler::HandleSlo() {
  if (options_.slos == nullptr) {
    return ErrorResponse(404, "NotFound", "no SLO trackers wired");
  }
  const double now = NowSeconds();
  JsonWriter w(false);
  w.BeginObject();
  w.BeginArray("slos");
  for (const obs::SloSet::Entry& e : options_.slos->Snapshot(now)) {
    w.BeginObject();
    w.String("name", e.name);
    w.Number("objective", e.options.objective);
    w.Number("fast_window_seconds", e.options.fast_window_seconds);
    w.Number("slow_window_seconds", e.options.slow_window_seconds);
    w.Number("fast_burn", e.burn.fast_burn);
    w.Number("slow_burn", e.burn.slow_burn);
    w.Number("fast_bad_ratio", e.burn.fast_bad_ratio);
    w.Number("slow_bad_ratio", e.burn.slow_bad_ratio);
    w.Integer("fast_events", static_cast<long long>(e.burn.fast_events));
    w.Integer("slow_events", static_cast<long long>(e.burn.slow_events));
    w.Integer("events", static_cast<long long>(e.burn.total_events));
    w.Integer("bad_events", static_cast<long long>(e.burn.bad_events));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

namespace {

// Parsed ?key=&shard=&kind=&outcome=&min_duration_ms=&limit= filters for
// the /v1/debug surface. `error` is filled with the uniform 400 response
// when a parameter does not parse.
struct EventFilter {
  std::string key;
  long shard = -1;  // -1 = any
  bool has_kind = false;
  obs::WideEventKind kind = obs::WideEventKind::kHttpRequest;
  std::string outcome;
  double min_duration_ms = 0.0;
  long limit = 100;
};

bool ParseEventFilter(const HttpRequest& request, long default_limit,
                      EventFilter* out, HttpResponse* error) {
  out->limit = default_limit;
  for (const auto& [k, v] : request.query) {
    if (k == "key") {
      out->key = v;
    } else if (k == "shard") {
      if (!ParseLong(v, &out->shard) || out->shard < 0) {
        *error = ErrorResponse(400, "InvalidArgument",
                               "shard must be a non-negative integer");
        return false;
      }
    } else if (k == "kind") {
      if (!obs::WideEventKindFromName(v, &out->kind)) {
        *error = ErrorResponse(400, "InvalidArgument",
                               "unknown event kind: " + v);
        return false;
      }
      out->has_kind = true;
    } else if (k == "outcome") {
      out->outcome = v;
    } else if (k == "min_duration_ms") {
      if (!ParseDouble(v, &out->min_duration_ms) ||
          out->min_duration_ms < 0.0) {
        *error = ErrorResponse(400, "InvalidArgument",
                               "min_duration_ms must be a non-negative number");
        return false;
      }
    } else if (k == "limit") {
      if (!ParseLong(v, &out->limit) || out->limit < 1 || out->limit > 1000) {
        *error = ErrorResponse(400, "InvalidArgument",
                               "limit must be an integer in [1, 1000]");
        return false;
      }
    } else {
      *error = ErrorResponse(400, "InvalidArgument",
                             "unknown query parameter: " + k);
      return false;
    }
  }
  return true;
}

bool MatchesFilter(const obs::WideEvent& e, const EventFilter& f) {
  if (!f.key.empty() && f.key != e.key) return false;
  if (f.shard >= 0 && e.shard != static_cast<std::int32_t>(f.shard)) {
    return false;
  }
  if (f.has_kind && e.kind != f.kind) return false;
  if (!f.outcome.empty() && f.outcome != e.outcome) return false;
  if (static_cast<double>(e.dur_ns) / 1e6 < f.min_duration_ms) return false;
  return true;
}

void WriteWideEvent(JsonWriter* w, const obs::WideEvent& e) {
  w->BeginObject();
  w->Integer("id", static_cast<long long>(e.id));
  w->String("kind", obs::WideEventKindName(e.kind));
  w->String("key", e.key);
  w->Integer("shard", e.shard);
  w->Integer("span_id", static_cast<long long>(e.span_id));
  w->Integer("journal_seq", static_cast<long long>(e.journal_seq));
  w->Integer("start_ns", static_cast<long long>(e.start_ns));
  w->Number("duration_ms", static_cast<double>(e.dur_ns) / 1e6);
  w->String("outcome", e.outcome);
  w->Integer("tid", static_cast<long long>(e.tid));
  w->Key("attrs");
  w->BeginObject();
  for (std::uint8_t i = 0; i < e.n_attrs; ++i) {
    w->Number(e.attrs[i].name, e.attrs[i].value);
  }
  w->EndObject();
  w->EndObject();
}

HttpResponse RenderEvents(const std::vector<obs::WideEvent>& selected,
                          std::size_t buffered) {
  const obs::EventLog& log = obs::EventLog::Instance();
  JsonWriter w(false);
  w.BeginObject();
  w.Bool("enabled", log.enabled());
  w.Integer("buffered", static_cast<long long>(buffered));
  w.Integer("dropped", static_cast<long long>(log.total_dropped()));
  w.Integer("matched", static_cast<long long>(selected.size()));
  w.BeginArray("events");
  for (const obs::WideEvent& e : selected) WriteWideEvent(&w, e);
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

}  // namespace

HttpResponse EstateQueryHandler::HandleDebugEvents(
    const HttpRequest& request) {
  EventFilter filter;
  HttpResponse error;
  if (!ParseEventFilter(request, /*default_limit=*/100, &filter, &error)) {
    return error;
  }
  const std::vector<obs::WideEvent> all =
      obs::EventLog::Instance().Snapshot();
  // Newest first: the snapshot is oldest-first, so walk it backwards.
  std::vector<obs::WideEvent> selected;
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    if (!MatchesFilter(*it, filter)) continue;
    selected.push_back(*it);
    if (selected.size() >= static_cast<std::size_t>(filter.limit)) break;
  }
  return RenderEvents(selected, all.size());
}

HttpResponse EstateQueryHandler::HandleDebugSlow(const HttpRequest& request) {
  EventFilter filter;
  HttpResponse error;
  if (!ParseEventFilter(request, /*default_limit=*/20, &filter, &error)) {
    return error;
  }
  std::vector<obs::WideEvent> all = obs::EventLog::Instance().Snapshot();
  const std::size_t buffered = all.size();
  std::erase_if(all, [&filter](const obs::WideEvent& e) {
    return !MatchesFilter(e, filter);
  });
  const std::size_t keep =
      std::min(all.size(), static_cast<std::size_t>(filter.limit));
  std::partial_sort(all.begin(), all.begin() + keep, all.end(),
                    [](const obs::WideEvent& a, const obs::WideEvent& b) {
                      return a.dur_ns > b.dur_ns;
                    });
  all.resize(keep);
  return RenderEvents(all, buffered);
}

}  // namespace capplan::serve
