#include "serve/handlers.h"

#include <chrono>
#include <cmath>
#include <cstdlib>

#include "common/json_writer.h"
#include "core/capacity.h"
#include "core/report_json.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "tsa/timeseries.h"

namespace capplan::serve {

namespace {

double NowSeconds() {
  return std::chrono::duration_cast<std::chrono::duration<double>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

HttpResponse ErrorResponse(int status, const char* code,
                           const std::string& message) {
  JsonWriter w(false);
  w.BeginObject();
  w.Key("error");
  w.BeginObject();
  w.Integer("status", status);
  w.String("code", code);
  w.String("message", message);
  w.EndObject();
  w.EndObject();
  return HttpResponse::Json(status, w.Take());
}

// Planner Result errors surface as 422: the request was well-formed HTTP
// but the estate's data cannot answer it (empty forecast, NaN bounds, ...).
HttpResponse UnprocessableResponse(const Status& status) {
  return ErrorResponse(422, StatusCodeToString(status.code()),
                       status.message());
}

// Strict double parse for query parameters; rejects trailing junk and
// non-finite spellings ("nan", "inf") so they cannot smuggle past the
// planner's own finiteness checks as literal NaN thresholds.
bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseLong(const std::string& s, long* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

// Canonical cache key: the query map is sorted and percent-decoded, so two
// spellings of the same query collapse to one entry.
std::string CacheKey(const HttpRequest& request) {
  std::string key = request.path;
  char sep = '?';
  for (const auto& [k, v] : request.query) {
    key += sep;
    key += k;
    key += '=';
    key += v;
    sep = '&';
  }
  return key;
}

}  // namespace

EstateQueryHandler::EstateQueryHandler(
    const ViewChannel* channel, std::shared_ptr<obs::MetricsRegistry> registry,
    Options options)
    : channel_(channel),
      registry_(std::move(registry)),
      options_(options),
      cache_(options.cache, registry_) {
  if (registry_ != nullptr) {
    obs::MetricsRegistry& reg = *registry_;
    const auto endpoint = [&reg](const char* name) {
      EndpointMetrics m;
      m.requests = reg.GetCounter("capplan_serve_endpoint_requests_total",
                                  {{"endpoint", name}},
                                  "Requests routed per endpoint");
      m.latency = reg.GetHistogram("capplan_serve_handler_latency_ms", {},
                                   {{"endpoint", name}},
                                   "Handler render latency per endpoint");
      return m;
    };
    m_forecast_ = endpoint("forecast");
    m_breach_ = endpoint("breach");
    m_headroom_ = endpoint("headroom");
    m_estate_ = endpoint("estate");
    m_health_ = endpoint("health");
    m_errors_ = reg.GetCounter("capplan_serve_handler_errors_total", {},
                               "Responses with status >= 400");
  }
}

HttpResponse EstateQueryHandler::Handle(const HttpRequest& request) {
  const std::shared_ptr<const EstateView> view = channel_->Get();
  HttpResponse response = Dispatch(request, view);
  if (response.status >= 400) m_errors_.Inc();
  return response;
}

HttpResponse EstateQueryHandler::Dispatch(
    const HttpRequest& request,
    const std::shared_ptr<const EstateView>& view) {
  if (request.method != "GET" && request.method != "HEAD") {
    HttpResponse resp = ErrorResponse(405, "MethodNotAllowed",
                                      "only GET and HEAD are supported");
    resp.headers.emplace_back("Allow", "GET, HEAD");
    return resp;
  }
  if (request.path == "/healthz") {
    if (view == nullptr) return ServiceUnavailable("no view published yet");
    // Liveness ("is the daemon up and publishing?") answers 200 the moment
    // a view exists. The readiness variant (?deep=1) additionally consults
    // the per-shard health-state machines carried on the view: any critical
    // shard fails the probe so load balancers stop routing to this replica,
    // while degraded shards stay in rotation.
    const auto deep = request.query.find("deep");
    if (deep != request.query.end() && deep->second == "1") {
      for (const ShardHealthStatus& sh : view->shard_health) {
        if (sh.state >= 2) {
          return ServiceUnavailable("shard " + std::to_string(sh.shard) +
                                    " critical: " + sh.reason);
        }
      }
    }
    return HttpResponse::Text(200, "ok\n");
  }
  if (request.path == "/metrics") return HandleMetrics();

  const bool is_v1 = request.path.rfind("/v1/", 0) == 0;
  if (!is_v1) {
    return ErrorResponse(404, "NotFound", "no such endpoint: " + request.path);
  }
  if (view == nullptr) return ServiceUnavailable("no view published yet");

  // Cache probe: every /v1/* answer is deterministic given (view version,
  // canonical query), so a hit skips rendering entirely.
  const std::string cache_key = CacheKey(request);
  if (auto cached = cache_.Get(cache_key, view->version, NowSeconds())) {
    return *std::move(cached);
  }

  const auto start = std::chrono::steady_clock::now();
  HttpResponse response;
  EndpointMetrics* metrics = nullptr;
  if (request.path == "/v1/estate") {
    response = HandleEstate(*view);
    metrics = &m_estate_;
  } else if (request.path == "/v1/health") {
    response = HandleHealth(*view);
    metrics = &m_health_;
  } else if (request.path == "/v1/forecast") {
    response = HandleForecast(request, *view);
    metrics = &m_forecast_;
  } else if (request.path == "/v1/breach") {
    response = HandleBreach(request, *view);
    metrics = &m_breach_;
  } else if (request.path == "/v1/headroom") {
    response = HandleHeadroom(request, *view);
    metrics = &m_headroom_;
  } else {
    return ErrorResponse(404, "NotFound", "no such endpoint: " + request.path);
  }
  if (metrics != nullptr) {
    metrics->requests.Inc();
    metrics->latency.Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - start)
            .count());
  }
  if (response.status == 200) {
    cache_.Put(cache_key, view->version, NowSeconds(), response);
  }
  return response;
}

HttpResponse EstateQueryHandler::ServiceUnavailable(
    const std::string& message) const {
  HttpResponse resp = ErrorResponse(503, "Unavailable", message);
  resp.headers.emplace_back("Retry-After",
                            std::to_string(options_.retry_after_seconds));
  return resp;
}

const InstanceStatus* EstateQueryHandler::ResolveInstance(
    const HttpRequest& request, const EstateView& view, bool require_forecast,
    HttpResponse* error) {
  const auto instance = request.query.find("instance");
  const auto metric = request.query.find("metric");
  if (instance == request.query.end() || metric == request.query.end() ||
      instance->second.empty() || metric->second.empty()) {
    *error = ErrorResponse(
        400, "InvalidArgument",
        "required query parameters: instance=<name>&metric=<name>");
    return nullptr;
  }
  const std::string key = instance->second + "/" + metric->second;
  const InstanceStatus* status = view.Find(key);
  if (status == nullptr) {
    *error = ErrorResponse(404, "NotFound", "no such watch: " + key);
    return nullptr;
  }
  if (require_forecast && !status->has_forecast) {
    *error = ServiceUnavailable("no forecast cached yet for " + key);
    return nullptr;
  }
  return status;
}

HttpResponse EstateQueryHandler::HandleEstate(const EstateView& view) {
  obs::TraceSpan span("serve.estate", "serve");
  JsonWriter w(false);
  w.BeginObject();
  w.Integer("version", static_cast<long long>(view.version));
  w.Integer("now_epoch", view.now_epoch);
  w.Integer("tick", static_cast<long long>(view.tick));
  w.BeginArray("instances");
  for (const InstanceStatus& s : view.instances) {
    w.BeginObject();
    w.String("key", s.key);
    w.String("instance", s.instance);
    w.String("metric", s.metric);
    w.Number("threshold", s.threshold);
    w.Bool("has_forecast", s.has_forecast);
    w.String("spec", s.spec);
    w.String("degradation", core::DegradationLevelName(s.degradation));
    w.Number("quality_score", s.quality_score);
    w.Bool("trainable", s.trainable);
    w.String("quality_verdict", s.quality_verdict);
    w.Bool("alert_active", s.alert_active);
    w.Bool("alert_upper_only", s.alert_upper_only);
    w.Integer("predicted_breach_epoch", s.predicted_breach_epoch);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleHealth(const EstateView& view) {
  obs::TraceSpan span("serve.health", "serve");
  // Deep introspection, not a probe: always 200 with the full picture (the
  // 503-on-critical behavior belongs to /healthz?deep=1), so a dashboard
  // can still read *why* an estate is unhealthy.
  const char* kStateNames[] = {"healthy", "degraded", "critical"};
  JsonWriter w(false);
  w.BeginObject();
  w.Integer("version", static_cast<long long>(view.version));
  w.Integer("now_epoch", view.now_epoch);
  const int overall =
      view.overall_health >= 0 && view.overall_health <= 2
          ? view.overall_health
          : 2;
  w.String("overall", kStateNames[overall]);
  w.BeginArray("shards");
  for (const ShardHealthStatus& sh : view.shard_health) {
    w.BeginObject();
    w.Integer("shard", static_cast<long long>(sh.shard));
    w.String("state", sh.state_name);
    w.String("reason", sh.reason);
    w.Integer("refit_queue_depth",
              static_cast<long long>(sh.refit_queue_depth));
    w.Integer("quarantined", static_cast<long long>(sh.quarantined));
    w.Integer("tick_overruns", static_cast<long long>(sh.tick_overruns));
    w.Integer("rollbacks", static_cast<long long>(sh.rollbacks));
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleForecast(const HttpRequest& request,
                                                const EstateView& view) {
  obs::TraceSpan span("serve.forecast", "serve");
  HttpResponse error;
  const InstanceStatus* s =
      ResolveInstance(request, view, /*require_forecast=*/true, &error);
  if (s == nullptr) return error;

  std::size_t horizon = s->forecast.mean.size();
  const auto h = request.query.find("horizon");
  if (h != request.query.end()) {
    long parsed = 0;
    if (!ParseLong(h->second, &parsed) || parsed < 1) {
      return ErrorResponse(400, "InvalidArgument",
                           "horizon must be a positive integer");
    }
    horizon = std::min(horizon, static_cast<std::size_t>(parsed));
  }
  models::Forecast fc = s->forecast;
  fc.mean.resize(std::min(fc.mean.size(), horizon));
  fc.lower.resize(std::min(fc.lower.size(), horizon));
  fc.upper.resize(std::min(fc.upper.size(), horizon));

  JsonWriter w(false);
  w.BeginObject();
  w.String("key", s->key);
  w.Integer("view_version", static_cast<long long>(view.version));
  w.Integer("start_epoch", s->forecast_start_epoch);
  w.Integer("step_seconds", s->forecast_step_seconds);
  w.String("spec", s->spec);
  w.String("degradation", core::DegradationLevelName(s->degradation));
  w.Key("forecast");
  w.BeginObject();
  core::WriteForecastFields(&w, fc);
  w.EndObject();
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleBreach(const HttpRequest& request,
                                              const EstateView& view) {
  obs::TraceSpan span("serve.breach", "serve");
  HttpResponse error;
  const InstanceStatus* s =
      ResolveInstance(request, view, /*require_forecast=*/true, &error);
  if (s == nullptr) return error;

  double threshold = s->threshold;
  const auto t = request.query.find("threshold");
  if (t != request.query.end() && !ParseDouble(t->second, &threshold)) {
    return ErrorResponse(400, "InvalidArgument",
                         "threshold must be a finite number");
  }
  auto breach = core::CapacityPlanner::PredictBreach(
      s->forecast, threshold, s->forecast_start_epoch,
      s->forecast_step_seconds);
  if (!breach.ok()) return UnprocessableResponse(breach.status());

  JsonWriter w(false);
  w.BeginObject();
  w.String("key", s->key);
  w.Integer("view_version", static_cast<long long>(view.version));
  w.Number("threshold", threshold);
  core::WriteBreachFields(&w, *breach);
  w.Bool("alert_active", s->alert_active);
  w.Bool("alert_upper_only", s->alert_upper_only);
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleHeadroom(const HttpRequest& request,
                                                const EstateView& view) {
  obs::TraceSpan span("serve.headroom", "serve");
  HttpResponse error;
  const InstanceStatus* s =
      ResolveInstance(request, view, /*require_forecast=*/true, &error);
  if (s == nullptr) return error;

  const auto c = request.query.find("capacity");
  double capacity = 0.0;
  if (c == request.query.end() || !ParseDouble(c->second, &capacity)) {
    return ErrorResponse(400, "InvalidArgument",
                         "required query parameter: capacity=<number>");
  }
  if (s->recent.empty()) {
    return ServiceUnavailable("no recent observations for " + s->key);
  }
  const tsa::TimeSeries recent(s->key, s->recent_start_epoch,
                               tsa::Frequency::kHourly, s->recent);
  auto report =
      core::CapacityPlanner::Headroom(recent, s->forecast, capacity);
  if (!report.ok()) return UnprocessableResponse(report.status());

  JsonWriter w(false);
  w.BeginObject();
  w.String("key", s->key);
  w.Integer("view_version", static_cast<long long>(view.version));
  w.Number("capacity", capacity);
  core::WriteHeadroomFields(&w, *report);
  w.EndObject();
  return HttpResponse::Json(200, w.Take());
}

HttpResponse EstateQueryHandler::HandleMetrics() {
  if (registry_ == nullptr) {
    return ErrorResponse(404, "NotFound", "metrics registry not wired");
  }
  HttpResponse resp;
  resp.status = 200;
  resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
  resp.body = obs::ToPrometheusText(registry_->Collect());
  return resp;
}

}  // namespace capplan::serve
