#ifndef CAPPLAN_SERVE_ESTATE_VIEW_H_
#define CAPPLAN_SERVE_ESTATE_VIEW_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pipeline.h"
#include "models/model.h"

namespace capplan::serve {

// Immutable, point-in-time snapshot of everything the query server answers
// from: per-instance cached forecasts, breach/alert state, quality and
// degradation status, and a short tail of observed values. EstateService
// builds a fresh EstateView at the end of every tick and publishes it with
// one atomic shared_ptr swap; request threads load the pointer, answer from
// the frozen snapshot, and never touch a service lock. A view outlives any
// request that loaded it (shared ownership), so a swap mid-request is safe.

struct InstanceStatus {
  std::string key;       // repository key, e.g. "cdbm011/cpu"
  std::string instance;  // "cdbm011"
  std::string metric;    // "cpu" | "memory" | "logical_iops"
  double threshold = 0.0;  // configured breach level for this watch

  // Cached forecast (absent until the first refit lands).
  bool has_forecast = false;
  models::Forecast forecast;
  std::int64_t forecast_start_epoch = 0;  // timestamp of forecast step 1
  std::int64_t forecast_step_seconds = 3600;
  std::string spec;  // "<technique> <spec>" of the producing fit
  core::DegradationLevel degradation = core::DegradationLevel::kFull;

  // Latest data-quality sentinel verdict for this series.
  double quality_score = 1.0;
  bool trainable = true;
  std::string quality_verdict;

  // Active breach alert, if any.
  bool alert_active = false;
  bool alert_upper_only = false;
  std::int64_t predicted_breach_epoch = 0;

  // Trailing observed hourly values (newest last) so headroom queries can
  // compare forecast peaks against current usage without repository access.
  std::vector<double> recent;
  std::int64_t recent_start_epoch = 0;  // epoch of recent.front()

  // Multi-seasonality selection subsystem (docs/selection.md): the seasonal
  // periods the selector detected for this series at fit time (empty until
  // the first refit, or when detection degraded), plus a longer observed
  // tail sized for STL decomposition over the longest season — the input
  // /v1/decompose answers from.
  std::vector<double> periods;
  std::vector<double> history;
  std::int64_t history_start_epoch = 0;  // epoch of history.front()
};

// Deep health of one estate shard (service/health.h state machine),
// published alongside the instance rows so readiness probes and /v1/health
// answer from the same frozen snapshot, without touching service state.
struct ShardHealthStatus {
  std::size_t shard = 0;
  int state = 0;           // 0 healthy / 1 degraded / 2 critical
  std::string state_name;  // "healthy" | "degraded" | "critical"
  std::string reason;      // worst signal driving the state
  std::size_t refit_queue_depth = 0;
  std::size_t quarantined = 0;
  std::uint64_t tick_overruns = 0;
  std::uint64_t rollbacks = 0;
};

struct EstateView {
  std::uint64_t version = 0;   // strictly increasing per publish
  std::int64_t now_epoch = 0;  // service clock when the view was built
  std::uint64_t tick = 0;      // service tick counter at build time
  std::vector<InstanceStatus> instances;  // sorted by key

  // One entry per shard, filled by the service after MergeShardRows; empty
  // in hand-built views (readiness probes then treat the estate as healthy).
  std::vector<ShardHealthStatus> shard_health;
  int overall_health = 0;  // max over shard_health

  // Binary search by key; nullptr when absent.
  const InstanceStatus* Find(const std::string& key) const;
};

// Coordinator-side merge for the sharded service: concatenates per-shard
// row groups into one view and sorts by key (the invariant Find relies on).
// The version stamp is applied at publish time by ViewChannel, as always.
std::shared_ptr<EstateView> MergeShardRows(
    std::int64_t now_epoch, std::uint64_t tick,
    std::vector<std::vector<InstanceStatus>> shard_rows);

// Single-slot publication channel: one writer (the service driver thread)
// swaps in new views, any number of readers (request threads) load the
// current one. Readers get shared ownership, so a view stays alive for as
// long as any request still answers from it.
//
// The slot is guarded by an acquire/release spin bit rather than
// std::atomic<std::shared_ptr>: libstdc++'s _Sp_atomic unlocks its load
// path with relaxed ordering, which is a formal data race against the next
// store (and a TSan report). The critical section here is one shared_ptr
// copy or move — a refcount bump — so the bit is never held across real
// work and readers still bypass every service lock.
class ViewChannel {
 public:
  ViewChannel() = default;
  ViewChannel(const ViewChannel&) = delete;
  ViewChannel& operator=(const ViewChannel&) = delete;

  // Stamps `view` with the next version and publishes it.
  void Publish(std::shared_ptr<EstateView> view);

  // Current view; nullptr before the first Publish.
  std::shared_ptr<const EstateView> Get() const;

  // Number of Publish calls (== version of the current view).
  std::uint64_t swaps() const {
    return swaps_.load(std::memory_order_relaxed);
  }

 private:
  void LockSlot() const {
    while (slot_bit_.exchange(true, std::memory_order_acquire)) {
    }
  }
  void UnlockSlot() const { slot_bit_.store(false, std::memory_order_release); }

  mutable std::atomic<bool> slot_bit_{false};
  std::shared_ptr<const EstateView> slot_;
  std::atomic<std::uint64_t> swaps_{0};
};

}  // namespace capplan::serve

#endif  // CAPPLAN_SERVE_ESTATE_VIEW_H_
