#ifndef CAPPLAN_SERVE_ANSWER_CACHE_H_
#define CAPPLAN_SERVE_ANSWER_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "obs/metrics.h"
#include "serve/http.h"

namespace capplan::serve {

// TTL answer cache for rendered query responses, keyed on the normalized
// query identity (endpoint + instance + metric + horizon/threshold/...). An
// entry is valid only while (a) the view it was rendered from is still the
// published one — every entry is stamped with the view version, so a view
// swap invalidates the whole cache without touching it — and (b) its TTL has
// not elapsed. LRU eviction bounds the footprint.
//
// All methods are thread-safe; the hot path (Get on a warm key) is one
// mutex-protected map lookup and a string copy of the rendered response —
// no JSON rendering, no allocation proportional to the forecast horizon.
class AnswerCache {
 public:
  struct Options {
    std::size_t capacity = 1024;  // entries; 0 disables caching entirely
    double ttl_seconds = 5.0;
  };

  AnswerCache() : AnswerCache(Options(), nullptr) {}
  explicit AnswerCache(Options options,
                       std::shared_ptr<obs::MetricsRegistry> registry = {});

  // Returns the cached response if `key` is fresh for `view_version` at
  // `now_seconds` (any monotonic clock, seconds). Counts a hit or miss.
  std::optional<HttpResponse> Get(const std::string& key,
                                  std::uint64_t view_version,
                                  double now_seconds);

  // Stores a rendered response for `key` under `view_version`.
  void Put(const std::string& key, std::uint64_t view_version,
           double now_seconds, const HttpResponse& response);

  std::size_t size() const;
  // Counted locally so they work with or without a wired registry (the
  // registry handles only mirror them for /metrics).
  std::uint64_t hits() const {
    return n_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t misses() const {
    return n_misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return n_evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    HttpResponse response;
    std::uint64_t view_version = 0;
    double expires_at = 0.0;
    std::list<std::string>::iterator lru_it;
  };

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // most recently used at front

  std::atomic<std::uint64_t> n_hits_{0};
  std::atomic<std::uint64_t> n_misses_{0};
  std::atomic<std::uint64_t> n_evictions_{0};

  obs::Counter hits_;
  obs::Counter misses_;
  obs::Counter evictions_;
  obs::Gauge fill_;
};

}  // namespace capplan::serve

#endif  // CAPPLAN_SERVE_ANSWER_CACHE_H_
