#include "serve/http_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/fault.h"
#include "obs/trace.h"

namespace capplan::serve {

namespace {

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IoError("serve: fcntl(O_NONBLOCK) failed");
  }
  return Status::OK();
}

void UpdateMax(std::atomic<std::uint64_t>* slot, std::uint64_t v) {
  std::uint64_t cur = slot->load(std::memory_order_relaxed);
  while (v > cur && !slot->compare_exchange_weak(cur, v,
                                                 std::memory_order_relaxed)) {
  }
}

}  // namespace

HttpServer::HttpServer(HttpHandler handler, HttpServerConfig config)
    : handler_(std::move(handler)), config_(std::move(config)) {
  if (config_.worker_threads == 0) config_.worker_threads = 1;
  if (config_.max_inflight == 0) config_.max_inflight = 1;
  if (config_.registry != nullptr) {
    obs::MetricsRegistry& reg = *config_.registry;
    m_requests_ = reg.GetCounter("capplan_serve_requests_total", {},
                                 "Requests admitted to a handler worker");
    m_throttled_ = reg.GetCounter(
        "capplan_serve_throttled_total", {},
        "Requests rejected 429 by admission control");
    m_parse_errors_ = reg.GetCounter("capplan_serve_parse_errors_total", {},
                                     "Malformed requests rejected 4xx");
    m_io_errors_ = reg.GetCounter(
        "capplan_serve_io_errors_total", {},
        "Connections dropped on read/write/accept errors");
    m_deadline_closes_ = reg.GetCounter(
        "capplan_serve_deadline_closes_total", {},
        "Connections closed for blowing a read/write deadline");
    m_read_bytes_ = reg.GetCounter("capplan_serve_read_bytes_total", {},
                                   "Request bytes read from clients");
    m_written_bytes_ = reg.GetCounter("capplan_serve_written_bytes_total", {},
                                      "Response bytes written to clients");
    m_inflight_ = reg.GetGauge("capplan_serve_inflight_ratio", {},
                               "Admitted in-flight requests / max_inflight");
    m_connections_ = reg.GetGauge("capplan_serve_connections_ratio", {},
                                  "Open connections / max_connections");
    m_latency_ = reg.GetHistogram(
        "capplan_serve_request_latency_ms", {}, {},
        "Request latency, complete parse to final flush");
  }
}

HttpServer::~HttpServer() { Stop(); }

std::int64_t HttpServer::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             Clock::now().time_since_epoch())
      .count();
}

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::FailedPrecondition("serve: server already running");
  }
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Status::IoError("serve: socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(config_.port));
  if (inet_pton(AF_INET, config_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("serve: bad bind address " +
                                   config_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("serve: bind failed: " + err);
  }
  if (listen(listen_fd_, 256) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("serve: listen failed");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("serve: getsockname failed");
  }
  port_ = ntohs(addr.sin_port);
  CAPPLAN_RETURN_NOT_OK(SetNonBlocking(listen_fd_));

  int pipefd[2];
  if (pipe(pipefd) < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("serve: pipe failed");
  }
  wake_rd_ = pipefd[0];
  wake_wr_ = pipefd[1];
  CAPPLAN_RETURN_NOT_OK(SetNonBlocking(wake_rd_));
  CAPPLAN_RETURN_NOT_OK(SetNonBlocking(wake_wr_));

  stopping_.store(false, std::memory_order_release);
  pool_ = std::make_unique<ThreadPool>(config_.worker_threads);
  running_.store(true, std::memory_order_release);
  loop_thread_ = std::thread(&HttpServer::Loop, this);
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  Wake();
  if (loop_thread_.joinable()) loop_thread_.join();
  // Workers may still be finishing handlers; drain them before tearing down
  // the completion queue and wake pipe they write to.
  pool_.reset();
  {
    std::lock_guard<std::mutex> lock(completed_mu_);
    completed_.clear();
  }
  if (wake_rd_ >= 0) close(wake_rd_);
  if (wake_wr_ >= 0) close(wake_wr_);
  wake_rd_ = wake_wr_ = -1;
  inflight_.store(0, std::memory_order_relaxed);
  running_.store(false, std::memory_order_release);
}

void HttpServer::Wake() {
  if (wake_wr_ < 0) return;
  const char byte = 'w';
  // A full pipe already guarantees a pending wakeup; EAGAIN is fine.
  (void)!write(wake_wr_, &byte, 1);
}

HttpServerStats HttpServer::Stats() const {
  HttpServerStats s;
  s.connections_accepted = accepted_.load(std::memory_order_relaxed);
  s.connections_rejected = rejected_.load(std::memory_order_relaxed);
  s.requests_admitted = admitted_.load(std::memory_order_relaxed);
  s.responses_sent = responses_.load(std::memory_order_relaxed);
  s.throttled = throttled_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  s.read_errors = read_errors_.load(std::memory_order_relaxed);
  s.write_errors = write_errors_.load(std::memory_order_relaxed);
  s.deadline_closes = deadline_closes_.load(std::memory_order_relaxed);
  s.peak_inflight = peak_inflight_.load(std::memory_order_relaxed);
  s.open_connections = open_conns_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::Loop() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd (0 = not a conn)
  bool listener_open = true;
  const std::int64_t stop_requested_grace = config_.stop_grace_ms;
  std::int64_t stop_deadline_ms = 0;

  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && listener_open) {
      close(listen_fd_);
      listen_fd_ = -1;
      listener_open = false;
      stop_deadline_ms = NowMs() + stop_requested_grace;
    }
    if (stopping) {
      // Idle keep-alive connections owe no response; shed them every pass so
      // a connection whose in-flight response just flushed does not hold the
      // loop open until the grace deadline.
      std::vector<std::uint64_t> idle;
      for (auto& [id, conn] : conns_) {
        if (conn.state == Conn::State::kReading) idle.push_back(id);
      }
      for (std::uint64_t id : idle) CloseConn(id);
      const bool drained =
          conns_.empty() && inflight_.load(std::memory_order_relaxed) == 0;
      if (drained || NowMs() >= stop_deadline_ms) break;
    }

    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_rd_, POLLIN, 0});
    fd_conn.push_back(0);
    if (listener_open) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    std::int64_t next_deadline = 0;
    for (auto& [id, conn] : conns_) {
      short events = 0;
      if (conn.state == Conn::State::kReading) events = POLLIN;
      if (conn.state == Conn::State::kWriting) events = POLLOUT;
      if (events != 0) {
        fds.push_back({conn.fd, events, 0});
        fd_conn.push_back(id);
      }
      if (conn.deadline_ms > 0 &&
          (next_deadline == 0 || conn.deadline_ms < next_deadline)) {
        next_deadline = conn.deadline_ms;
      }
    }
    int timeout_ms = -1;
    if (next_deadline > 0) {
      timeout_ms = static_cast<int>(
          std::max<std::int64_t>(0, next_deadline - NowMs()));
    }
    if (stopping) {
      timeout_ms = timeout_ms < 0 ? 10 : std::min(timeout_ms, 10);
    }

    const int n = poll(fds.data(), fds.size(), timeout_ms);
    if (n < 0 && errno != EINTR) break;  // unrecoverable; shut down

    if (fds[0].revents & POLLIN) {
      char buf[256];
      while (read(wake_rd_, buf, sizeof(buf)) > 0) {
      }
    }
    DrainCompleted();
    const std::size_t listener_index = listener_open ? 1 : 0;
    if (listener_open && (fds[listener_index].revents & POLLIN)) {
      AcceptNew();
    }
    for (std::size_t i = 1 + listener_index; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      const auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;  // closed by an earlier event
      Conn* conn = &it->second;
      if (fds[i].revents & (POLLERR | POLLNVAL)) {
        read_errors_.fetch_add(1, std::memory_order_relaxed);
        m_io_errors_.Inc();
        CloseConn(conn->id);
        continue;
      }
      if (conn->state == Conn::State::kReading &&
          (fds[i].revents & (POLLIN | POLLHUP))) {
        HandleRead(conn);
      } else if (conn->state == Conn::State::kWriting &&
                 (fds[i].revents & (POLLOUT | POLLHUP))) {
        HandleWrite(conn);
      }
    }

    // Deadline sweep: slow readers and slow writers both get cut off.
    const std::int64_t now_ms = NowMs();
    std::vector<std::uint64_t> expired;
    for (auto& [id, conn] : conns_) {
      if (conn.deadline_ms > 0 && now_ms >= conn.deadline_ms) {
        expired.push_back(id);
      }
    }
    for (std::uint64_t id : expired) {
      deadline_closes_.fetch_add(1, std::memory_order_relaxed);
      m_deadline_closes_.Inc();
      CloseConn(id);
    }
  }

  // Shutdown: close whatever is left (grace expired or fully drained).
  std::vector<std::uint64_t> rest;
  rest.reserve(conns_.size());
  for (auto& [id, conn] : conns_) rest.push_back(id);
  for (std::uint64_t id : rest) CloseConn(id);
  if (listener_open) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::AcceptNew() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      rejected_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_.Inc();
      return;
    }
    if (FaultFires("serve.accept")) {
      close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_.Inc();
      continue;
    }
    if (conns_.size() >= config_.max_connections) {
      // Over the connection cap there is no parser to speak HTTP through;
      // dropping the socket is the only honest backpressure left.
      close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (!SetNonBlocking(fd).ok()) {
      close(fd);
      rejected_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Conn conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conn.parser = RequestParser(config_.limits);
    conn.deadline_ms = NowMs() + config_.read_deadline_ms;
    const std::uint64_t id = conn.id;
    conns_.emplace(id, std::move(conn));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_conns_.store(conns_.size(), std::memory_order_relaxed);
    m_connections_.Set(static_cast<double>(conns_.size()) /
                       static_cast<double>(config_.max_connections));
  }
}

void HttpServer::HandleRead(Conn* conn) {
  char buf[16384];
  while (conn->state == Conn::State::kReading) {
    const ssize_t n = read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      if (FaultFires("serve.read")) {
        read_errors_.fetch_add(1, std::memory_order_relaxed);
        m_io_errors_.Inc();
        CloseConn(conn->id);
        return;
      }
      m_read_bytes_.Inc(static_cast<std::uint64_t>(n));
      conn->deadline_ms = NowMs() + config_.read_deadline_ms;
      conn->parser.Feed(buf, static_cast<std::size_t>(n));
      // ProcessParsed can close the connection (a same-call flush of an
      // error or keep-alive:false response erases the map node), so the
      // pointer must be re-resolved before the loop touches it again.
      const std::uint64_t id = conn->id;
      ProcessParsed(conn);
      const auto it = conns_.find(id);
      if (it == conns_.end()) return;
      conn = &it->second;
      continue;
    }
    if (n == 0) {
      // Peer closed. Mid-message this is a torn request; either way there
      // is nothing more to answer on this connection.
      CloseConn(conn->id);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    read_errors_.fetch_add(1, std::memory_order_relaxed);
    m_io_errors_.Inc();
    CloseConn(conn->id);
    return;
  }
}

void HttpServer::ProcessParsed(Conn* conn) {
  if (conn->parser.state() == RequestParser::State::kError) {
    parse_errors_.fetch_add(1, std::memory_order_relaxed);
    m_parse_errors_.Inc();
    HttpResponse err = HttpResponse::Json(
        conn->parser.error_status(),
        std::string("{\"error\":{\"status\":") +
            std::to_string(conn->parser.error_status()) +
            ",\"message\":\"" + conn->parser.error() + "\"}}");
    conn->keep_alive = false;  // parser state is unrecoverable
    conn->request_start_ms = NowMs();
    QueueResponse(conn, err, /*head_only=*/false);
    return;
  }
  if (conn->state == Conn::State::kReading &&
      conn->parser.state() == RequestParser::State::kComplete) {
    HttpRequest request = conn->parser.TakeRequest();
    conn->keep_alive = request.keep_alive;
    conn->request_start_ms = NowMs();
    AdmitRequest(conn, std::move(request));
  }
}

void HttpServer::AdmitRequest(Conn* conn, HttpRequest request) {
  const bool head_only = request.method == "HEAD";
  if (stopping_.load(std::memory_order_acquire)) {
    HttpResponse busy = HttpResponse::Json(
        503, "{\"error\":{\"status\":503,\"message\":\"shutting down\"}}");
    conn->keep_alive = false;
    QueueResponse(conn, busy, head_only);
    return;
  }
  std::size_t cur = inflight_.load(std::memory_order_relaxed);
  if (cur >= config_.max_inflight) {
    throttled_.fetch_add(1, std::memory_order_relaxed);
    m_throttled_.Inc();
    HttpResponse busy = HttpResponse::Json(
        429, "{\"error\":{\"status\":429,\"message\":\"server saturated\"}}");
    busy.headers.emplace_back("Retry-After",
                              std::to_string(config_.retry_after_seconds));
    QueueResponse(conn, busy, head_only);
    return;
  }
  inflight_.store(cur + 1, std::memory_order_relaxed);
  UpdateMax(&peak_inflight_, cur + 1);
  m_inflight_.Set(static_cast<double>(cur + 1) /
                  static_cast<double>(config_.max_inflight));
  admitted_.fetch_add(1, std::memory_order_relaxed);
  m_requests_.Inc();
  conn->state = Conn::State::kHandling;
  conn->inflight_held = true;
  conn->deadline_ms = 0;  // handler latency is bounded by the handler
  pool_->Submit([this, id = conn->id, keep_alive = conn->keep_alive,
                 head_only, request = std::move(request)]() {
    obs::TraceSpan span("serve.request", "serve");
    HttpResponse response = handler_(request);
    span.set_tag(response.status < 400 ? "ok" : "error");
    Completed done;
    done.conn_id = id;
    done.status = response.status;
    done.bytes = SerializeResponse(response, keep_alive, head_only);
    {
      std::lock_guard<std::mutex> lock(completed_mu_);
      completed_.push_back(std::move(done));
    }
    Wake();
  });
}

void HttpServer::QueueResponse(Conn* conn, const HttpResponse& response,
                               bool head_only) {
  conn->write_buf = SerializeResponse(response, conn->keep_alive, head_only);
  conn->write_off = 0;
  conn->pending_status = response.status;
  conn->close_after_write = !conn->keep_alive;
  conn->state = Conn::State::kWriting;
  conn->deadline_ms = NowMs() + config_.write_deadline_ms;
  HandleWrite(conn);  // opportunistic flush; usually completes in one write
}

void HttpServer::DrainCompleted() {
  std::vector<Completed> batch;
  {
    std::lock_guard<std::mutex> lock(completed_mu_);
    batch.swap(completed_);
  }
  for (Completed& done : batch) {
    const auto it = conns_.find(done.conn_id);
    if (it == conns_.end()) {
      // The connection died while its request was being handled; the
      // admission slot is released here, where the response surfaces.
      ReleaseInflight();
      continue;
    }
    Conn* conn = &it->second;
    conn->write_buf = std::move(done.bytes);
    conn->write_off = 0;
    conn->pending_status = done.status;
    conn->close_after_write = !conn->keep_alive;
    conn->state = Conn::State::kWriting;
    conn->deadline_ms = NowMs() + config_.write_deadline_ms;
    HandleWrite(conn);
  }
}

void HttpServer::HandleWrite(Conn* conn) {
  while (conn->write_off < conn->write_buf.size()) {
    if (FaultFires("serve.write")) {
      write_errors_.fetch_add(1, std::memory_order_relaxed);
      m_io_errors_.Inc();
      CloseConn(conn->id);
      return;
    }
    const ssize_t n =
        write(conn->fd, conn->write_buf.data() + conn->write_off,
              conn->write_buf.size() - conn->write_off);
    if (n > 0) {
      conn->write_off += static_cast<std::size_t>(n);
      m_written_bytes_.Inc(static_cast<std::uint64_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    write_errors_.fetch_add(1, std::memory_order_relaxed);
    m_io_errors_.Inc();
    CloseConn(conn->id);
    return;
  }
  // Fully flushed.
  responses_.fetch_add(1, std::memory_order_relaxed);
  if (conn->inflight_held) {
    m_latency_.Observe(
        static_cast<double>(NowMs() - conn->request_start_ms));
    conn->inflight_held = false;
    ReleaseInflight();
  }
  conn->write_buf.clear();
  conn->write_off = 0;
  if (conn->close_after_write) {
    CloseConn(conn->id);
    return;
  }
  conn->state = Conn::State::kReading;
  conn->deadline_ms = NowMs() + config_.read_deadline_ms;
  ProcessParsed(conn);  // a pipelined request may already be buffered
}

void HttpServer::ReleaseInflight() {
  const std::size_t cur = inflight_.load(std::memory_order_relaxed);
  if (cur > 0) {
    inflight_.store(cur - 1, std::memory_order_relaxed);
    m_inflight_.Set(static_cast<double>(cur - 1) /
                    static_cast<double>(config_.max_inflight));
  }
}

void HttpServer::CloseConn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  Conn& conn = it->second;
  // kWriting with the slot held: the response dies with the connection, so
  // the slot frees here. kHandling: the worker still owns the request; its
  // completion (finding the connection gone) releases the slot instead.
  if (conn.inflight_held && conn.state == Conn::State::kWriting) {
    ReleaseInflight();
  }
  close(conn.fd);
  conns_.erase(it);
  open_conns_.store(conns_.size(), std::memory_order_relaxed);
  m_connections_.Set(static_cast<double>(conns_.size()) /
                     static_cast<double>(config_.max_connections));
}

}  // namespace capplan::serve
