#include "serve/http_client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

namespace capplan::serve {

namespace {

std::string Lower(std::string s) {
  for (char& c : s) c = static_cast<char>(std::tolower(c));
  return s;
}

std::string Trim(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && (s[b] == ' ' || s[b] == '\t')) ++b;
  while (e > b && (s[e - 1] == ' ' || s[e - 1] == '\t')) --e;
  return s.substr(b, e - b);
}

}  // namespace

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  buf_.clear();
}

Status HttpClient::Connect(const std::string& host, int port,
                           int timeout_ms) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::IoError("client: socket() failed");
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("client: bad host address " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    Close();
    return Status::IoError("client: connect failed: " + err);
  }
  return Status::OK();
}

Status HttpClient::Send(const std::string& bytes) {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = write(fd_, bytes.data() + off, bytes.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("client: write failed: ") +
                             std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  return Status::OK();
}

Result<ClientResponse> HttpClient::Get(const std::string& target) {
  CAPPLAN_RETURN_NOT_OK(Send("GET " + target +
                             " HTTP/1.1\r\nHost: localhost\r\n"
                             "Connection: keep-alive\r\n\r\n"));
  return ReadResponse();
}

Result<ClientResponse> HttpClient::ReadResponse() {
  if (fd_ < 0) return Status::FailedPrecondition("client: not connected");
  // Read until the header terminator is buffered.
  std::size_t header_end;
  while ((header_end = buf_.find("\r\n\r\n")) == std::string::npos) {
    char chunk[8192];
    const ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      return Status::IoError("client: connection closed mid-headers");
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
  const std::string head = buf_.substr(0, header_end);

  ClientResponse resp;
  std::size_t line_end = head.find("\r\n");
  const std::string status_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);
  // "HTTP/1.1 200 OK"
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string::npos) {
    return Status::IoError("client: malformed status line");
  }
  const std::size_t sp2 = status_line.find(' ', sp1 + 1);
  const std::string code = status_line.substr(
      sp1 + 1, sp2 == std::string::npos ? std::string::npos : sp2 - sp1 - 1);
  resp.status = std::atoi(code.c_str());
  if (sp2 != std::string::npos) resp.reason = status_line.substr(sp2 + 1);

  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos) continue;
    resp.headers[Lower(line.substr(0, colon))] = Trim(line.substr(colon + 1));
  }

  std::size_t body_len = 0;
  if (const std::string* cl = resp.FindHeader("content-length")) {
    body_len = static_cast<std::size_t>(std::atoll(cl->c_str()));
  }
  const std::size_t body_start = header_end + 4;
  while (buf_.size() < body_start + body_len) {
    char chunk[8192];
    const ssize_t n = read(fd_, chunk, sizeof(chunk));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return Status::IoError("client: connection closed mid-body");
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
  resp.body = buf_.substr(body_start, body_len);
  // Keep bytes past this response for the next pipelined/keep-alive read.
  buf_.erase(0, body_start + body_len);
  return resp;
}

}  // namespace capplan::serve
