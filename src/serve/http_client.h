#ifndef CAPPLAN_SERVE_HTTP_CLIENT_H_
#define CAPPLAN_SERVE_HTTP_CLIENT_H_

#include <map>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace capplan::serve {

// Response as seen by the test client: status line fields plus lowercased
// headers and the Content-Length-delimited body.
struct ClientResponse {
  int status = 0;
  std::string reason;
  std::map<std::string, std::string> headers;  // names lowercased
  std::string body;

  const std::string* FindHeader(const std::string& lowercase_name) const {
    const auto it = headers.find(lowercase_name);
    return it == headers.end() ? nullptr : &it->second;
  }
};

// Minimal blocking HTTP/1.1 client for tests, the load bench and the
// example — deliberately tiny: one connection, Content-Length bodies only,
// caller-driven keep-alive. Not for production use.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  Status Connect(const std::string& host, int port, int timeout_ms = 5000);

  // Sends `GET target HTTP/1.1` (keep-alive) and reads the full response.
  Result<ClientResponse> Get(const std::string& target);

  // Raw escape hatches for protocol tests: push arbitrary bytes, then read
  // a response off the same connection.
  Status Send(const std::string& bytes);
  Result<ClientResponse> ReadResponse();

  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  std::string buf_;  // bytes read past the previous response (keep-alive)
};

}  // namespace capplan::serve

#endif  // CAPPLAN_SERVE_HTTP_CLIENT_H_
