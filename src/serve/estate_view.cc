#include "serve/estate_view.h"

#include <algorithm>

namespace capplan::serve {

const InstanceStatus* EstateView::Find(const std::string& key) const {
  const auto it = std::lower_bound(
      instances.begin(), instances.end(), key,
      [](const InstanceStatus& s, const std::string& k) { return s.key < k; });
  return it != instances.end() && it->key == key ? &*it : nullptr;
}

std::shared_ptr<EstateView> MergeShardRows(
    std::int64_t now_epoch, std::uint64_t tick,
    std::vector<std::vector<InstanceStatus>> shard_rows) {
  auto view = std::make_shared<EstateView>();
  view->now_epoch = now_epoch;
  view->tick = tick;
  std::size_t total = 0;
  for (const auto& rows : shard_rows) total += rows.size();
  view->instances.reserve(total);
  for (auto& rows : shard_rows) {
    for (auto& row : rows) view->instances.push_back(std::move(row));
  }
  std::sort(view->instances.begin(), view->instances.end(),
            [](const InstanceStatus& a, const InstanceStatus& b) {
              return a.key < b.key;
            });
  return view;
}

void ViewChannel::Publish(std::shared_ptr<EstateView> view) {
  view->version = swaps_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::shared_ptr<const EstateView> next(std::move(view));
  LockSlot();
  slot_.swap(next);
  UnlockSlot();
  // `next` (the displaced view) is released outside the critical section so
  // a last-reference destruction never extends the spin window.
}

std::shared_ptr<const EstateView> ViewChannel::Get() const {
  LockSlot();
  std::shared_ptr<const EstateView> view = slot_;
  UnlockSlot();
  return view;
}

}  // namespace capplan::serve
