#include "serve/estate_view.h"

#include <algorithm>

namespace capplan::serve {

const InstanceStatus* EstateView::Find(const std::string& key) const {
  const auto it = std::lower_bound(
      instances.begin(), instances.end(), key,
      [](const InstanceStatus& s, const std::string& k) { return s.key < k; });
  return it != instances.end() && it->key == key ? &*it : nullptr;
}

void ViewChannel::Publish(std::shared_ptr<EstateView> view) {
  view->version = swaps_.fetch_add(1, std::memory_order_relaxed) + 1;
  std::shared_ptr<const EstateView> next(std::move(view));
  LockSlot();
  slot_.swap(next);
  UnlockSlot();
  // `next` (the displaced view) is released outside the critical section so
  // a last-reference destruction never extends the spin window.
}

std::shared_ptr<const EstateView> ViewChannel::Get() const {
  LockSlot();
  std::shared_ptr<const EstateView> view = slot_;
  UnlockSlot();
  return view;
}

}  // namespace capplan::serve
