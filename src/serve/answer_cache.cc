#include "serve/answer_cache.h"

namespace capplan::serve {

AnswerCache::AnswerCache(Options options,
                         std::shared_ptr<obs::MetricsRegistry> registry)
    : options_(options) {
  if (registry != nullptr) {
    hits_ = registry->GetCounter("capplan_serve_cache_hits_total", {},
                                 "Answer-cache lookups served from cache");
    misses_ = registry->GetCounter(
        "capplan_serve_cache_misses_total", {},
        "Answer-cache lookups that rendered a fresh response");
    evictions_ = registry->GetCounter("capplan_serve_cache_evictions_total",
                                      {}, "Answer-cache LRU evictions");
    fill_ = registry->GetGauge("capplan_serve_cache_fill_ratio", {},
                               "Answer-cache entries / capacity");
  }
}

std::optional<HttpResponse> AnswerCache::Get(const std::string& key,
                                             std::uint64_t view_version,
                                             double now_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.view_version != view_version ||
      it->second.expires_at < now_seconds) {
    if (it != entries_.end()) {
      // Stale for the current view or past TTL: drop it so the map never
      // accumulates generations of dead answers.
      lru_.erase(it->second.lru_it);
      entries_.erase(it);
    }
    n_misses_.fetch_add(1, std::memory_order_relaxed);
    misses_.Inc();
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  n_hits_.fetch_add(1, std::memory_order_relaxed);
  hits_.Inc();
  return it->second.response;
}

void AnswerCache::Put(const std::string& key, std::uint64_t view_version,
                      double now_seconds, const HttpResponse& response) {
  if (options_.capacity == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    if (entries_.size() >= options_.capacity) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      n_evictions_.fetch_add(1, std::memory_order_relaxed);
      evictions_.Inc();
    }
    lru_.push_front(key);
    it = entries_.emplace(key, Entry{}).first;
    it->second.lru_it = lru_.begin();
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  }
  it->second.response = response;
  it->second.view_version = view_version;
  it->second.expires_at = now_seconds + options_.ttl_seconds;
  fill_.Set(static_cast<double>(entries_.size()) /
            static_cast<double>(options_.capacity));
}

std::size_t AnswerCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace capplan::serve
