#ifndef CAPPLAN_SERVE_HTTP_SERVER_H_
#define CAPPLAN_SERVE_HTTP_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "serve/http.h"

namespace capplan::serve {

// Small dependency-free HTTP/1.1 server for the capacity query surface: a
// single poll()-based event-loop thread owns every socket, workers on a
// ThreadPool run the handler, and responses travel back to the loop through
// a wake pipe. Design points:
//
//   * Incremental parsing — the loop feeds whatever bytes poll() delivered
//     into a per-connection RequestParser; keep-alive and pipelined
//     requests surface one at a time (a connection is not read from while a
//     request of its own is being handled, which is per-connection
//     backpressure for free).
//   * Admission control — at most `max_inflight` admitted requests may be
//     anywhere between handler dispatch and final flush; excess requests
//     are answered 429 + Retry-After on the loop thread without touching a
//     worker. Overload sheds load instead of queuing unboundedly.
//   * Deadlines — a connection must deliver a complete request within
//     `read_deadline_ms` of becoming readable and drain its response within
//     `write_deadline_ms`, or it is closed (slow-client defense).
//   * Graceful shutdown — Stop() closes the listener, lets in-flight
//     requests finish flushing within `stop_grace_ms`, then closes
//     everything and joins the loop and workers.
//   * Test mode — port 0 binds a loopback ephemeral port; port() reports
//     the OS-assigned one, so test suites never collide on fixed ports.
//
// Fault-injection sites (common/fault.h): `serve.accept` drops a freshly
// accepted connection, `serve.read` fails a socket read, `serve.write`
// fails a socket write mid-response. The chaos suite uses these to assert
// the loop survives torn clients without wedging or leaking fds.

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

struct HttpServerConfig {
  std::string bind_address = "127.0.0.1";
  int port = 0;  // 0 = OS-assigned ephemeral port (test mode)
  std::size_t worker_threads = 2;
  std::size_t max_connections = 256;
  std::size_t max_inflight = 64;
  int retry_after_seconds = 1;  // advertised on 429 responses
  std::int64_t read_deadline_ms = 5000;
  std::int64_t write_deadline_ms = 5000;
  std::int64_t stop_grace_ms = 5000;
  ParserLimits limits;
  // Optional: request/connection metrics are registered here when set.
  std::shared_ptr<obs::MetricsRegistry> registry;
};

// Counters mirrored out for tests and the load bench (all since Start).
struct HttpServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_rejected = 0;  // at capacity or accept fault
  std::uint64_t requests_admitted = 0;     // handed to a worker
  std::uint64_t responses_sent = 0;        // fully flushed, any status
  std::uint64_t throttled = 0;             // 429 admission rejections
  std::uint64_t parse_errors = 0;
  std::uint64_t read_errors = 0;
  std::uint64_t write_errors = 0;
  std::uint64_t deadline_closes = 0;
  std::uint64_t peak_inflight = 0;
  std::size_t open_connections = 0;
};

class HttpServer {
 public:
  explicit HttpServer(HttpHandler handler, HttpServerConfig config = {});
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds, listens and starts the loop thread + worker pool. Fails on bind
  // errors (address in use, bad address) without leaking the socket.
  Status Start();

  // Graceful shutdown; idempotent. Safe to call from any thread except the
  // loop thread.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // OS-assigned port after Start() (== config port when it was non-zero).
  int port() const { return port_; }

  HttpServerStats Stats() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    RequestParser parser;
    enum class State { kReading, kHandling, kWriting } state = State::kReading;
    std::string write_buf;
    std::size_t write_off = 0;
    bool keep_alive = true;
    bool close_after_write = false;
    bool inflight_held = false;  // admitted request not yet fully flushed
    int pending_status = 0;      // status of the response being written
    std::int64_t deadline_ms = 0;  // absolute steady-clock ms; 0 = none
    std::int64_t request_start_ms = 0;
  };

  struct Completed {
    std::uint64_t conn_id = 0;
    std::string bytes;
    int status = 0;
  };

  void Loop();
  void AcceptNew();
  void HandleRead(Conn* conn);
  void HandleWrite(Conn* conn);
  void ProcessParsed(Conn* conn);
  void AdmitRequest(Conn* conn, HttpRequest request);
  void QueueResponse(Conn* conn, const HttpResponse& response,
                     bool head_only);
  void DrainCompleted();
  void CloseConn(std::uint64_t id);
  void ReleaseInflight();
  void Wake();
  std::int64_t NowMs() const;

  HttpHandler handler_;
  HttpServerConfig config_;

  int listen_fd_ = -1;
  int wake_rd_ = -1;
  int wake_wr_ = -1;
  int port_ = 0;

  std::map<std::uint64_t, Conn> conns_;  // loop thread only
  std::uint64_t next_conn_id_ = 1;

  std::mutex completed_mu_;
  std::vector<Completed> completed_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::size_t> inflight_{0};

  // Stats (atomics: written by the loop thread and workers, read anywhere).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> responses_{0};
  std::atomic<std::uint64_t> throttled_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
  std::atomic<std::uint64_t> read_errors_{0};
  std::atomic<std::uint64_t> write_errors_{0};
  std::atomic<std::uint64_t> deadline_closes_{0};
  std::atomic<std::uint64_t> peak_inflight_{0};
  std::atomic<std::size_t> open_conns_{0};

  // Optional registry mirrors of the hot counters.
  obs::Counter m_requests_;
  obs::Counter m_throttled_;
  obs::Counter m_parse_errors_;
  obs::Counter m_io_errors_;
  obs::Counter m_deadline_closes_;
  obs::Counter m_read_bytes_;
  obs::Counter m_written_bytes_;
  obs::Gauge m_inflight_;
  obs::Gauge m_connections_;
  obs::Histogram m_latency_;

  std::thread loop_thread_;
  // Declared last so workers drain before the queues/pipe go away; reset
  // explicitly in Stop() after the loop thread has joined.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace capplan::serve

#endif  // CAPPLAN_SERVE_HTTP_SERVER_H_
