#ifndef CAPPLAN_SERVE_HTTP_H_
#define CAPPLAN_SERVE_HTTP_H_

#include <cstddef>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace capplan::serve {

// Minimal, dependency-free HTTP/1.1 message types and an incremental request
// parser — just enough protocol for the capacity query server: GET/HEAD/POST,
// Content-Length bodies (chunked transfer is rejected), keep-alive and
// pipelining. The parser is a push-style state machine so the event loop can
// feed it whatever bytes poll() delivered and resume mid-message.

// One parsed request. Header names are lower-cased at parse time; the query
// string is percent-decoded into a sorted map so two spellings of the same
// query compare equal (the answer cache keys on this).
struct HttpRequest {
  std::string method;   // "GET", "HEAD", "POST"
  std::string target;   // raw request target, e.g. "/v1/forecast?h=24"
  std::string path;     // target up to '?', percent-decoded
  std::map<std::string, std::string> query;  // decoded key -> decoded value
  int version_minor = 1;  // HTTP/1.<minor>
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool keep_alive = true;  // resolved from version + Connection header

  // First header with (lower-case) name `name`, or nullptr.
  const std::string* FindHeader(const std::string& name) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
  // Extra headers beyond Content-Type/Content-Length/Connection.
  std::vector<std::pair<std::string, std::string>> headers;

  static HttpResponse Json(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.body = std::move(body);
    return r;
  }
  static HttpResponse Text(int status, std::string body) {
    HttpResponse r;
    r.status = status;
    r.content_type = "text/plain; charset=utf-8";
    r.body = std::move(body);
    return r;
  }
};

// Canonical reason phrase ("OK", "Too Many Requests", ...); "Unknown" for
// statuses the server never emits.
const char* StatusReason(int status);

// Renders the full response bytes. `keep_alive` selects the Connection
// header; `head_only` omits the body (HEAD) while keeping Content-Length.
std::string SerializeResponse(const HttpResponse& response, bool keep_alive,
                              bool head_only = false);

// Percent-decodes `in` (+ is a space inside query strings). Invalid escapes
// are kept verbatim rather than rejected — query values are data, not
// structure, by the time this runs.
std::string UrlDecode(const std::string& in);

// Protocol limits enforced during parsing, each with the HTTP status the
// violation maps to (431 oversized headers, 413 oversized body, 414 long
// request line).
struct ParserLimits {
  std::size_t max_request_line = 8192;
  std::size_t max_header_bytes = 32768;  // all header lines together
  std::size_t max_body_bytes = 1 << 20;
};

// Incremental request parser. Typical driver loop:
//
//   parser.Feed(data, n);
//   while (parser.state() == RequestParser::State::kComplete) {
//     HttpRequest req = parser.TakeRequest();   // re-parses buffered tail
//     ...handle req...
//   }
//   if (parser.state() == RequestParser::State::kError) ...respond 4xx...
//
// TakeRequest() retains any bytes beyond the completed message and
// immediately starts parsing them, so pipelined requests surface one by one.
class RequestParser {
 public:
  enum class State { kNeedMore, kComplete, kError };

  explicit RequestParser(ParserLimits limits = {});

  // Appends bytes and advances the state machine as far as possible.
  State Feed(const char* data, std::size_t n);

  State state() const { return state_; }

  // Precondition: state() == kComplete. Returns the parsed request and
  // resumes parsing any pipelined bytes already buffered.
  HttpRequest TakeRequest();

  // Valid when state() == kError.
  int error_status() const { return error_status_; }
  const std::string& error() const { return error_; }

  // Bytes buffered but not yet consumed by a completed message.
  std::size_t buffered_bytes() const { return buffer_.size(); }

 private:
  enum class Phase { kRequestLine, kHeaders, kBody };

  void Advance();
  bool ParseRequestLine(const std::string& line);
  bool ParseHeaderLine(const std::string& line);
  void FinishHeaders();
  void Fail(int status, std::string message);

  ParserLimits limits_;
  std::string buffer_;
  std::size_t consumed_ = 0;  // bytes of buffer_ already parsed
  Phase phase_ = Phase::kRequestLine;
  State state_ = State::kNeedMore;
  HttpRequest request_;
  std::size_t header_bytes_ = 0;
  std::size_t body_expected_ = 0;
  int error_status_ = 400;
  std::string error_;
};

}  // namespace capplan::serve

#endif  // CAPPLAN_SERVE_HTTP_H_
