#ifndef CAPPLAN_SERVE_HANDLERS_H_
#define CAPPLAN_SERVE_HANDLERS_H_

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "serve/answer_cache.h"
#include "serve/estate_view.h"
#include "serve/http.h"

namespace capplan::serve {

// Routes capacity queries against the currently published EstateView.
// Endpoints (GET/HEAD only):
//
//   /healthz                         liveness; 503 until the first view
//   /healthz?deep=1                  readiness; additionally 503 while any
//                                    shard's health state is critical
//   /metrics                         Prometheus text of the wired registry
//   /v1/health                       deep health: per-shard state machine,
//                                    queue depth, quarantines, rollbacks
//   /v1/estate                       one summary row per watched instance
//   /v1/forecast?instance=&metric=[&horizon=]
//   /v1/breach?instance=&metric=[&threshold=]
//   /v1/headroom?instance=&metric=&capacity=
//
// Error mapping: unknown path or unknown instance/metric → 404; bad or
// missing query parameters → 400; method other than GET/HEAD → 405 with
// Allow; no published view yet, or no cached forecast for the instance →
// 503 + Retry-After; planner Result errors (empty/NaN forecasts, bad
// thresholds) → 422 carrying the StatusCode name and message. Successful
// /v1/* answers are cached per (path, canonical query) and invalidated by
// view swaps or TTL expiry.
//
// Handle() is thread-safe and lock-free on the view (one atomic load); the
// answer cache adds one short critical section.
class EstateQueryHandler {
 public:
  struct Options {
    AnswerCache::Options cache;
    int retry_after_seconds = 2;  // advertised on 503 responses
  };

  explicit EstateQueryHandler(
      const ViewChannel* channel,
      std::shared_ptr<obs::MetricsRegistry> registry = {})
      : EstateQueryHandler(channel, std::move(registry), Options()) {}
  EstateQueryHandler(const ViewChannel* channel,
                     std::shared_ptr<obs::MetricsRegistry> registry,
                     Options options);

  HttpResponse Handle(const HttpRequest& request);

  const AnswerCache& cache() const { return cache_; }

 private:
  HttpResponse Dispatch(const HttpRequest& request,
                        const std::shared_ptr<const EstateView>& view);
  HttpResponse HandleEstate(const EstateView& view);
  HttpResponse HandleHealth(const EstateView& view);
  HttpResponse HandleForecast(const HttpRequest& request,
                              const EstateView& view);
  HttpResponse HandleBreach(const HttpRequest& request,
                            const EstateView& view);
  HttpResponse HandleHeadroom(const HttpRequest& request,
                              const EstateView& view);
  HttpResponse HandleMetrics();

  // Resolves ?instance=&metric= to a view row, or fills `error` with the
  // 400/404/503 response explaining why it could not.
  const InstanceStatus* ResolveInstance(const HttpRequest& request,
                                        const EstateView& view,
                                        bool require_forecast,
                                        HttpResponse* error);

  HttpResponse ServiceUnavailable(const std::string& message) const;

  const ViewChannel* channel_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  Options options_;
  AnswerCache cache_;

  struct EndpointMetrics {
    obs::Counter requests;
    obs::Histogram latency;
  };
  EndpointMetrics m_forecast_;
  EndpointMetrics m_breach_;
  EndpointMetrics m_headroom_;
  EndpointMetrics m_estate_;
  EndpointMetrics m_health_;
  obs::Counter m_errors_;
};

}  // namespace capplan::serve

#endif  // CAPPLAN_SERVE_HANDLERS_H_
