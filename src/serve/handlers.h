#ifndef CAPPLAN_SERVE_HANDLERS_H_
#define CAPPLAN_SERVE_HANDLERS_H_

#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/slo.h"
#include "serve/answer_cache.h"
#include "serve/estate_view.h"
#include "serve/http.h"

namespace capplan::serve {

// Routes capacity queries against the currently published EstateView.
// Endpoints (GET/HEAD only):
//
//   /healthz                         liveness; 503 until the first view
//   /healthz?deep=1                  readiness; additionally 503 while any
//                                    shard's health state is critical
//   /metrics                         Prometheus text of the wired registry
//   /v1/health                       deep health: per-shard state machine,
//                                    queue depth, quarantines, rollbacks
//   /v1/estate                       one summary row per watched instance
//   /v1/forecast?instance=&metric=[&horizon=]
//   /v1/breach?instance=&metric=[&threshold=]
//   /v1/headroom?instance=&metric=&capacity=
//   /v1/decompose?key=               STL trend/seasonal/residual components
//                                    per detected period, plus robust-sigma
//                                    anomaly flags (docs/selection.md)
//   /v1/slo                          burn rates per registered SLO
//   /v1/debug/events?[key=&shard=&kind=&outcome=&min_duration_ms=&limit=]
//                                    merged wide-event snapshot, newest first
//   /v1/debug/slow?[same filters]    slowest buffered wide events
//
// Error mapping: unknown path or unknown instance/metric → 404; bad or
// missing query parameters → 400; method other than GET/HEAD → 405 with
// Allow; no published view yet, or no cached forecast for the instance →
// 503 + Retry-After; planner Result errors (empty/NaN forecasts, bad
// thresholds) → 422 carrying the StatusCode name and message. Successful
// /v1/* answers are cached per (path, canonical query) and invalidated by
// view swaps or TTL expiry — except the cache-exempt endpoints (/metrics,
// /v1/slo, /v1/debug/*), which must always reflect live recorder/registry
// state and therefore never touch the answer cache.
//
// Handle() is thread-safe and lock-free on the view (one atomic load); the
// answer cache adds one short critical section.
class EstateQueryHandler {
 public:
  struct Options {
    AnswerCache::Options cache;
    int retry_after_seconds = 2;  // advertised on 503 responses
    // SLO trackers served on /v1/slo and refreshed into capplan_slo_*
    // gauges on every /metrics scrape. The handler records each rendered
    // request against the "serve_latency" tracker when one is registered.
    std::shared_ptr<obs::SloSet> slos;
    // A request is "good" for the latency SLO when rendered under this.
    double latency_slo_threshold_ms = 250.0;
  };

  explicit EstateQueryHandler(
      const ViewChannel* channel,
      std::shared_ptr<obs::MetricsRegistry> registry = {})
      : EstateQueryHandler(channel, std::move(registry), Options()) {}
  EstateQueryHandler(const ViewChannel* channel,
                     std::shared_ptr<obs::MetricsRegistry> registry,
                     Options options);

  HttpResponse Handle(const HttpRequest& request);

  const AnswerCache& cache() const { return cache_; }

  // True for endpoints that must never be served from (or stored into) the
  // answer cache: /metrics and the debug/SLO surface expose live recorder
  // state, so a cached body would hide exactly the freshness an operator
  // is asking for.
  static bool CacheExempt(const std::string& path);

 private:
  HttpResponse Dispatch(const HttpRequest& request,
                        const std::shared_ptr<const EstateView>& view);
  HttpResponse HandleEstate(const EstateView& view);
  HttpResponse HandleHealth(const EstateView& view);
  HttpResponse HandleForecast(const HttpRequest& request,
                              const EstateView& view);
  HttpResponse HandleBreach(const HttpRequest& request,
                            const EstateView& view);
  HttpResponse HandleHeadroom(const HttpRequest& request,
                              const EstateView& view);
  HttpResponse HandleDecompose(const HttpRequest& request,
                               const EstateView& view);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleSlo();
  HttpResponse HandleDebugEvents(const HttpRequest& request);
  HttpResponse HandleDebugSlow(const HttpRequest& request);

  // Resolves ?instance=&metric= to a view row, or fills `error` with the
  // 400/404/503 response explaining why it could not.
  const InstanceStatus* ResolveInstance(const HttpRequest& request,
                                        const EstateView& view,
                                        bool require_forecast,
                                        HttpResponse* error);

  HttpResponse ServiceUnavailable(const std::string& message) const;

  const ViewChannel* channel_;
  std::shared_ptr<obs::MetricsRegistry> registry_;
  Options options_;
  AnswerCache cache_;

  struct EndpointMetrics {
    obs::Counter requests;
    obs::Histogram latency;
  };
  EndpointMetrics m_forecast_;
  EndpointMetrics m_breach_;
  EndpointMetrics m_headroom_;
  EndpointMetrics m_decompose_;
  EndpointMetrics m_estate_;
  EndpointMetrics m_health_;
  EndpointMetrics m_slo_;
  EndpointMetrics m_debug_events_;
  EndpointMetrics m_debug_slow_;
  obs::Counter m_errors_;
  obs::Counter m_trace_dropped_;
  obs::Counter m_events_dropped_;
};

}  // namespace capplan::serve

#endif  // CAPPLAN_SERVE_HANDLERS_H_
