#include "serve/http.h"

#include <algorithm>
#include <cctype>

namespace capplan::serve {

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

bool IsTokenChar(char c) {
  // RFC 7230 token charset, enough to validate method and header names.
  return std::isalnum(static_cast<unsigned char>(c)) != 0 ||
         std::string("!#$%&'*+-.^_`|~").find(c) != std::string::npos;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

const std::string* HttpRequest::FindHeader(const std::string& name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

const char* StatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 413: return "Payload Too Large";
    case 414: return "URI Too Long";
    case 422: return "Unprocessable Entity";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    case 505: return "HTTP Version Not Supported";
    default: return "Unknown";
  }
}

std::string SerializeResponse(const HttpResponse& response, bool keep_alive,
                              bool head_only) {
  std::string out;
  out.reserve(128 + (head_only ? 0 : response.body.size()));
  out += "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += StatusReason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n";
  for (const auto& [k, v] : response.headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "\r\n";
  if (!head_only) out += response.body;
  return out;
}

std::string UrlDecode(const std::string& in) {
  std::string out;
  out.reserve(in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    if (in[i] == '+') {
      out += ' ';
    } else if (in[i] == '%' && i + 2 < in.size() &&
               HexDigit(in[i + 1]) >= 0 && HexDigit(in[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(in[i + 1]) * 16 + HexDigit(in[i + 2]));
      i += 2;
    } else {
      out += in[i];
    }
  }
  return out;
}

RequestParser::RequestParser(ParserLimits limits) : limits_(limits) {}

void RequestParser::Fail(int status, std::string message) {
  state_ = State::kError;
  error_status_ = status;
  error_ = std::move(message);
}

RequestParser::State RequestParser::Feed(const char* data, std::size_t n) {
  if (state_ == State::kError) return state_;
  buffer_.append(data, n);
  if (state_ == State::kComplete) return state_;  // waiting for TakeRequest
  Advance();
  return state_;
}

HttpRequest RequestParser::TakeRequest() {
  HttpRequest out = std::move(request_);
  request_ = HttpRequest();
  buffer_.erase(0, consumed_);
  consumed_ = 0;
  phase_ = Phase::kRequestLine;
  header_bytes_ = 0;
  body_expected_ = 0;
  state_ = State::kNeedMore;
  Advance();  // pipelined bytes may already hold the next message
  return out;
}

void RequestParser::Advance() {
  while (state_ == State::kNeedMore) {
    if (phase_ == Phase::kBody) {
      if (buffer_.size() - consumed_ < body_expected_) return;
      request_.body = buffer_.substr(consumed_, body_expected_);
      consumed_ += body_expected_;
      state_ = State::kComplete;
      return;
    }
    const std::size_t eol = buffer_.find("\r\n", consumed_);
    if (eol == std::string::npos) {
      // Enforce limits on the unterminated tail too, so an attacker cannot
      // grow the buffer forever by never sending CRLF.
      const std::size_t pending = buffer_.size() - consumed_;
      if (phase_ == Phase::kRequestLine && pending > limits_.max_request_line) {
        Fail(414, "request line exceeds limit");
      } else if (phase_ == Phase::kHeaders &&
                 header_bytes_ + pending > limits_.max_header_bytes) {
        Fail(431, "header block exceeds limit");
      }
      return;
    }
    const std::string line = buffer_.substr(consumed_, eol - consumed_);
    consumed_ = eol + 2;
    if (phase_ == Phase::kRequestLine) {
      if (line.empty()) continue;  // tolerate leading blank lines (RFC 7230)
      if (line.size() > limits_.max_request_line) {
        Fail(414, "request line exceeds limit");
        return;
      }
      if (!ParseRequestLine(line)) return;
      phase_ = Phase::kHeaders;
    } else {  // Phase::kHeaders
      header_bytes_ += line.size() + 2;
      if (header_bytes_ > limits_.max_header_bytes) {
        Fail(431, "header block exceeds limit");
        return;
      }
      if (line.empty()) {
        FinishHeaders();
        continue;
      }
      if (!ParseHeaderLine(line)) return;
    }
  }
}

bool RequestParser::ParseRequestLine(const std::string& line) {
  for (char c : line) {
    if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
      Fail(400, "control character in request line");
      return false;
    }
  }
  const std::size_t sp1 = line.find(' ');
  const std::size_t sp2 = line.rfind(' ');
  if (sp1 == std::string::npos || sp2 == sp1) {
    Fail(400, "malformed request line");
    return false;
  }
  request_.method = line.substr(0, sp1);
  if (request_.method.empty() ||
      !std::all_of(request_.method.begin(), request_.method.end(),
                   [](char c) { return IsTokenChar(c) && std::isupper(
                                    static_cast<unsigned char>(c)); })) {
    Fail(400, "malformed method");
    return false;
  }
  if (request_.method != "GET" && request_.method != "HEAD" &&
      request_.method != "POST") {
    Fail(501, "method not implemented: " + request_.method);
    return false;
  }
  request_.target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (request_.target.empty() || request_.target[0] != '/' ||
      request_.target.find(' ') != std::string::npos) {
    Fail(400, "malformed request target");
    return false;
  }
  const std::string version = line.substr(sp2 + 1);
  if (version == "HTTP/1.1") {
    request_.version_minor = 1;
  } else if (version == "HTTP/1.0") {
    request_.version_minor = 0;
  } else if (version.rfind("HTTP/", 0) == 0) {
    Fail(505, "unsupported HTTP version " + version);
    return false;
  } else {
    Fail(400, "malformed HTTP version");
    return false;
  }
  // Split target into decoded path + query map.
  const std::size_t qpos = request_.target.find('?');
  request_.path = UrlDecode(request_.target.substr(0, qpos));
  if (qpos != std::string::npos) {
    const std::string qs = request_.target.substr(qpos + 1);
    std::size_t begin = 0;
    while (begin <= qs.size()) {
      std::size_t end = qs.find('&', begin);
      if (end == std::string::npos) end = qs.size();
      const std::string pair = qs.substr(begin, end - begin);
      if (!pair.empty()) {
        const std::size_t eq = pair.find('=');
        const std::string key = UrlDecode(pair.substr(0, eq));
        const std::string value =
            eq == std::string::npos ? "" : UrlDecode(pair.substr(eq + 1));
        if (!key.empty()) request_.query[key] = value;
      }
      begin = end + 1;
    }
  }
  return true;
}

bool RequestParser::ParseHeaderLine(const std::string& line) {
  const std::size_t colon = line.find(':');
  if (colon == std::string::npos || colon == 0) {
    Fail(400, "malformed header line");
    return false;
  }
  std::string name = line.substr(0, colon);
  if (!std::all_of(name.begin(), name.end(), IsTokenChar)) {
    Fail(400, "malformed header name");
    return false;
  }
  std::size_t vbegin = colon + 1;
  while (vbegin < line.size() &&
         (line[vbegin] == ' ' || line[vbegin] == '\t')) {
    ++vbegin;
  }
  std::size_t vend = line.size();
  while (vend > vbegin && (line[vend - 1] == ' ' || line[vend - 1] == '\t')) {
    --vend;
  }
  request_.headers.emplace_back(ToLower(std::move(name)),
                                line.substr(vbegin, vend - vbegin));
  return true;
}

void RequestParser::FinishHeaders() {
  // Keep-alive: HTTP/1.1 defaults on, 1.0 defaults off; the Connection
  // header overrides either way.
  request_.keep_alive = request_.version_minor >= 1;
  if (const std::string* conn = request_.FindHeader("connection")) {
    const std::string v = ToLower(*conn);
    if (v == "close") request_.keep_alive = false;
    if (v == "keep-alive") request_.keep_alive = true;
  }
  if (request_.FindHeader("transfer-encoding") != nullptr) {
    Fail(501, "transfer-encoding not supported");
    return;
  }
  body_expected_ = 0;
  if (const std::string* cl = request_.FindHeader("content-length")) {
    if (cl->empty() || !std::all_of(cl->begin(), cl->end(), [](char c) {
          return std::isdigit(static_cast<unsigned char>(c)) != 0;
        })) {
      Fail(400, "malformed Content-Length");
      return;
    }
    // Reject lengths that would overflow before comparing to the limit.
    if (cl->size() > 12) {
      Fail(413, "body exceeds limit");
      return;
    }
    body_expected_ = static_cast<std::size_t>(std::stoull(*cl));
    if (body_expected_ > limits_.max_body_bytes) {
      Fail(413, "body exceeds limit");
      return;
    }
  }
  phase_ = Phase::kBody;
  if (body_expected_ == 0) state_ = State::kComplete;
}

}  // namespace capplan::serve
