#include "math/matrix.h"

#include <cassert>
#include <cmath>

namespace capplan::math {

Matrix Matrix::Identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols());
    for (std::size_t c = 0; c < m.cols(); ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::ColumnVector(const std::vector<double>& v) {
  Matrix m(v.size(), 1);
  for (std::size_t i = 0; i < v.size(); ++i) m(i, 0) = v[i];
  return m;
}

Matrix Matrix::Transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  assert(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] + rhs.data_[i];
  }
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  assert(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) {
    out.data_[i] = data_[i] - rhs.data_[i];
  }
  return out;
}

Matrix Matrix::ScaledBy(double s) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * s;
  return out;
}

std::vector<double> Matrix::Apply(const std::vector<double>& v) const {
  assert(v.size() == cols_);
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += (*this)(r, c) * v[c];
    out[r] = s;
  }
  return out;
}

std::vector<double> Matrix::Row(std::size_t r) const {
  std::vector<double> out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

std::vector<double> Matrix::Col(std::size_t c) const {
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

double Matrix::Norm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b,
                                              double rank_tol) {
  const std::size_t m = a.rows(), n = a.cols();
  if (m < n) {
    return Status::InvalidArgument("least squares: fewer rows than columns");
  }
  if (b.size() != m) {
    return Status::InvalidArgument("least squares: b size mismatch");
  }
  // Householder QR, transforming a copy of A and b in place.
  Matrix r = a;
  std::vector<double> y = b;
  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector for column k.
    double norm = 0.0;
    for (std::size_t i = k; i < m; ++i) norm += r(i, k) * r(i, k);
    norm = std::sqrt(norm);
    if (norm < rank_tol) {
      return Status::ComputeError("least squares: rank deficient matrix");
    }
    const double alpha = (r(k, k) > 0.0) ? -norm : norm;
    std::vector<double> v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    double vtv = 0.0;
    for (double vi : v) vtv += vi * vi;
    if (vtv < rank_tol * rank_tol) {
      // Column already zero below the diagonal.
      r(k, k) = alpha;
      continue;
    }
    // Apply reflector to remaining columns of R.
    for (std::size_t j = k; j < n; ++j) {
      double dot = 0.0;
      for (std::size_t i = k; i < m; ++i) dot += v[i - k] * r(i, j);
      const double f = 2.0 * dot / vtv;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= f * v[i - k];
    }
    // Apply reflector to y.
    double dot = 0.0;
    for (std::size_t i = k; i < m; ++i) dot += v[i - k] * y[i];
    const double f = 2.0 * dot / vtv;
    for (std::size_t i = k; i < m; ++i) y[i] -= f * v[i - k];
  }
  // Back substitution on the upper-triangular R.
  std::vector<double> x(n, 0.0);
  for (std::size_t kk = n; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    if (std::fabs(r(k, k)) < rank_tol) {
      return Status::ComputeError("least squares: singular R");
    }
    double s = y[k];
    for (std::size_t j = k + 1; j < n; ++j) s -= r(k, j) * x[j];
    x[k] = s / r(k, k);
  }
  return x;
}

Result<Matrix> CholeskyFactor(const Matrix& s) {
  if (s.rows() != s.cols()) {
    return Status::InvalidArgument("cholesky: matrix not square");
  }
  const std::size_t n = s.rows();
  Matrix l(n, n);
  for (std::size_t j = 0; j < n; ++j) {
    double d = s(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= l(j, k) * l(j, k);
    if (d <= 0.0) {
      return Status::ComputeError("cholesky: matrix not positive definite");
    }
    l(j, j) = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double v = s(i, j);
      for (std::size_t k = 0; k < j; ++k) v -= l(i, k) * l(j, k);
      l(i, j) = v / l(j, j);
    }
  }
  return l;
}

Result<std::vector<double>> SolveCholesky(const Matrix& s,
                                          const std::vector<double>& b) {
  if (b.size() != s.rows()) {
    return Status::InvalidArgument("cholesky solve: b size mismatch");
  }
  CAPPLAN_ASSIGN_OR_RETURN(Matrix l, CholeskyFactor(s));
  const std::size_t n = l.rows();
  // Forward solve L z = b.
  std::vector<double> z(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double v = b[i];
    for (std::size_t k = 0; k < i; ++k) v -= l(i, k) * z[k];
    z[i] = v / l(i, i);
  }
  // Back solve L^T x = z.
  std::vector<double> x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double v = z[i];
    for (std::size_t k = i + 1; k < n; ++k) v -= l(k, i) * x[k];
    x[i] = v / l(i, i);
  }
  return x;
}

Result<Matrix> Inverse(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("inverse: matrix not square");
  }
  const std::size_t n = a.rows();
  Matrix work = a;
  Matrix inv = Matrix::Identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivot.
    std::size_t pivot = col;
    double best = std::fabs(work(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::fabs(work(r, col)) > best) {
        best = std::fabs(work(r, col));
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::ComputeError("inverse: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(work(pivot, c), work(col, c));
        std::swap(inv(pivot, c), inv(col, c));
      }
    }
    const double d = work(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      work(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double f = work(r, col);
      if (f == 0.0) continue;
      for (std::size_t c = 0; c < n; ++c) {
        work(r, c) -= f * work(col, c);
        inv(r, c) -= f * inv(col, c);
      }
    }
  }
  return inv;
}

}  // namespace capplan::math
