#ifndef CAPPLAN_MATH_MATRIX_H_
#define CAPPLAN_MATH_MATRIX_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace capplan::math {

// Dense row-major matrix of doubles. Sized for the small regression and
// state-space problems in this library (tens to a few hundred columns);
// not a general BLAS replacement.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix Identity(std::size_t n);
  // Builds a matrix from nested initializer data; all rows must be equal
  // length.
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);
  // Column vector from `v`.
  static Matrix ColumnVector(const std::vector<double>& v);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  Matrix Transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix ScaledBy(double s) const;

  // Matrix-vector product (v.size() must equal cols()).
  std::vector<double> Apply(const std::vector<double>& v) const;

  std::vector<double> Row(std::size_t r) const;
  std::vector<double> Col(std::size_t c) const;

  // Frobenius norm.
  double Norm() const;

 private:
  std::size_t rows_, cols_;
  std::vector<double> data_;
};

// Solves the least-squares problem min ||A x - b||_2 via Householder QR.
// Requires A.rows() >= A.cols() and full column rank (within `rank_tol`).
Result<std::vector<double>> SolveLeastSquares(const Matrix& a,
                                              const std::vector<double>& b,
                                              double rank_tol = 1e-10);

// Solves S x = b for symmetric positive definite S via Cholesky.
Result<std::vector<double>> SolveCholesky(const Matrix& s,
                                          const std::vector<double>& b);

// Cholesky factor L (lower triangular, S = L L^T) of an SPD matrix.
Result<Matrix> CholeskyFactor(const Matrix& s);

// Inverse of a square matrix via Gauss-Jordan with partial pivoting.
Result<Matrix> Inverse(const Matrix& a);

}  // namespace capplan::math

#endif  // CAPPLAN_MATH_MATRIX_H_
