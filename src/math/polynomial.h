#ifndef CAPPLAN_MATH_POLYNOMIAL_H_
#define CAPPLAN_MATH_POLYNOMIAL_H_

#include <cstddef>
#include <vector>

namespace capplan::math {

// Lag-polynomial utilities for ARIMA-family models.
//
// A lag polynomial c(B) = c0 + c1*B + c2*B^2 + ... is stored as the
// coefficient vector {c0, c1, c2, ...}. AR polynomials are written
// phi(B) = 1 - phi1*B - ... - php*B^p and MA polynomials
// theta(B) = 1 + theta1*B + ... + thetaq*B^q; the helpers below convert
// between "coefficient" form (phi1..php) and polynomial form.

// Product of two lag polynomials.
std::vector<double> PolyMultiply(const std::vector<double>& a,
                                 const std::vector<double>& b);

// phi coefficients {phi1..php} -> polynomial {1, -phi1, ..., -php}.
std::vector<double> ArPolynomial(const std::vector<double>& phi);

// theta coefficients {theta1..thetaq} -> polynomial {1, theta1, ..., thetaq}.
std::vector<double> MaPolynomial(const std::vector<double>& theta);

// Seasonal version: coefficients act at lags s, 2s, ...:
// {1, 0, ..., -Phi1 @ lag s, ...}.
std::vector<double> SeasonalArPolynomial(const std::vector<double>& phi,
                                         std::size_t season);
std::vector<double> SeasonalMaPolynomial(const std::vector<double>& theta,
                                         std::size_t season);

// Differencing polynomial (1 - B)^d * (1 - B^s)^D.
std::vector<double> DifferencePolynomial(int d, int seasonal_d,
                                         std::size_t season);

// Extracts phi coefficients back out of an AR polynomial
// ({1, -phi1, ...} -> {phi1, ...}).
std::vector<double> ArCoefficientsFromPolynomial(
    const std::vector<double>& poly);
// ({1, theta1, ...} -> {theta1, ...}).
std::vector<double> MaCoefficientsFromPolynomial(
    const std::vector<double>& poly);

// psi-weights of the MA(infinity) representation of an ARMA(p,q) process:
// psi(B) = theta(B) / phi(B), returning {psi0=1, psi1, ..., psi_{n-1}}.
// Used for forecast-error variances.
std::vector<double> PsiWeights(const std::vector<double>& phi,
                               const std::vector<double>& theta,
                               std::size_t n);

// Maps an unconstrained real vector to AR coefficients of a stationary
// process (Monahan 1984): u_i -> partial autocorrelation tanh(u_i) ->
// phi via the Durbin-Levinson recursion. The same map yields invertible MA
// coefficients. Monotone and smooth, so Nelder-Mead can optimize over the
// unconstrained space.
std::vector<double> StationaryFromUnconstrained(const std::vector<double>& u);

// Inverse of StationaryFromUnconstrained for phi strictly inside the
// stationarity region; used to initialize optimizers from heuristic fits.
std::vector<double> UnconstrainedFromStationary(const std::vector<double>& phi);

// True if all roots of the AR polynomial 1 - phi1 z - ... - php z^p lie
// outside the unit circle (checked via the PACF recursion).
bool IsStationary(const std::vector<double>& phi);

}  // namespace capplan::math

#endif  // CAPPLAN_MATH_POLYNOMIAL_H_
