#include "math/distributions.h"

#include <cmath>
#include <limits>

namespace capplan::math {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kSqrt2 = 1.41421356237309504880;
}  // namespace

double NormalPdf(double x) {
  return std::exp(-0.5 * x * x) / std::sqrt(2.0 * kPi);
}

double NormalCdf(double x) { return 0.5 * std::erfc(-x / kSqrt2); }

double NormalQuantile(double p) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Acklam's rational approximation.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = NormalCdf(x) - p;
  const double u = e * std::sqrt(2.0 * kPi) * std::exp(0.5 * x * x);
  x = x - u / (1.0 + 0.5 * x * u);
  return x;
}

double LogGamma(double x) {
  // Lanczos approximation, g = 7, n = 9.
  static const double coef[] = {
      0.99999999999980993,  676.5203681218851,    -1259.1392167224028,
      771.32342877765313,   -176.61502916214059,  12.507343278686905,
      -0.13857109526572012, 9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(kPi / std::sin(kPi * x)) - LogGamma(1.0 - x);
  }
  x -= 1.0;
  double sum = coef[0];
  for (int i = 1; i < 9; ++i) sum += coef[i] / (x + static_cast<double>(i));
  const double t = x + 7.5;
  return 0.5 * std::log(2.0 * kPi) + (x + 0.5) * std::log(t) - t +
         std::log(sum);
}

namespace {

// Continued-fraction evaluation of the incomplete beta function (Numerical
// Recipes `betacf`).
double BetaContinuedFraction(double x, double a, double b) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;
  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const double m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double RegularizedIncompleteBeta(double x, double a, double b) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(x, a, b) / a;
  }
  return 1.0 - front * BetaContinuedFraction(1.0 - x, b, a) / b;
}

double StudentTCdf(double x, double nu) {
  if (nu <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.5;
  const double t2 = x * x;
  const double ib =
      RegularizedIncompleteBeta(nu / (nu + t2), 0.5 * nu, 0.5);
  return x > 0.0 ? 1.0 - 0.5 * ib : 0.5 * ib;
}

double StudentTQuantile(double p, double nu) {
  if (p <= 0.0) return -std::numeric_limits<double>::infinity();
  if (p >= 1.0) return std::numeric_limits<double>::infinity();
  // Bisection seeded from the normal quantile; the t CDF is monotone.
  double lo = NormalQuantile(p) - 10.0;
  double hi = NormalQuantile(p) + 10.0;
  while (StudentTCdf(lo, nu) > p) lo -= 10.0;
  while (StudentTCdf(hi, nu) < p) hi += 10.0;
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (StudentTCdf(mid, nu) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  return 0.5 * (lo + hi);
}

double RegularizedGammaP(double a, double x) {
  if (x < 0.0 || a <= 0.0) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  if (x < a + 1.0) {
    // Series expansion.
    double ap = a;
    double sum = 1.0 / a;
    double del = sum;
    for (int i = 0; i < 500; ++i) {
      ap += 1.0;
      del *= x / ap;
      sum += del;
      if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
    }
    return sum * std::exp(-x + a * std::log(x) - LogGamma(a));
  }
  // Continued fraction for Q(a,x), then P = 1 - Q.
  constexpr double kFpMin = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / kFpMin;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i <= 500; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = b + an / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  const double q = std::exp(-x + a * std::log(x) - LogGamma(a)) * h;
  return 1.0 - q;
}

double ChiSquaredCdf(double x, double k) {
  if (x <= 0.0) return 0.0;
  return RegularizedGammaP(0.5 * k, 0.5 * x);
}

}  // namespace capplan::math
