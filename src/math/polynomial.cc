#include "math/polynomial.h"

#include <algorithm>
#include <cmath>

namespace capplan::math {

std::vector<double> PolyMultiply(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<double> out(a.size() + b.size() - 1, 0.0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == 0.0) continue;
    for (std::size_t j = 0; j < b.size(); ++j) {
      out[i + j] += a[i] * b[j];
    }
  }
  return out;
}

std::vector<double> ArPolynomial(const std::vector<double>& phi) {
  std::vector<double> poly(phi.size() + 1, 0.0);
  poly[0] = 1.0;
  for (std::size_t i = 0; i < phi.size(); ++i) poly[i + 1] = -phi[i];
  return poly;
}

std::vector<double> MaPolynomial(const std::vector<double>& theta) {
  std::vector<double> poly(theta.size() + 1, 0.0);
  poly[0] = 1.0;
  for (std::size_t i = 0; i < theta.size(); ++i) poly[i + 1] = theta[i];
  return poly;
}

std::vector<double> SeasonalArPolynomial(const std::vector<double>& phi,
                                         std::size_t season) {
  std::vector<double> poly(phi.size() * season + 1, 0.0);
  poly[0] = 1.0;
  for (std::size_t i = 0; i < phi.size(); ++i) {
    poly[(i + 1) * season] = -phi[i];
  }
  return poly;
}

std::vector<double> SeasonalMaPolynomial(const std::vector<double>& theta,
                                         std::size_t season) {
  std::vector<double> poly(theta.size() * season + 1, 0.0);
  poly[0] = 1.0;
  for (std::size_t i = 0; i < theta.size(); ++i) {
    poly[(i + 1) * season] = theta[i];
  }
  return poly;
}

std::vector<double> DifferencePolynomial(int d, int seasonal_d,
                                         std::size_t season) {
  std::vector<double> poly{1.0};
  const std::vector<double> diff{1.0, -1.0};
  for (int i = 0; i < d; ++i) poly = PolyMultiply(poly, diff);
  if (season > 0) {
    std::vector<double> sdiff(season + 1, 0.0);
    sdiff[0] = 1.0;
    sdiff[season] = -1.0;
    for (int i = 0; i < seasonal_d; ++i) poly = PolyMultiply(poly, sdiff);
  }
  return poly;
}

std::vector<double> ArCoefficientsFromPolynomial(
    const std::vector<double>& poly) {
  std::vector<double> phi;
  phi.reserve(poly.size() > 0 ? poly.size() - 1 : 0);
  for (std::size_t i = 1; i < poly.size(); ++i) phi.push_back(-poly[i]);
  return phi;
}

std::vector<double> MaCoefficientsFromPolynomial(
    const std::vector<double>& poly) {
  std::vector<double> theta;
  theta.reserve(poly.size() > 0 ? poly.size() - 1 : 0);
  for (std::size_t i = 1; i < poly.size(); ++i) theta.push_back(poly[i]);
  return theta;
}

std::vector<double> PsiWeights(const std::vector<double>& phi,
                               const std::vector<double>& theta,
                               std::size_t n) {
  std::vector<double> psi(n, 0.0);
  if (n == 0) return psi;
  psi[0] = 1.0;
  for (std::size_t j = 1; j < n; ++j) {
    double v = (j <= theta.size()) ? theta[j - 1] : 0.0;
    for (std::size_t i = 1; i <= phi.size() && i <= j; ++i) {
      v += phi[i - 1] * psi[j - i];
    }
    psi[j] = v;
  }
  return psi;
}

// Keeps partial autocorrelations strictly inside (-1, 1): tanh of a large
// argument rounds to 1.0 in double precision, which would put the implied
// AR process exactly on the unit circle and break the inverse recursion.
constexpr double kPacfScale = 0.999;

std::vector<double> StationaryFromUnconstrained(const std::vector<double>& u) {
  const std::size_t p = u.size();
  // Partial autocorrelations in (-kPacfScale, kPacfScale).
  std::vector<double> r(p);
  for (std::size_t i = 0; i < p; ++i) r[i] = kPacfScale * std::tanh(u[i]);
  // Durbin-Levinson: build phi^{(k)} from phi^{(k-1)} and r[k-1].
  std::vector<double> phi(p, 0.0), prev(p, 0.0);
  for (std::size_t k = 0; k < p; ++k) {
    phi[k] = r[k];
    for (std::size_t j = 0; j < k; ++j) {
      phi[j] = prev[j] - r[k] * prev[k - 1 - j];
    }
    prev = phi;
  }
  return phi;
}

std::vector<double> UnconstrainedFromStationary(
    const std::vector<double>& phi_in) {
  // Invert the Durbin-Levinson recursion to recover partial autocorrelations.
  std::vector<double> work = phi_in;
  const std::size_t p = work.size();
  std::vector<double> pacf(p, 0.0);
  for (std::size_t kk = p; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    const double a = work[k];
    pacf[k] = a;
    if (std::fabs(a) >= 1.0) {
      // Outside the stationary region; clamp.
      pacf[k] = std::copysign(0.999, a);
    }
    std::vector<double> prev(k, 0.0);
    const double denom = 1.0 - pacf[k] * pacf[k];
    for (std::size_t j = 0; j < k; ++j) {
      prev[j] = (work[j] + pacf[k] * work[k - 1 - j]) / denom;
    }
    for (std::size_t j = 0; j < k; ++j) work[j] = prev[j];
  }
  std::vector<double> u(p);
  for (std::size_t i = 0; i < p; ++i) {
    const double r =
        std::clamp(pacf[i] / kPacfScale, -0.999999, 0.999999);
    u[i] = std::atanh(r);
  }
  return u;
}

bool IsStationary(const std::vector<double>& phi) {
  // Run the inverse Durbin-Levinson; stationary iff every implied partial
  // autocorrelation is in (-1, 1).
  std::vector<double> work = phi;
  const std::size_t p = work.size();
  for (std::size_t kk = p; kk > 0; --kk) {
    const std::size_t k = kk - 1;
    const double a = work[k];
    if (std::fabs(a) >= 1.0) return false;
    const double denom = 1.0 - a * a;
    std::vector<double> prev(k, 0.0);
    for (std::size_t j = 0; j < k; ++j) {
      prev[j] = (work[j] + a * work[k - 1 - j]) / denom;
    }
    for (std::size_t j = 0; j < k; ++j) work[j] = prev[j];
  }
  return true;
}

}  // namespace capplan::math
