#ifndef CAPPLAN_MATH_OPTIMIZE_H_
#define CAPPLAN_MATH_OPTIMIZE_H_

#include <functional>
#include <vector>

#include "common/result.h"

namespace capplan::math {

// Objective mapping a parameter vector to a scalar cost. Implementations may
// return +inf (or NaN, treated as +inf) for infeasible points.
using Objective = std::function<double(const std::vector<double>&)>;

struct NelderMeadOptions {
  int max_iterations = 2000;
  // Convergence: stop when the simplex function-value spread and the simplex
  // diameter both fall below these tolerances.
  double f_tolerance = 1e-9;
  double x_tolerance = 1e-8;
  // Additional relative convergence test, disabled at 0: stop as soon as the
  // function-value spread falls below this fraction of |best value|,
  // regardless of the simplex diameter. Warm-started fits set this — their
  // seed vertex is already near the optimum, so collapsing the simplex to
  // the absolute tolerances buys nothing the caller can observe.
  double f_tolerance_relative = 0.0;
  // Initial simplex edge length per coordinate (absolute).
  double initial_step = 0.25;
  // Number of random restarts from perturbed best points (0 = single run).
  int restarts = 0;
  // Seed for restart perturbations.
  unsigned seed = 42;
  // Extra points injected as vertices of the initial simplex (warm starts:
  // e.g. the converged coefficients of a neighbouring model). Points whose
  // dimension differs from x0, or that coincide with x0, are ignored; at
  // most dim(x0) seeds are used, replacing the default axis-offset vertices
  // from the last coordinate backwards.
  std::vector<std::vector<double>> seed_points;
};

struct OptimizeOutcome {
  std::vector<double> x;    // best parameters found
  double fx = 0.0;          // objective at x
  int iterations = 0;       // iterations consumed (across restarts)
  bool converged = false;   // tolerances met before iteration cap
};

// Derivative-free Nelder-Mead downhill simplex minimization. Suitable for
// the smooth low-dimensional likelihood/SSE surfaces fitted in this library
// (ARIMA CSS, ETS, TBATS). Returns an error only for empty input or an
// objective that is non-finite at the start point.
Result<OptimizeOutcome> NelderMead(const Objective& objective,
                                   const std::vector<double>& x0,
                                   const NelderMeadOptions& options = {});

// Minimizes a 1-D function on [lo, hi] by golden-section search.
double GoldenSectionMinimize(const std::function<double(double)>& f,
                             double lo, double hi, double tol = 1e-8);

}  // namespace capplan::math

#endif  // CAPPLAN_MATH_OPTIMIZE_H_
