#include "math/fft.h"

#include <cmath>

#include "math/vec.h"

namespace capplan::math {

namespace {

constexpr double kPi = 3.14159265358979323846;

bool IsPowerOfTwo(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

std::size_t NextPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// In-place iterative radix-2 Cooley-Tukey; x.size() must be a power of two.
void Radix2(std::vector<std::complex<double>>& x, bool inverse) {
  const std::size_t n = x.size();
  if (n <= 1) return;
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(x[i], x[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double ang = 2.0 * kPi / static_cast<double>(len) *
                       (inverse ? 1.0 : -1.0);
    const std::complex<double> wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const std::complex<double> u = x[i + k];
        const std::complex<double> v = x[i + k + len / 2] * w;
        x[i + k] = u + v;
        x[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& v : x) v /= static_cast<double>(n);
  }
}

// Bluestein's algorithm: DFT of arbitrary length via convolution on a
// power-of-two grid.
std::vector<std::complex<double>> Bluestein(
    const std::vector<std::complex<double>>& x, bool inverse) {
  const std::size_t n = x.size();
  const double sign = inverse ? 1.0 : -1.0;
  // Chirp: w[j] = exp(sign * i * pi * j^2 / n).
  std::vector<std::complex<double>> chirp(n);
  for (std::size_t j = 0; j < n; ++j) {
    // j^2 mod 2n keeps the argument small for numerical stability.
    const unsigned long long j2 =
        (static_cast<unsigned long long>(j) * j) % (2ULL * n);
    const double ang = sign * kPi * static_cast<double>(j2) /
                       static_cast<double>(n);
    chirp[j] = std::complex<double>(std::cos(ang), std::sin(ang));
  }
  const std::size_t m = NextPowerOfTwo(2 * n - 1);
  std::vector<std::complex<double>> a(m, {0.0, 0.0});
  std::vector<std::complex<double>> b(m, {0.0, 0.0});
  for (std::size_t j = 0; j < n; ++j) a[j] = x[j] * chirp[j];
  for (std::size_t j = 0; j < n; ++j) {
    b[j] = std::conj(chirp[j]);
    if (j != 0) b[m - j] = std::conj(chirp[j]);
  }
  Radix2(a, /*inverse=*/false);
  Radix2(b, /*inverse=*/false);
  for (std::size_t j = 0; j < m; ++j) a[j] *= b[j];
  Radix2(a, /*inverse=*/true);
  std::vector<std::complex<double>> out(n);
  for (std::size_t j = 0; j < n; ++j) out[j] = a[j] * chirp[j];
  if (inverse) {
    for (auto& v : out) v /= static_cast<double>(n);
  }
  return out;
}

}  // namespace

std::vector<std::complex<double>> Fft(
    const std::vector<std::complex<double>>& x) {
  if (x.size() <= 1) return x;
  if (IsPowerOfTwo(x.size())) {
    std::vector<std::complex<double>> out = x;
    Radix2(out, /*inverse=*/false);
    return out;
  }
  return Bluestein(x, /*inverse=*/false);
}

std::vector<std::complex<double>> InverseFft(
    const std::vector<std::complex<double>>& x) {
  if (x.size() <= 1) return x;
  if (IsPowerOfTwo(x.size())) {
    std::vector<std::complex<double>> out = x;
    Radix2(out, /*inverse=*/true);
    return out;
  }
  return Bluestein(x, /*inverse=*/true);
}

std::vector<std::complex<double>> FftReal(const std::vector<double>& x) {
  std::vector<std::complex<double>> cx(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) cx[i] = {x[i], 0.0};
  return Fft(cx);
}

std::vector<double> Periodogram(const std::vector<double>& x) {
  const std::size_t n = x.size();
  if (n < 2) return {};
  std::vector<double> centered = Demean(x);
  const std::vector<std::complex<double>> spec = FftReal(centered);
  const std::size_t half = n / 2;
  std::vector<double> out(half);
  for (std::size_t k = 1; k <= half; ++k) {
    out[k - 1] = std::norm(spec[k]) / static_cast<double>(n);
  }
  return out;
}

}  // namespace capplan::math
