#ifndef CAPPLAN_MATH_FFT_H_
#define CAPPLAN_MATH_FFT_H_

#include <complex>
#include <cstddef>
#include <vector>

namespace capplan::math {

// Discrete Fourier transforms used for frequency-domain seasonality
// detection (paper Section 4, "Frequency Domain ... Fast Fourier Transform").
//
// Power-of-two lengths use iterative radix-2 Cooley-Tukey; other lengths use
// Bluestein's chirp-z algorithm (which itself runs on the radix-2 kernel),
// so transforms are exact for arbitrary n.

// Forward DFT: X[k] = sum_j x[j] * exp(-2*pi*i*j*k/n).
std::vector<std::complex<double>> Fft(
    const std::vector<std::complex<double>>& x);

// Inverse DFT (normalized by 1/n).
std::vector<std::complex<double>> InverseFft(
    const std::vector<std::complex<double>>& x);

// Forward DFT of a real signal.
std::vector<std::complex<double>> FftReal(const std::vector<double>& x);

// Periodogram ordinates I(f_k) = |X[k]|^2 / n for k = 1..n/2 (the DC term is
// excluded), computed on the mean-removed signal. Entry k-1 corresponds to
// frequency k/n cycles per sample, i.e. period n/k samples.
std::vector<double> Periodogram(const std::vector<double>& x);

}  // namespace capplan::math

#endif  // CAPPLAN_MATH_FFT_H_
