#include "math/optimize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <random>

namespace capplan::math {

namespace {

double SafeEval(const Objective& f, const std::vector<double>& x) {
  const double v = f(x);
  if (std::isnan(v)) return std::numeric_limits<double>::infinity();
  return v;
}

struct SimplexResult {
  std::vector<double> x;
  double fx;
  int iterations;
  bool converged;
};

SimplexResult RunSimplex(const Objective& f, const std::vector<double>& x0,
                         const NelderMeadOptions& opt, int budget) {
  const std::size_t n = x0.size();
  // Standard coefficients.
  const double alpha = 1.0;   // reflection
  const double gamma = 2.0;   // expansion
  const double rho = 0.5;     // contraction
  const double sigma = 0.5;   // shrink

  std::vector<std::vector<double>> pts(n + 1, x0);
  for (std::size_t i = 0; i < n; ++i) {
    double step = opt.initial_step;
    if (x0[i] != 0.0) step = std::max(step, 0.1 * std::fabs(x0[i]));
    pts[i + 1][i] += step;
  }
  // Warm-start vertices replace axis-offset vertices from the back.
  std::size_t seeded = 0;
  for (const auto& seed : opt.seed_points) {
    if (seeded >= n) break;
    if (seed.size() != n || seed == x0) continue;
    pts[n - seeded] = seed;
    ++seeded;
  }
  std::vector<double> fv(n + 1);
  for (std::size_t i = 0; i <= n; ++i) fv[i] = SafeEval(f, pts[i]);

  int iter = 0;
  bool converged = false;
  std::vector<std::size_t> order(n + 1);
  while (iter < budget) {
    ++iter;
    // Order vertices by objective.
    for (std::size_t i = 0; i <= n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return fv[a] < fv[b]; });
    const std::size_t best = order[0];
    const std::size_t worst = order[n];
    const std::size_t second_worst = order[n - 1];

    // Convergence checks.
    double diam = 0.0;
    for (std::size_t i = 0; i <= n; ++i) {
      for (std::size_t d = 0; d < n; ++d) {
        diam = std::max(diam, std::fabs(pts[i][d] - pts[best][d]));
      }
    }
    const double f_spread = std::fabs(fv[worst] - fv[best]);
    if (f_spread < opt.f_tolerance && diam < opt.x_tolerance) {
      converged = true;
      break;
    }
    if (opt.f_tolerance_relative > 0.0 &&
        f_spread < opt.f_tolerance_relative * std::fabs(fv[best])) {
      converged = true;
      break;
    }

    // Centroid excluding the worst vertex.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (std::size_t d = 0; d < n; ++d) centroid[d] += pts[i][d];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coef) {
      std::vector<double> x(n);
      for (std::size_t d = 0; d < n; ++d) {
        x[d] = centroid[d] + coef * (centroid[d] - pts[worst][d]);
      }
      return x;
    };

    const std::vector<double> xr = blend(alpha);
    const double fr = SafeEval(f, xr);
    if (fr < fv[best]) {
      const std::vector<double> xe = blend(alpha * gamma);
      const double fe = SafeEval(f, xe);
      if (fe < fr) {
        pts[worst] = xe;
        fv[worst] = fe;
      } else {
        pts[worst] = xr;
        fv[worst] = fr;
      }
      continue;
    }
    if (fr < fv[second_worst]) {
      pts[worst] = xr;
      fv[worst] = fr;
      continue;
    }
    // Contraction (outside if the reflected point improved on the worst).
    if (fr < fv[worst]) {
      const std::vector<double> xc = blend(alpha * rho);
      const double fc = SafeEval(f, xc);
      if (fc <= fr) {
        pts[worst] = xc;
        fv[worst] = fc;
        continue;
      }
    } else {
      const std::vector<double> xc = blend(-rho);
      const double fc = SafeEval(f, xc);
      if (fc < fv[worst]) {
        pts[worst] = xc;
        fv[worst] = fc;
        continue;
      }
    }
    // Shrink toward the best vertex.
    for (std::size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (std::size_t d = 0; d < n; ++d) {
        pts[i][d] = pts[best][d] + sigma * (pts[i][d] - pts[best][d]);
      }
      fv[i] = SafeEval(f, pts[i]);
    }
  }

  std::size_t best = 0;
  for (std::size_t i = 1; i <= n; ++i) {
    if (fv[i] < fv[best]) best = i;
  }
  return {pts[best], fv[best], iter, converged};
}

}  // namespace

Result<OptimizeOutcome> NelderMead(const Objective& objective,
                                   const std::vector<double>& x0,
                                   const NelderMeadOptions& options) {
  if (x0.empty()) {
    return Status::InvalidArgument("NelderMead: empty start point");
  }
  if (!std::isfinite(SafeEval(objective, x0))) {
    return Status::InvalidArgument(
        "NelderMead: objective not finite at start point");
  }
  SimplexResult best =
      RunSimplex(objective, x0, options, options.max_iterations);
  std::mt19937 rng(options.seed);
  std::normal_distribution<double> jitter(0.0, options.initial_step);
  for (int r = 0; r < options.restarts; ++r) {
    std::vector<double> start = best.x;
    for (double& v : start) v += jitter(rng);
    if (!std::isfinite(SafeEval(objective, start))) continue;
    SimplexResult attempt =
        RunSimplex(objective, start, options, options.max_iterations);
    attempt.iterations += best.iterations;
    if (attempt.fx < best.fx) {
      best = attempt;
    } else {
      best.iterations = attempt.iterations;
    }
  }
  OptimizeOutcome out;
  out.x = best.x;
  out.fx = best.fx;
  out.iterations = best.iterations;
  out.converged = best.converged;
  return out;
}

double GoldenSectionMinimize(const std::function<double(double)>& f,
                             double lo, double hi, double tol) {
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = lo, b = hi;
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c), fd = f(d);
  while (b - a > tol) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  return 0.5 * (a + b);
}

}  // namespace capplan::math
