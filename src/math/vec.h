#ifndef CAPPLAN_MATH_VEC_H_
#define CAPPLAN_MATH_VEC_H_

#include <cstddef>
#include <vector>

namespace capplan::math {

// Basic statistics over a double vector. All functions return 0.0 for empty
// input unless stated otherwise; variance uses the (n-1) denominator when
// `sample` is true and n > 1.

double Sum(const std::vector<double>& x);
double Mean(const std::vector<double>& x);
double Variance(const std::vector<double>& x, bool sample = true);
double StdDev(const std::vector<double>& x, bool sample = true);
double Min(const std::vector<double>& x);
double Max(const std::vector<double>& x);

// Median; averages the two middle elements for even n. Copies the input.
double Median(std::vector<double> x);

// Linear `q`-quantile (q in [0,1]) with linear interpolation between order
// statistics (type-7, the numpy/R default). Copies the input.
double Quantile(std::vector<double> x, double q);

// Pearson correlation of x and y (must be the same length, >= 2).
double Correlation(const std::vector<double>& x, const std::vector<double>& y);

// Element-wise helpers; inputs must be the same length.
std::vector<double> Add(const std::vector<double>& x,
                        const std::vector<double>& y);
std::vector<double> Subtract(const std::vector<double>& x,
                             const std::vector<double>& y);
std::vector<double> Scale(const std::vector<double>& x, double factor);

// Dot product; inputs must be the same length.
double Dot(const std::vector<double>& x, const std::vector<double>& y);

// x[i] - shift for every element.
std::vector<double> Demean(const std::vector<double>& x);

// Evenly spaced values: n values from start with the given step.
std::vector<double> Arange(double start, double step, std::size_t n);

}  // namespace capplan::math

#endif  // CAPPLAN_MATH_VEC_H_
