#ifndef CAPPLAN_MATH_DISTRIBUTIONS_H_
#define CAPPLAN_MATH_DISTRIBUTIONS_H_

namespace capplan::math {

// Standard normal density.
double NormalPdf(double x);

// Standard normal CDF, accurate to ~1e-15 via erfc.
double NormalCdf(double x);

// Standard normal quantile (inverse CDF) for p in (0,1); Acklam's rational
// approximation refined by one Halley step (relative error < 1e-12).
double NormalQuantile(double p);

// Student-t CDF with `nu` degrees of freedom.
double StudentTCdf(double x, double nu);

// Student-t quantile for p in (0,1).
double StudentTQuantile(double p, double nu);

// Chi-squared CDF with `k` degrees of freedom (k > 0).
double ChiSquaredCdf(double x, double k);

// Regularized lower incomplete gamma P(a, x); used by the chi-squared CDF.
double RegularizedGammaP(double a, double x);

// Log of the gamma function (Lanczos approximation).
double LogGamma(double x);

// Regularized incomplete beta function I_x(a, b); used by the t CDF.
double RegularizedIncompleteBeta(double x, double a, double b);

}  // namespace capplan::math

#endif  // CAPPLAN_MATH_DISTRIBUTIONS_H_
