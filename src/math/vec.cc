#include "math/vec.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace capplan::math {

double Sum(const std::vector<double>& x) {
  return std::accumulate(x.begin(), x.end(), 0.0);
}

double Mean(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return Sum(x) / static_cast<double>(x.size());
}

double Variance(const std::vector<double>& x, bool sample) {
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mu = Mean(x);
  double ss = 0.0;
  for (double v : x) ss += (v - mu) * (v - mu);
  const double denom = sample ? static_cast<double>(n - 1)
                              : static_cast<double>(n);
  return ss / denom;
}

double StdDev(const std::vector<double>& x, bool sample) {
  return std::sqrt(Variance(x, sample));
}

double Min(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return *std::min_element(x.begin(), x.end());
}

double Max(const std::vector<double>& x) {
  if (x.empty()) return 0.0;
  return *std::max_element(x.begin(), x.end());
}

double Median(std::vector<double> x) {
  if (x.empty()) return 0.0;
  const std::size_t n = x.size();
  const std::size_t mid = n / 2;
  std::nth_element(x.begin(), x.begin() + mid, x.end());
  double hi = x[mid];
  if (n % 2 == 1) return hi;
  double lo = *std::max_element(x.begin(), x.begin() + mid);
  return 0.5 * (lo + hi);
}

double Quantile(std::vector<double> x, double q) {
  if (x.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(x.begin(), x.end());
  const double pos = q * static_cast<double>(x.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(pos));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return x[lo] + frac * (x[hi] - x[lo]);
}

double Correlation(const std::vector<double>& x,
                   const std::vector<double>& y) {
  assert(x.size() == y.size());
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const double mx = Mean(x), my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx, dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> Add(const std::vector<double>& x,
                        const std::vector<double>& y) {
  assert(x.size() == y.size());
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] + y[i];
  return out;
}

std::vector<double> Subtract(const std::vector<double>& x,
                             const std::vector<double>& y) {
  assert(x.size() == y.size());
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - y[i];
  return out;
}

std::vector<double> Scale(const std::vector<double>& x, double factor) {
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] * factor;
  return out;
}

double Dot(const std::vector<double>& x, const std::vector<double>& y) {
  assert(x.size() == y.size());
  double s = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) s += x[i] * y[i];
  return s;
}

std::vector<double> Demean(const std::vector<double>& x) {
  const double mu = Mean(x);
  std::vector<double> out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = x[i] - mu;
  return out;
}

std::vector<double> Arange(double start, double step, std::size_t n) {
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = start + step * static_cast<double>(i);
  }
  return out;
}

}  // namespace capplan::math
